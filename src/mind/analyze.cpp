#include "dfdbg/mind/analyze.hpp"

#include <map>
#include <set>

#include "dfdbg/common/strings.hpp"

namespace dfdbg::mind {

namespace {

Status err_at(SrcLoc loc, const std::string& msg) {
  return Status::error(strformat("%d:%d: %s", loc.line, loc.col, msg.c_str()));
}

/// Is `type` a scalar name or a struct declared in `doc`?
bool type_known(const AstDocument& doc, const std::string& type) {
  static const std::set<std::string> kScalars = {"U8", "U16", "U32", "I32", "F32"};
  return kScalars.count(type) != 0 || doc.struct_decl(type) != nullptr;
}

/// Port description found for a binding endpoint.
struct EndpointInfo {
  bool found = false;
  bool is_input = false;  ///< direction as declared on its owner
  bool on_this = false;   ///< owner is the composite itself
  std::string type;
};

EndpointInfo find_endpoint(const AstDocument& doc, const AstComposite& c,
                           const std::string& who, const std::string& port) {
  EndpointInfo out;
  auto scan_ports = [&](const std::vector<AstPort>& ports, bool on_this) {
    for (const AstPort& p : ports) {
      if (p.name == port) {
        out.found = true;
        out.is_input = p.is_input;
        out.on_this = on_this;
        out.type = p.type.type;
        return true;
      }
    }
    return false;
  };
  if (who == "this") {
    scan_ports(c.ports, /*on_this=*/true);
    return out;
  }
  if (who == "controller" && c.controller.has_value()) {
    scan_ports(c.controller->ports, /*on_this=*/false);
    return out;
  }
  for (const AstInstance& inst : c.instances) {
    if (inst.name != who) continue;
    if (const AstPrimitive* p = doc.primitive(inst.type_name); p != nullptr) {
      scan_ports(p->ports, /*on_this=*/false);
    } else if (const AstComposite* sub = doc.composite(inst.type_name); sub != nullptr) {
      scan_ports(sub->ports, /*on_this=*/false);
    }
    return out;
  }
  return out;
}

}  // namespace

Result<AnalysisReport> analyze(const AstDocument& doc, const std::string& top) {
  AnalysisReport report;

  // Global name uniqueness.
  std::set<std::string> names;
  auto check_unique = [&](const std::string& n, SrcLoc loc) -> Status {
    if (!names.insert(n).second) return err_at(loc, "duplicate definition '" + n + "'");
    return Status{};
  };
  for (const auto& c : doc.composites)
    if (Status s = check_unique(c.name, c.loc); !s.ok()) return s;
  for (const auto& p : doc.primitives)
    if (Status s = check_unique(p.name, p.loc); !s.ok()) return s;
  for (const auto& st : doc.structs)
    if (Status s = check_unique(st.name, st.loc); !s.ok()) return s;

  if (doc.composite(top) == nullptr)
    return Status::error("top composite '" + top + "' is not defined");

  // Struct fields must be scalars.
  for (const auto& st : doc.structs) {
    std::set<std::string> fnames;
    for (const auto& f : st.fields) {
      static const std::set<std::string> kScalars = {"U8", "U16", "U32", "I32", "F32"};
      if (kScalars.count(f.type) == 0)
        return err_at(st.loc, "struct " + st.name + ": field '" + f.name +
                                  "' has non-scalar type '" + f.type + "'");
      if (!fnames.insert(f.name).second)
        return err_at(st.loc, "struct " + st.name + ": duplicate field '" + f.name + "'");
    }
  }

  // Primitives: unique port/data names, known types.
  for (const auto& p : doc.primitives) {
    std::set<std::string> seen;
    for (const auto& port : p.ports) {
      if (!seen.insert(port.name).second)
        return err_at(port.loc, p.name + ": duplicate port '" + port.name + "'");
      if (!type_known(doc, port.type.type))
        return err_at(port.loc, p.name + ": unknown type '" + port.type.type + "'");
    }
    std::set<std::string> dnames;
    for (const auto& d : p.data) {
      if (!dnames.insert(d.name).second)
        return err_at(d.loc, p.name + ": duplicate data/attribute '" + d.name + "'");
      if (!type_known(doc, d.type.type))
        return err_at(d.loc, p.name + ": unknown type '" + d.type.type + "'");
    }
  }

  // Composites: instances resolve, ports typed, bindings well-formed.
  for (const auto& c : doc.composites) {
    std::set<std::string> children;
    for (const auto& inst : c.instances) {
      if (!children.insert(inst.name).second)
        return err_at(inst.loc, c.name + ": duplicate instance '" + inst.name + "'");
      if (doc.primitive(inst.type_name) == nullptr && doc.composite(inst.type_name) == nullptr)
        return err_at(inst.loc, c.name + ": unknown instance type '" + inst.type_name + "'");
      if (inst.type_name == c.name)
        return err_at(inst.loc, c.name + ": composite contains itself");
    }
    std::set<std::string> pnames;
    for (const auto& port : c.ports) {
      if (!pnames.insert(port.name).second)
        return err_at(port.loc, c.name + ": duplicate port '" + port.name + "'");
      if (!type_known(doc, port.type.type))
        return err_at(port.loc, c.name + ": unknown type '" + port.type.type + "'");
    }
    if (c.controller.has_value()) {
      std::set<std::string> cports;
      for (const auto& port : c.controller->ports) {
        if (!cports.insert(port.name).second)
          return err_at(port.loc, c.name + ": duplicate controller port '" + port.name + "'");
        if (!type_known(doc, port.type.type))
          return err_at(port.loc, c.name + ": unknown type '" + port.type.type + "'");
      }
    }

    std::set<std::string> bound_sources, bound_targets;
    for (const auto& b : c.bindings) {
      auto parse_ep = [&](const std::string& text, std::string* who,
                          std::string* port) -> Status {
        auto dot = text.find('.');
        if (dot == std::string::npos || dot == 0 || dot + 1 >= text.size())
          return err_at(b.loc, c.name + ": malformed endpoint '" + text + "'");
        *who = text.substr(0, dot);
        *port = text.substr(dot + 1);
        return Status{};
      };
      std::string swho, sport, dwho, dport;
      if (Status s = parse_ep(b.src, &swho, &sport); !s.ok()) return s;
      if (Status s = parse_ep(b.dst, &dwho, &dport); !s.ok()) return s;
      EndpointInfo src = find_endpoint(doc, c, swho, sport);
      EndpointInfo dst = find_endpoint(doc, c, dwho, dport);
      if (!src.found) return err_at(b.loc, c.name + ": unknown endpoint '" + b.src + "'");
      if (!dst.found) return err_at(b.loc, c.name + ": unknown endpoint '" + b.dst + "'");
      // Direction: data flows src->dst. A valid source is a child OUTPUT or
      // one of this-module's INPUTS (data entering the module); a valid
      // target is a child INPUT or one of this-module's OUTPUTS.
      bool src_ok = src.on_this ? src.is_input : !src.is_input;
      bool dst_ok = dst.on_this ? !dst.is_input : dst.is_input;
      if (!src_ok)
        return err_at(b.loc, c.name + ": '" + b.src + "' cannot be a binding source");
      if (!dst_ok)
        return err_at(b.loc, c.name + ": '" + b.dst + "' cannot be a binding target");
      if (src.type != dst.type)
        return err_at(b.loc, c.name + ": type mismatch '" + b.src + "' (" + src.type +
                                ") vs '" + b.dst + "' (" + dst.type + ")");
      if (!bound_sources.insert(b.src).second)
        return err_at(b.loc, c.name + ": '" + b.src + "' bound twice as source");
      if (!bound_targets.insert(b.dst).second)
        return err_at(b.loc, c.name + ": '" + b.dst + "' bound twice as target");
    }

    // Completeness warnings: child ports never mentioned in a binding.
    for (const auto& inst : c.instances) {
      const std::vector<AstPort>* ports = nullptr;
      if (const AstPrimitive* p = doc.primitive(inst.type_name); p != nullptr) ports = &p->ports;
      else if (const AstComposite* sub = doc.composite(inst.type_name); sub != nullptr)
        ports = &sub->ports;
      if (ports == nullptr) continue;
      for (const AstPort& port : *ports) {
        std::string ep = inst.name + "." + port.name;
        if (bound_sources.count(ep) == 0 && bound_targets.count(ep) == 0)
          report.warnings.push_back(c.name + ": port '" + ep + "' is not bound");
      }
    }
    if (c.name != top) {
      for (const AstPort& port : c.ports) {
        // Inner side of a composite port must be bound inside the composite.
        std::string ep = "this." + port.name;
        if (bound_sources.count(ep) == 0 && bound_targets.count(ep) == 0)
          report.warnings.push_back(c.name + ": boundary port '" + port.name +
                                    "' unused inside the composite");
      }
    }
  }

  return report;
}

}  // namespace dfdbg::mind

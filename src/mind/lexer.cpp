#include "dfdbg/mind/lexer.hpp"

#include <cctype>

#include "dfdbg/common/strings.hpp"

namespace dfdbg::mind {

namespace {
bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_' || c == '.';
}
}  // namespace

std::vector<Token> lex(std::string_view src, std::string* error) {
  std::vector<Token> out;
  error->clear();
  int line = 1, col = 1;
  std::size_t i = 0;
  auto bump = [&](char c) {
    if (c == '\n') {
      line++;
      col = 1;
    } else {
      col++;
    }
  };
  while (i < src.size()) {
    char c = src[i];
    if (std::isspace(static_cast<unsigned char>(c)) != 0) {
      bump(c);
      i++;
      continue;
    }
    if (c == '/' && i + 1 < src.size() && src[i + 1] == '/') {
      while (i < src.size() && src[i] != '\n') {
        bump(src[i]);
        i++;
      }
      continue;
    }
    if (c == '/' && i + 1 < src.size() && src[i + 1] == '*') {
      bump(src[i]); bump(src[i + 1]);
      i += 2;
      while (i + 1 < src.size() && !(src[i] == '*' && src[i + 1] == '/')) {
        bump(src[i]);
        i++;
      }
      if (i + 1 >= src.size()) {
        *error = strformat("%d:%d: unterminated block comment", line, col);
        return {Token{TokKind::kEnd, "", {line, col}}};
      }
      bump(src[i]); bump(src[i + 1]);
      i += 2;
      continue;
    }
    SrcLoc loc{line, col};
    if (c == '{') { out.push_back({TokKind::kLBrace, "{", loc}); bump(c); i++; continue; }
    if (c == '}') { out.push_back({TokKind::kRBrace, "}", loc}); bump(c); i++; continue; }
    if (c == ';') { out.push_back({TokKind::kSemi, ";", loc}); bump(c); i++; continue; }
    if (c == ':') { out.push_back({TokKind::kColon, ":", loc}); bump(c); i++; continue; }
    if (c == '@') {
      std::size_t start = i + 1;
      std::size_t j = start;
      while (j < src.size() && ident_char(src[j])) j++;
      if (j == start) {
        *error = strformat("%d:%d: empty annotation", line, col);
        return {Token{TokKind::kEnd, "", loc}};
      }
      out.push_back({TokKind::kAnnotation, std::string(src.substr(start, j - start)), loc});
      for (std::size_t k = i; k < j; ++k) bump(src[k]);
      i = j;
      continue;
    }
    if (ident_char(c)) {
      std::size_t j = i;
      while (j < src.size() && ident_char(src[j])) j++;
      out.push_back({TokKind::kIdent, std::string(src.substr(i, j - i)), loc});
      for (std::size_t k = i; k < j; ++k) bump(src[k]);
      i = j;
      continue;
    }
    *error = strformat("%d:%d: unexpected character '%c'", line, col, c);
    return {Token{TokKind::kEnd, "", loc}};
  }
  out.push_back({TokKind::kEnd, "", {line, col}});
  return out;
}

}  // namespace dfdbg::mind

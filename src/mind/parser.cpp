#include "dfdbg/mind/parser.hpp"

#include "dfdbg/common/strings.hpp"
#include "dfdbg/mind/lexer.hpp"

namespace dfdbg::mind {

const AstComposite* AstDocument::composite(const std::string& name) const {
  for (const auto& c : composites)
    if (c.name == name) return &c;
  return nullptr;
}

const AstPrimitive* AstDocument::primitive(const std::string& name) const {
  for (const auto& p : primitives)
    if (p.name == name) return &p;
  return nullptr;
}

const AstStructDecl* AstDocument::struct_decl(const std::string& name) const {
  for (const auto& s : structs)
    if (s.name == name) return &s;
  return nullptr;
}

namespace {

class Parser {
 public:
  explicit Parser(std::vector<Token> toks) : toks_(std::move(toks)) {}

  Result<AstDocument> run() {
    AstDocument doc;
    while (!at(TokKind::kEnd)) {
      if (!at(TokKind::kAnnotation)) return err("expected @Module, @Filter or @Type annotation");
      std::string ann = cur().text;
      next();
      if (ann == "Module") {
        auto c = parse_composite();
        if (!c.ok()) return c.status();
        doc.composites.push_back(std::move(*c));
      } else if (ann == "Filter") {
        auto p = parse_primitive();
        if (!p.ok()) return p.status();
        doc.primitives.push_back(std::move(*p));
      } else if (ann == "Type") {
        auto s = parse_struct();
        if (!s.ok()) return s.status();
        doc.structs.push_back(std::move(*s));
      } else {
        return err("unknown annotation @" + ann);
      }
    }
    return doc;
  }

 private:
  const Token& cur() const { return toks_[pos_]; }
  bool at(TokKind k) const { return cur().kind == k; }
  bool at_ident(std::string_view word) const {
    return cur().kind == TokKind::kIdent && cur().text == word;
  }
  void next() {
    if (pos_ + 1 < toks_.size()) pos_++;
  }

  Status err(const std::string& msg) const {
    return Status::error(
        strformat("%d:%d: %s (got '%s')", cur().loc.line, cur().loc.col, msg.c_str(),
                  cur().text.c_str()));
  }

  Status expect(TokKind k, const char* what) {
    if (!at(k)) return Status::error(strformat("%d:%d: expected %s (got '%s')", cur().loc.line,
                                               cur().loc.col, what, cur().text.c_str()));
    next();
    return Status{};
  }

  Result<std::string> expect_ident(const char* what) {
    if (!at(TokKind::kIdent)) return err(std::string("expected ") + what);
    std::string s = cur().text;
    next();
    return s;
  }

  /// typeref := IDENT (':' IDENT)?  — "stddefs.h:U32" lexes as
  /// IDENT("stddefs.h") ':' IDENT("U32"); bare "U32" as one IDENT.
  Result<AstTypeRef> parse_typeref() {
    AstTypeRef t;
    t.loc = cur().loc;
    auto first = expect_ident("type name");
    if (!first.ok()) return first.status();
    if (at(TokKind::kColon)) {
      next();
      auto second = expect_ident("type name after ':'");
      if (!second.ok()) return second.status();
      t.header = std::move(*first);
      t.type = std::move(*second);
    } else {
      t.type = std::move(*first);
    }
    return t;
  }

  /// port := ('input'|'output') typeref 'as' IDENT ';'  (caller consumed the
  /// direction keyword and passes it in).
  Result<AstPort> parse_port(bool is_input, SrcLoc loc) {
    AstPort p;
    p.is_input = is_input;
    p.loc = loc;
    auto t = parse_typeref();
    if (!t.ok()) return t.status();
    p.type = std::move(*t);
    if (!at_ident("as")) return err("expected 'as'");
    next();
    auto n = expect_ident("port name");
    if (!n.ok()) return n.status();
    p.name = std::move(*n);
    if (Status s = expect(TokKind::kSemi, "';'"); !s.ok()) return s;
    return p;
  }

  Result<AstComposite> parse_composite() {
    AstComposite c;
    c.loc = cur().loc;
    if (!at_ident("composite")) return err("expected 'composite'");
    next();
    auto name = expect_ident("composite name");
    if (!name.ok()) return name.status();
    c.name = std::move(*name);
    if (Status s = expect(TokKind::kLBrace, "'{'"); !s.ok()) return s;
    while (!at(TokKind::kRBrace)) {
      if (at(TokKind::kEnd)) return err("unterminated composite");
      if (at_ident("contains")) {
        SrcLoc loc = cur().loc;
        next();
        if (at_ident("as")) {
          // inline controller: contains as controller { ... }
          next();
          if (!at_ident("controller")) return err("expected 'controller'");
          next();
          if (c.controller.has_value()) return err("duplicate controller");
          auto ctl = parse_controller_body(loc);
          if (!ctl.ok()) return ctl.status();
          c.controller = std::move(*ctl);
        } else {
          AstInstance inst;
          inst.loc = loc;
          auto ty = expect_ident("instance type");
          if (!ty.ok()) return ty.status();
          inst.type_name = std::move(*ty);
          if (!at_ident("as")) return err("expected 'as'");
          next();
          auto nm = expect_ident("instance name");
          if (!nm.ok()) return nm.status();
          inst.name = std::move(*nm);
          if (Status s = expect(TokKind::kSemi, "';'"); !s.ok()) return s;
          c.instances.push_back(std::move(inst));
        }
      } else if (at_ident("input") || at_ident("output")) {
        bool is_input = cur().text == "input";
        SrcLoc loc = cur().loc;
        next();
        auto p = parse_port(is_input, loc);
        if (!p.ok()) return p.status();
        c.ports.push_back(std::move(*p));
      } else if (at_ident("binds")) {
        AstBinding b;
        b.loc = cur().loc;
        next();
        auto src = expect_ident("binding source endpoint");
        if (!src.ok()) return src.status();
        b.src = std::move(*src);
        if (!at_ident("to")) return err("expected 'to'");
        next();
        auto dst = expect_ident("binding target endpoint");
        if (!dst.ok()) return dst.status();
        b.dst = std::move(*dst);
        if (Status s = expect(TokKind::kSemi, "';'"); !s.ok()) return s;
        c.bindings.push_back(std::move(b));
      } else {
        return err("unexpected item in composite");
      }
    }
    next();  // '}'
    return c;
  }

  Result<AstController> parse_controller_body(SrcLoc loc) {
    AstController ctl;
    ctl.loc = loc;
    if (Status s = expect(TokKind::kLBrace, "'{'"); !s.ok()) return s;
    while (!at(TokKind::kRBrace)) {
      if (at(TokKind::kEnd)) return err("unterminated controller");
      if (at_ident("input") || at_ident("output")) {
        bool is_input = cur().text == "input";
        SrcLoc ploc = cur().loc;
        next();
        auto p = parse_port(is_input, ploc);
        if (!p.ok()) return p.status();
        ctl.ports.push_back(std::move(*p));
      } else if (at_ident("source")) {
        next();
        auto f = expect_ident("source file name");
        if (!f.ok()) return f.status();
        ctl.source = std::move(*f);
        if (Status s = expect(TokKind::kSemi, "';'"); !s.ok()) return s;
      } else {
        return err("unexpected item in controller");
      }
    }
    next();
    return ctl;
  }

  Result<AstPrimitive> parse_primitive() {
    AstPrimitive p;
    p.loc = cur().loc;
    if (!at_ident("primitive")) return err("expected 'primitive'");
    next();
    auto name = expect_ident("primitive name");
    if (!name.ok()) return name.status();
    p.name = std::move(*name);
    if (Status s = expect(TokKind::kLBrace, "'{'"); !s.ok()) return s;
    while (!at(TokKind::kRBrace)) {
      if (at(TokKind::kEnd)) return err("unterminated primitive");
      if (at_ident("data") || at_ident("attribute")) {
        AstDatum d;
        d.is_attribute = cur().text == "attribute";
        d.loc = cur().loc;
        next();
        auto t = parse_typeref();
        if (!t.ok()) return t.status();
        d.type = std::move(*t);
        auto n = expect_ident("data name");
        if (!n.ok()) return n.status();
        d.name = std::move(*n);
        if (Status s = expect(TokKind::kSemi, "';'"); !s.ok()) return s;
        p.data.push_back(std::move(d));
      } else if (at_ident("source")) {
        next();
        auto f = expect_ident("source file name");
        if (!f.ok()) return f.status();
        p.source = std::move(*f);
        if (Status s = expect(TokKind::kSemi, "';'"); !s.ok()) return s;
      } else if (at_ident("input") || at_ident("output")) {
        bool is_input = cur().text == "input";
        SrcLoc loc = cur().loc;
        next();
        auto port = parse_port(is_input, loc);
        if (!port.ok()) return port.status();
        p.ports.push_back(std::move(*port));
      } else {
        return err("unexpected item in primitive");
      }
    }
    next();
    return p;
  }

  Result<AstStructDecl> parse_struct() {
    AstStructDecl s;
    s.loc = cur().loc;
    if (!at_ident("struct")) return err("expected 'struct'");
    next();
    auto name = expect_ident("struct name");
    if (!name.ok()) return name.status();
    s.name = std::move(*name);
    if (Status st = expect(TokKind::kLBrace, "'{'"); !st.ok()) return st;
    while (!at(TokKind::kRBrace)) {
      if (at(TokKind::kEnd)) return err("unterminated struct");
      AstStructDecl::Field f;
      auto ty = expect_ident("field type");
      if (!ty.ok()) return ty.status();
      f.type = std::move(*ty);
      auto nm = expect_ident("field name");
      if (!nm.ok()) return nm.status();
      f.name = std::move(*nm);
      if (at_ident("hex")) {
        f.hex = true;
        next();
      }
      if (Status st = expect(TokKind::kSemi, "';'"); !st.ok()) return st;
      s.fields.push_back(std::move(f));
    }
    next();
    return s;
  }

  std::vector<Token> toks_;
  std::size_t pos_ = 0;
};

}  // namespace

Result<AstDocument> parse(std::string_view source) {
  std::string lex_error;
  std::vector<Token> toks = lex(source, &lex_error);
  if (!lex_error.empty()) return Status::error(lex_error);
  return Parser(std::move(toks)).run();
}

}  // namespace dfdbg::mind

#include "dfdbg/mind/instantiate.hpp"

#include "dfdbg/common/strings.hpp"

namespace dfdbg::mind {

using pedf::PortDir;
using pedf::TypeDesc;
using pedf::Value;

void FilterRegistry::register_filter(std::string type_name, FilterFactory factory) {
  filters_[std::move(type_name)] = std::move(factory);
}

void FilterRegistry::register_controller(std::string composite_name, ControllerFactory factory) {
  controllers_[std::move(composite_name)] = std::move(factory);
}

const FilterFactory* FilterRegistry::filter_factory(const std::string& type) const {
  auto it = filters_.find(type);
  return it == filters_.end() ? nullptr : &it->second;
}

const ControllerFactory* FilterRegistry::controller_factory(const std::string& comp) const {
  auto it = controllers_.find(comp);
  return it == controllers_.end() ? nullptr : &it->second;
}

void GenericFilter::work(pedf::FilterContext& pedf) {
  // Rate-1 behaviour: read every input once, then emit one zero token per
  // output. Keeps arbitrary parsed graphs executable for testing.
  for (pedf::Port* p : ports_of(PortDir::kIn)) (void)pedf.in(p->name()).get();
  for (pedf::Port* p : ports_of(PortDir::kOut))
    pedf.out(p->name()).put(Value::zero_of(p->type()));
}

void DefaultController::control(pedf::ControllerContext& ctx) {
  for (std::uint64_t s = 0; s < steps_; ++s) {
    ctx.next_step();
    // Broadcast one zero command on every bound controller output so that
    // generic filters popping their cmd inputs never starve.
    for (pedf::Port* p : ctx.self().ports_of(PortDir::kOut)) {
      if (p->link() != nullptr) ctx.send(p->name(), Value::zero_of(p->type()));
    }
    for (const auto& f : ctx.module().filters()) ctx.actor_start(f->name());
    ctx.wait_for_actor_init();
    for (const auto& f : ctx.module().filters()) ctx.actor_sync(f->name());
    ctx.wait_for_actor_sync();
  }
}

namespace {

Status resolve_type(const AstTypeRef& t, pedf::TypeRegistry& types, TypeDesc* out) {
  if (!types.resolve(t.type, out))
    return Status::error(strformat("%d:%d: unknown type '%s'", t.loc.line, t.loc.col,
                                   t.type.c_str()));
  return Status{};
}

/// Builds one instance of composite `ast`.
Result<std::unique_ptr<pedf::Module>> build_composite(const AstDocument& doc,
                                                      const AstComposite& ast,
                                                      const std::string& instance_name,
                                                      pedf::TypeRegistry& types,
                                                      const FilterRegistry& registry) {
  auto mod = std::make_unique<pedf::Module>(instance_name);

  for (const AstPort& p : ast.ports) {
    TypeDesc td;
    if (Status s = resolve_type(p.type, types, &td); !s.ok()) return s;
    mod->add_port(p.name, p.is_input ? PortDir::kIn : PortDir::kOut, td);
  }

  if (ast.controller.has_value()) {
    std::unique_ptr<pedf::Controller> ctl;
    if (const ControllerFactory* f = registry.controller_factory(ast.name); f != nullptr) {
      ctl = (*f)(ast, instance_name);
    } else {
      ctl = std::make_unique<DefaultController>("controller", registry.default_steps());
    }
    for (const AstPort& p : ast.controller->ports) {
      TypeDesc td;
      if (Status s = resolve_type(p.type, types, &td); !s.ok()) return s;
      if (ctl->port(p.name) == nullptr)
        ctl->add_port(p.name, p.is_input ? PortDir::kIn : PortDir::kOut, td);
    }
    pedf::Controller& installed = mod->set_controller(std::move(ctl));
    // Bindings in the ADL address the controller as "controller.<port>"; if
    // the factory chose another name (e.g. "pred_controller"), the module
    // child lookup must still work, so rewrite endpoints below.
    (void)installed;
  }

  for (const AstInstance& inst : ast.instances) {
    if (const AstPrimitive* prim = doc.primitive(inst.type_name); prim != nullptr) {
      std::unique_ptr<pedf::Filter> filt;
      if (const FilterFactory* f = registry.filter_factory(inst.type_name); f != nullptr) {
        filt = (*f)(*prim, inst.name);
      } else {
        filt = std::make_unique<GenericFilter>(inst.name);
      }
      for (const AstPort& p : prim->ports) {
        TypeDesc td;
        if (Status s = resolve_type(p.type, types, &td); !s.ok()) return s;
        filt->add_port(p.name, p.is_input ? PortDir::kIn : PortDir::kOut, td);
      }
      for (const AstDatum& d : prim->data) {
        TypeDesc td;
        if (Status s = resolve_type(d.type, types, &td); !s.ok()) return s;
        if (d.is_attribute)
          filt->declare_attribute(d.name, Value::zero_of(td));
        else
          filt->declare_data(d.name, Value::zero_of(td));
      }
      // Factories may have installed a full source listing; only fill in
      // the bare file name from the ADL when they did not.
      if (!prim->source.empty() && filt->source_lines().empty())
        filt->set_source(prim->source, 1, {});
      mod->add_filter(std::move(filt));
    } else if (const AstComposite* sub = doc.composite(inst.type_name); sub != nullptr) {
      auto m = build_composite(doc, *sub, inst.name, types, registry);
      if (!m.ok()) return m.status();
      mod->add_module(std::move(*m));
    } else {
      return Status::error(strformat("%d:%d: unknown instance type '%s'", inst.loc.line,
                                     inst.loc.col, inst.type_name.c_str()));
    }
  }

  // Bindings: rewrite "controller." endpoints to the actual controller name.
  const std::string ctl_name =
      mod->controller() != nullptr ? mod->controller()->name() : "controller";
  auto rewrite = [&](const std::string& ep) {
    if (starts_with(ep, "controller.") && ctl_name != "controller")
      return ctl_name + ep.substr(std::string("controller").size());
    return ep;
  };
  for (const AstBinding& b : ast.bindings) mod->bind(rewrite(b.src), rewrite(b.dst));

  return mod;
}

}  // namespace

Result<std::unique_ptr<pedf::Module>> instantiate(const AstDocument& doc,
                                                  const std::string& top,
                                                  const std::string& instance_name,
                                                  pedf::TypeRegistry& types,
                                                  const FilterRegistry& registry) {
  const AstComposite* ast = doc.composite(top);
  if (ast == nullptr) return Status::error("top composite '" + top + "' is not defined");

  for (const AstStructDecl& s : doc.structs) {
    if (types.find_struct(s.name) != nullptr) continue;
    std::vector<pedf::FieldDesc> fields;
    for (const auto& f : s.fields) {
      pedf::FieldDesc fd;
      fd.name = f.name;
      fd.print_hex = f.hex;
      if (!pedf::parse_scalar_type(f.type, &fd.type))
        return Status::error("struct " + s.name + ": non-scalar field type " + f.type);
      fields.push_back(std::move(fd));
    }
    types.define_struct(s.name, std::move(fields));
  }

  return build_composite(doc, *ast, instance_name, types, registry);
}

}  // namespace dfdbg::mind

#include "dfdbg/mind/emit.hpp"

#include <sstream>

namespace dfdbg::mind {

namespace {

std::string typeref(const AstTypeRef& t) {
  return t.header.empty() ? t.type : t.header + ":" + t.type;
}

void emit_port(std::ostringstream& os, const AstPort& p, const char* indent) {
  os << indent << (p.is_input ? "input  " : "output ") << typeref(p.type) << " as " << p.name
     << ";\n";
}

}  // namespace

std::string emit_adl(const AstDocument& doc) {
  std::ostringstream os;
  for (const AstStructDecl& s : doc.structs) {
    os << "@Type\nstruct " << s.name << " {\n";
    for (const auto& f : s.fields)
      os << "  " << f.type << " " << f.name << (f.hex ? " hex" : "") << ";\n";
    os << "}\n\n";
  }
  for (const AstPrimitive& p : doc.primitives) {
    os << "@Filter\nprimitive " << p.name << " {\n";
    for (const AstDatum& d : p.data)
      os << "  " << (d.is_attribute ? "attribute " : "data      ") << typeref(d.type) << " "
         << d.name << ";\n";
    if (!p.source.empty()) os << "  source    " << p.source << ";\n";
    for (const AstPort& port : p.ports) emit_port(os, port, "  ");
    os << "}\n\n";
  }
  for (const AstComposite& c : doc.composites) {
    os << "@Module\ncomposite " << c.name << " {\n";
    if (c.controller.has_value()) {
      os << "  contains as controller {\n";
      for (const AstPort& port : c.controller->ports) emit_port(os, port, "    ");
      if (!c.controller->source.empty())
        os << "    source " << c.controller->source << ";\n";
      os << "  }\n";
    }
    for (const AstPort& port : c.ports) emit_port(os, port, "  ");
    for (const AstInstance& inst : c.instances)
      os << "  contains " << inst.type_name << " as " << inst.name << ";\n";
    for (const AstBinding& b : c.bindings)
      os << "  binds " << b.src << " to " << b.dst << ";\n";
    os << "}\n\n";
  }
  return os.str();
}

bool documents_equal(const AstDocument& a, const AstDocument& b) {
  auto ports_eq = [](const std::vector<AstPort>& x, const std::vector<AstPort>& y) {
    if (x.size() != y.size()) return false;
    for (std::size_t i = 0; i < x.size(); ++i) {
      if (x[i].is_input != y[i].is_input || x[i].name != y[i].name ||
          x[i].type.type != y[i].type.type || x[i].type.header != y[i].type.header)
        return false;
    }
    return true;
  };
  if (a.structs.size() != b.structs.size() || a.primitives.size() != b.primitives.size() ||
      a.composites.size() != b.composites.size())
    return false;
  for (std::size_t i = 0; i < a.structs.size(); ++i) {
    const auto& x = a.structs[i];
    const auto& y = b.structs[i];
    if (x.name != y.name || x.fields.size() != y.fields.size()) return false;
    for (std::size_t f = 0; f < x.fields.size(); ++f) {
      if (x.fields[f].name != y.fields[f].name || x.fields[f].type != y.fields[f].type ||
          x.fields[f].hex != y.fields[f].hex)
        return false;
    }
  }
  for (std::size_t i = 0; i < a.primitives.size(); ++i) {
    const auto& x = a.primitives[i];
    const auto& y = b.primitives[i];
    if (x.name != y.name || x.source != y.source || !ports_eq(x.ports, y.ports) ||
        x.data.size() != y.data.size())
      return false;
    for (std::size_t d = 0; d < x.data.size(); ++d) {
      if (x.data[d].name != y.data[d].name ||
          x.data[d].is_attribute != y.data[d].is_attribute ||
          x.data[d].type.type != y.data[d].type.type ||
          x.data[d].type.header != y.data[d].type.header)
        return false;
    }
  }
  for (std::size_t i = 0; i < a.composites.size(); ++i) {
    const auto& x = a.composites[i];
    const auto& y = b.composites[i];
    if (x.name != y.name || !ports_eq(x.ports, y.ports) ||
        x.controller.has_value() != y.controller.has_value())
      return false;
    if (x.controller.has_value()) {
      if (x.controller->source != y.controller->source ||
          !ports_eq(x.controller->ports, y.controller->ports))
        return false;
    }
    if (x.instances.size() != y.instances.size() || x.bindings.size() != y.bindings.size())
      return false;
    for (std::size_t k = 0; k < x.instances.size(); ++k) {
      if (x.instances[k].type_name != y.instances[k].type_name ||
          x.instances[k].name != y.instances[k].name)
        return false;
    }
    for (std::size_t k = 0; k < x.bindings.size(); ++k) {
      if (x.bindings[k].src != y.bindings[k].src || x.bindings[k].dst != y.bindings[k].dst)
        return false;
    }
  }
  return true;
}

}  // namespace dfdbg::mind

// Small string helpers shared by the ADL parser, the CLI tokenizer and the
// debugger's name-mangling emulation.
#pragma once

#include <cstddef>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

namespace dfdbg {

/// Heterogeneous hash for string-keyed containers: lets unordered_map find()
/// accept std::string_view / const char* without materialising a temporary
/// std::string. Pair with std::equal_to<> as the key-equal:
///   std::unordered_map<std::string, T, TransparentStringHash, std::equal_to<>>
struct TransparentStringHash {
  using is_transparent = void;
  [[nodiscard]] std::size_t operator()(std::string_view s) const noexcept {
    return std::hash<std::string_view>{}(s);
  }
  [[nodiscard]] std::size_t operator()(const std::string& s) const noexcept {
    return std::hash<std::string_view>{}(s);
  }
  [[nodiscard]] std::size_t operator()(const char* s) const noexcept {
    return std::hash<std::string_view>{}(s);
  }
};

/// Splits `s` on `sep`, keeping empty fields.
std::vector<std::string> split(std::string_view s, char sep);

/// Splits `s` on any run of whitespace, dropping empty fields.
std::vector<std::string> split_ws(std::string_view s);

/// Removes leading and trailing ASCII whitespace.
std::string_view trim(std::string_view s);

/// Joins `parts` with `sep`.
std::string join(const std::vector<std::string>& parts, std::string_view sep);

/// True if `s` starts with `prefix`.
bool starts_with(std::string_view s, std::string_view prefix);

/// True if `s` ends with `suffix`.
bool ends_with(std::string_view s, std::string_view suffix);

/// Lower-cases ASCII letters.
std::string to_lower(std::string_view s);

/// printf-style formatting into a std::string.
std::string strformat(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/// Emulates the PEDF tool-chain symbol mangling observed in the paper, e.g.
/// filter `ipf` work method -> "IpfFilter_work_function" and controller
/// `pred_controller` -> "_component_PredModule_anon_0_work".
std::string mangle_filter_work(std::string_view filter_name);
std::string mangle_controller_work(std::string_view module_name, int anon_index);

}  // namespace dfdbg

// Leveled logging. The debugger CLI prints through its own Console; this
// logger is for library diagnostics only and is silent by default.
#pragma once

#include <string>

namespace dfdbg {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Sets the global threshold; messages below it are dropped.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Emits one log line to stderr if `level` passes the threshold.
void log_message(LogLevel level, const std::string& msg);

}  // namespace dfdbg

#define DFDBG_LOG(level, msg)                                     \
  do {                                                            \
    if (static_cast<int>(level) >= static_cast<int>(::dfdbg::log_level())) \
      ::dfdbg::log_message(level, (msg));                         \
  } while (0)

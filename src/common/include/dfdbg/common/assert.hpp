// Lightweight check/panic macros used across the dataflow-dbg libraries.
//
// DFDBG_CHECK is always on (release included): it guards invariants whose
// violation would corrupt the simulation or debugger model. DFDBG_DCHECK
// compiles out in NDEBUG builds and is meant for hot paths.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>

namespace dfdbg {

/// Aborts the process with a formatted diagnostic. Never returns.
[[noreturn]] inline void panic(const char* file, int line, const std::string& msg) {
  std::fprintf(stderr, "dfdbg panic at %s:%d: %s\n", file, line, msg.c_str());
  std::fflush(stderr);
  std::abort();
}

}  // namespace dfdbg

#define DFDBG_CHECK(cond)                                                     \
  do {                                                                        \
    if (!(cond)) ::dfdbg::panic(__FILE__, __LINE__, "check failed: " #cond);  \
  } while (0)

#define DFDBG_CHECK_MSG(cond, msg)                                            \
  do {                                                                        \
    if (!(cond))                                                              \
      ::dfdbg::panic(__FILE__, __LINE__,                                      \
                     std::string("check failed: " #cond ": ") + (msg));       \
  } while (0)

#ifdef NDEBUG
#define DFDBG_DCHECK(cond) ((void)0)
#else
#define DFDBG_DCHECK(cond) DFDBG_CHECK(cond)
#endif

#define DFDBG_UNREACHABLE(msg) ::dfdbg::panic(__FILE__, __LINE__, std::string("unreachable: ") + (msg))

// The shared JSON layer: one encoder and one parser for every machine-
// readable surface of the debugger — the structured-view serialization
// (dfdbg/debug/views.hpp), the debug-server wire protocol (dfdbg/server),
// the CLI `--json` flags and the state exporter. Hand-rolled so the tree
// stays dependency-free; compact output (no insignificant whitespace) so one
// document is one newline-delimited frame on the wire.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "dfdbg/common/status.hpp"

namespace dfdbg {

/// Escapes and double-quotes `s` as one JSON string literal.
[[nodiscard]] std::string json_quote(std::string_view s);

/// Streaming JSON emitter with automatic comma/colon placement. Usage:
///
///   JsonWriter w;
///   w.begin_object().key("links").begin_array();
///   for (...) w.begin_object().kv("name", l.name).kv("occupancy", n).end_object();
///   w.end_array().end_object();
///   std::string doc = w.take();
///
/// The writer does not validate nesting beyond what the comma logic needs;
/// callers are expected to emit well-formed structures (tests compare output
/// byte-for-byte, so misuse is caught immediately).
class JsonWriter {
 public:
  JsonWriter& begin_object() { sep(); out_ += '{'; depth_.push_back(false); return *this; }
  JsonWriter& end_object() { depth_.pop_back(); out_ += '}'; return *this; }
  JsonWriter& begin_array() { sep(); out_ += '['; depth_.push_back(false); return *this; }
  JsonWriter& end_array() { depth_.pop_back(); out_ += ']'; return *this; }

  JsonWriter& key(std::string_view k) {
    sep();
    out_ += json_quote(k);
    out_ += ':';
    after_key_ = true;
    return *this;
  }

  JsonWriter& value(std::string_view v) { sep(); out_ += json_quote(v); return *this; }
  JsonWriter& value(const char* v) { return value(std::string_view(v)); }
  JsonWriter& value(const std::string& v) { return value(std::string_view(v)); }
  JsonWriter& value(bool v) { sep(); out_ += v ? "true" : "false"; return *this; }
  JsonWriter& value(std::uint64_t v) { sep(); out_ += std::to_string(v); return *this; }
  JsonWriter& value(std::int64_t v) { sep(); out_ += std::to_string(v); return *this; }
  JsonWriter& value(int v) { return value(static_cast<std::int64_t>(v)); }
  JsonWriter& value(unsigned v) { return value(static_cast<std::uint64_t>(v)); }
  JsonWriter& value(double v);
  JsonWriter& null() { sep(); out_ += "null"; return *this; }
  /// Splices pre-encoded JSON verbatim (e.g. a nested document).
  JsonWriter& raw(std::string_view json) { sep(); out_ += json; return *this; }

  template <typename T>
  JsonWriter& kv(std::string_view k, T&& v) {
    key(k);
    return value(std::forward<T>(v));
  }

  [[nodiscard]] const std::string& str() const { return out_; }
  std::string take() { return std::move(out_); }

 private:
  void sep() {
    if (after_key_) {
      after_key_ = false;
      return;
    }
    if (!depth_.empty()) {
      if (depth_.back()) out_ += ',';
      depth_.back() = true;
    }
  }

  std::string out_;
  std::vector<bool> depth_;  ///< per level: "already holds an element"
  bool after_key_ = false;
};

/// A parsed JSON document (the server's request decoder). Object member
/// order is preserved; numbers remember whether the source text was
/// integral, so u64 ids survive without a double round-trip.
class JsonValue {
 public:
  enum class Kind : std::uint8_t { kNull, kBool, kNumber, kString, kArray, kObject };

  /// Parses one complete JSON document (trailing garbage is an error).
  static Result<JsonValue> parse(std::string_view text);

  [[nodiscard]] Kind kind() const { return kind_; }
  [[nodiscard]] bool is_null() const { return kind_ == Kind::kNull; }
  [[nodiscard]] bool is_bool() const { return kind_ == Kind::kBool; }
  [[nodiscard]] bool is_number() const { return kind_ == Kind::kNumber; }
  [[nodiscard]] bool is_string() const { return kind_ == Kind::kString; }
  [[nodiscard]] bool is_array() const { return kind_ == Kind::kArray; }
  [[nodiscard]] bool is_object() const { return kind_ == Kind::kObject; }

  [[nodiscard]] bool as_bool(bool dflt = false) const { return is_bool() ? b_ : dflt; }
  [[nodiscard]] double as_double(double dflt = 0.0) const { return is_number() ? d_ : dflt; }
  [[nodiscard]] std::uint64_t as_u64(std::uint64_t dflt = 0) const {
    if (!is_number()) return dflt;
    return int_ ? u_ : static_cast<std::uint64_t>(d_);
  }
  [[nodiscard]] std::int64_t as_i64(std::int64_t dflt = 0) const {
    if (!is_number()) return dflt;
    return int_ ? static_cast<std::int64_t>(u_) * (neg_ ? -1 : 1) : static_cast<std::int64_t>(d_);
  }
  [[nodiscard]] const std::string& as_string() const { return s_; }

  /// Array length / object member count (0 for scalars).
  [[nodiscard]] std::size_t size() const {
    return is_array() ? arr_.size() : (is_object() ? members_.size() : 0);
  }
  /// Array element / i-th object member value.
  [[nodiscard]] const JsonValue& at(std::size_t i) const {
    return is_object() ? members_[i].second : arr_[i];
  }
  /// i-th object member key.
  [[nodiscard]] const std::string& key_at(std::size_t i) const { return members_[i].first; }
  /// Object member by key (nullptr if absent or not an object).
  [[nodiscard]] const JsonValue* find(std::string_view key) const;

  // Convenience lookups for request-params objects.
  [[nodiscard]] std::string str_or(std::string_view key, std::string_view dflt = "") const;
  [[nodiscard]] std::uint64_t u64_or(std::string_view key, std::uint64_t dflt = 0) const;
  [[nodiscard]] bool bool_or(std::string_view key, bool dflt = false) const;

  /// Re-serializes through JsonWriter (compact; keys in parse order).
  [[nodiscard]] std::string dump() const;
  void write(JsonWriter& w) const;

 private:
  friend class JsonParser;

  Kind kind_ = Kind::kNull;
  bool b_ = false;
  bool int_ = false;  ///< number was an integer literal
  bool neg_ = false;  ///< integer literal carried a minus sign
  std::uint64_t u_ = 0;
  double d_ = 0.0;
  std::string s_;
  std::vector<JsonValue> arr_;
  std::vector<std::pair<std::string, JsonValue>> members_;
};

}  // namespace dfdbg

// Strongly-typed integer identifiers. Each subsystem instantiates Id with its
// own tag so that, e.g., a link id cannot be passed where an actor id is
// expected.
#pragma once

#include <cstdint>
#include <functional>

namespace dfdbg {

/// A type-safe wrapper around a 32-bit index. `Tag` is a phantom type.
template <typename Tag>
class Id {
 public:
  using value_type = std::uint32_t;
  static constexpr value_type kInvalid = UINT32_MAX;

  constexpr Id() = default;
  constexpr explicit Id(value_type v) : v_(v) {}

  [[nodiscard]] constexpr value_type value() const { return v_; }
  [[nodiscard]] constexpr bool valid() const { return v_ != kInvalid; }

  friend constexpr bool operator==(Id a, Id b) { return a.v_ == b.v_; }
  friend constexpr bool operator!=(Id a, Id b) { return a.v_ != b.v_; }
  friend constexpr bool operator<(Id a, Id b) { return a.v_ < b.v_; }

 private:
  value_type v_ = kInvalid;
};

}  // namespace dfdbg

namespace std {
template <typename Tag>
struct hash<dfdbg::Id<Tag>> {
  size_t operator()(dfdbg::Id<Tag> id) const noexcept {
    return std::hash<uint32_t>{}(id.value());
  }
};
}  // namespace std

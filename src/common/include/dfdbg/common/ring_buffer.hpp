// Fixed-capacity ring buffer used for bounded token recording and traces.
// When full, pushing evicts the oldest element (the recording semantics of
// the paper's `iface ... record` with a bounded policy).
#pragma once

#include <cstddef>
#include <vector>

#include "dfdbg/common/assert.hpp"

namespace dfdbg {

/// Bounded FIFO that overwrites its oldest element when full.
template <typename T>
class RingBuffer {
 public:
  /// Creates a ring holding at most `capacity` elements (capacity >= 1).
  explicit RingBuffer(std::size_t capacity) : buf_(capacity) {
    DFDBG_CHECK(capacity >= 1);
  }

  /// Appends `v`; evicts the oldest element if full. Returns true if an
  /// eviction happened.
  bool push(T v) {
    bool evicted = false;
    if (size_ == buf_.size()) {
      head_ = (head_ + 1) % buf_.size();
      --size_;
      evicted = true;
    }
    buf_[(head_ + size_) % buf_.size()] = std::move(v);
    ++size_;
    total_pushed_++;
    return evicted;
  }

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] std::size_t capacity() const { return buf_.size(); }
  [[nodiscard]] bool empty() const { return size_ == 0; }

  /// Number of elements ever pushed (including evicted ones).
  [[nodiscard]] std::uint64_t total_pushed() const { return total_pushed_; }

  /// Element `i` counted from the oldest retained element.
  const T& at(std::size_t i) const {
    DFDBG_CHECK(i < size_);
    return buf_[(head_ + i) % buf_.size()];
  }

  /// Oldest retained element. Precondition: !empty().
  const T& front() const { return at(0); }
  /// Newest element. Precondition: !empty().
  const T& back() const { return at(size_ - 1); }

  void clear() {
    head_ = 0;
    size_ = 0;
  }

 private:
  std::vector<T> buf_;
  std::size_t head_ = 0;
  std::size_t size_ = 0;
  std::uint64_t total_pushed_ = 0;
};

}  // namespace dfdbg

// Deterministic PRNG (SplitMix64) used by workload generators and fault
// injection so that every experiment is exactly reproducible.
#pragma once

#include <cstdint>

namespace dfdbg {

/// SplitMix64: tiny, fast, statistically solid for workload generation.
class Prng {
 public:
  explicit Prng(std::uint64_t seed) : state_(seed) {}

  /// Next 64 random bits.
  std::uint64_t next_u64() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  /// Uniform integer in [0, bound). bound must be > 0.
  std::uint64_t next_below(std::uint64_t bound) { return next_u64() % bound; }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t next_range(std::int64_t lo, std::int64_t hi) {
    return lo + static_cast<std::int64_t>(next_below(static_cast<std::uint64_t>(hi - lo + 1)));
  }

  /// Uniform double in [0, 1).
  double next_double() { return static_cast<double>(next_u64() >> 11) * 0x1.0p-53; }

  /// Bernoulli trial with probability p.
  bool next_bool(double p) { return next_double() < p; }

 private:
  std::uint64_t state_;
};

}  // namespace dfdbg

// Minimal Status / Result types for recoverable errors (parse errors, bad
// user commands, lookups). Irrecoverable invariant violations use
// DFDBG_CHECK instead.
#pragma once

#include <optional>
#include <string>
#include <utility>

#include "dfdbg/common/assert.hpp"

namespace dfdbg {

/// Outcome of an operation that can fail with a human-readable message.
/// Cheap to move; empty message means OK.
class Status {
 public:
  /// Constructs a success status.
  Status() = default;

  /// Constructs a failure status carrying `message`.
  static Status error(std::string message) {
    Status s;
    s.message_ = std::move(message);
    s.ok_ = false;
    return s;
  }

  /// Constructs a success status (explicit spelling).
  static Status ok_status() { return Status{}; }

  [[nodiscard]] bool ok() const { return ok_; }
  [[nodiscard]] const std::string& message() const { return message_; }

  explicit operator bool() const { return ok_; }

 private:
  bool ok_ = true;
  std::string message_;
};

/// Either a value of type T or a failure Status.
template <typename T>
class Result {
 public:
  /// Implicit construction from a value (success).
  Result(T value) : value_(std::move(value)) {}  // NOLINT(google-explicit-constructor)

  /// Implicit construction from a failure status.
  Result(Status status) : status_(std::move(status)) {  // NOLINT(google-explicit-constructor)
    DFDBG_CHECK_MSG(!status_.ok(), "Result constructed from OK status without a value");
  }

  [[nodiscard]] bool ok() const { return value_.has_value(); }
  [[nodiscard]] const Status& status() const { return status_; }

  /// Access the contained value. Precondition: ok().
  T& value() {
    DFDBG_CHECK_MSG(ok(), status_.message());
    return *value_;
  }
  const T& value() const {
    DFDBG_CHECK_MSG(ok(), status_.message());
    return *value_;
  }

  T& operator*() { return value(); }
  const T& operator*() const { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

 private:
  std::optional<T> value_;
  Status status_;
};

}  // namespace dfdbg

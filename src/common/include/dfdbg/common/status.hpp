// Minimal Status / Result types for recoverable errors (parse errors, bad
// user commands, lookups). Irrecoverable invariant violations use
// DFDBG_CHECK instead.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <utility>

#include "dfdbg/common/assert.hpp"

namespace dfdbg {

/// Stable machine-readable failure categories. Every CLI / server command
/// path classifies its failures with one of these; the wire protocol maps
/// them onto JSON-RPC error codes (docs/PROTOCOL.md), so the enumerator
/// values and spellings below are part of the protocol contract — append,
/// never renumber.
enum class ErrCode : std::uint8_t {
  kOk = 0,
  kInvalidArgument,     ///< malformed user input: bad verb syntax, bad value literal
  kNotFound,            ///< named entity does not exist (filter, link, breakpoint, slot token)
  kFailedPrecondition,  ///< command valid but state refuses it (running, link full, no token yet)
  kOutOfRange,          ///< index beyond the live range (queue slot, journal index)
  kParseError,          ///< unparseable frame/document (JSON, trace file)
  kIo,                  ///< OS-level failure (socket, file)
  kUnimplemented,       ///< verb recognized but not supported by this build
  kInternal,            ///< invariant violation surfaced as an error instead of a check
  kUnknown,             ///< legacy untyped Status::error(message)
};

/// Protocol spelling of an ErrCode ("not-found", "invalid-argument", ...).
[[nodiscard]] constexpr const char* to_string(ErrCode code) {
  switch (code) {
    case ErrCode::kOk: return "ok";
    case ErrCode::kInvalidArgument: return "invalid-argument";
    case ErrCode::kNotFound: return "not-found";
    case ErrCode::kFailedPrecondition: return "failed-precondition";
    case ErrCode::kOutOfRange: return "out-of-range";
    case ErrCode::kParseError: return "parse-error";
    case ErrCode::kIo: return "io";
    case ErrCode::kUnimplemented: return "unimplemented";
    case ErrCode::kInternal: return "internal";
    case ErrCode::kUnknown: return "unknown";
  }
  return "unknown";
}

/// Outcome of an operation that can fail with a human-readable message and
/// a stable ErrCode. Cheap to move; default-constructed means OK.
class Status {
 public:
  /// Constructs a success status.
  Status() = default;

  /// Constructs a failure status carrying `message` (legacy untyped form;
  /// classified as ErrCode::kUnknown).
  static Status error(std::string message) {
    return error(ErrCode::kUnknown, std::move(message));
  }

  /// Constructs a failure status with a machine-readable code.
  static Status error(ErrCode code, std::string message) {
    Status s;
    s.message_ = std::move(message);
    s.code_ = code;
    s.ok_ = false;
    return s;
  }

  /// Constructs a success status (explicit spelling).
  static Status ok_status() { return Status{}; }

  [[nodiscard]] bool ok() const { return ok_; }
  [[nodiscard]] ErrCode code() const { return code_; }
  [[nodiscard]] const std::string& message() const { return message_; }

  explicit operator bool() const { return ok_; }

 private:
  bool ok_ = true;
  ErrCode code_ = ErrCode::kOk;
  std::string message_;
};

/// Either a value of type T or a failure Status.
template <typename T>
class Result {
 public:
  /// Implicit construction from a value (success).
  Result(T value) : value_(std::move(value)) {}  // NOLINT(google-explicit-constructor)

  /// Implicit construction from a failure status.
  Result(Status status) : status_(std::move(status)) {  // NOLINT(google-explicit-constructor)
    DFDBG_CHECK_MSG(!status_.ok(), "Result constructed from OK status without a value");
  }

  [[nodiscard]] bool ok() const { return value_.has_value(); }
  [[nodiscard]] const Status& status() const { return status_; }

  /// Access the contained value. Precondition: ok().
  T& value() {
    DFDBG_CHECK_MSG(ok(), status_.message());
    return *value_;
  }
  const T& value() const {
    DFDBG_CHECK_MSG(ok(), status_.message());
    return *value_;
  }

  T& operator*() { return value(); }
  const T& operator*() const { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

 private:
  std::optional<T> value_;
  Status status_;
};

}  // namespace dfdbg

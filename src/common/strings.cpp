#include "dfdbg/common/strings.hpp"

#include <cctype>
#include <cstdarg>
#include <cstdio>

namespace dfdbg {

std::vector<std::string> split(std::string_view s, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    std::size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      return out;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
}

std::vector<std::string> split_ws(std::string_view s) {
  std::vector<std::string> out;
  std::size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) ++i;
    std::size_t start = i;
    while (i < s.size() && !std::isspace(static_cast<unsigned char>(s[i]))) ++i;
    if (i > start) out.emplace_back(s.substr(start, i - start));
  }
  return out;
}

std::string_view trim(std::string_view s) {
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front()))) s.remove_prefix(1);
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back()))) s.remove_suffix(1);
  return s;
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool ends_with(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() && s.substr(s.size() - suffix.size()) == suffix;
}

std::string to_lower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

std::string strformat(const char* fmt, ...) {
  va_list ap;
  va_start(ap, fmt);
  va_list ap2;
  va_copy(ap2, ap);
  int n = std::vsnprintf(nullptr, 0, fmt, ap);
  va_end(ap);
  std::string out;
  if (n > 0) {
    out.resize(static_cast<std::size_t>(n));
    std::vsnprintf(out.data(), out.size() + 1, fmt, ap2);
  }
  va_end(ap2);
  return out;
}

std::string mangle_filter_work(std::string_view filter_name) {
  std::string out;
  bool upper = true;
  for (char c : filter_name) {
    if (c == '_') {
      upper = true;
      continue;
    }
    out.push_back(upper ? static_cast<char>(std::toupper(static_cast<unsigned char>(c))) : c);
    upper = false;
  }
  out += "Filter_work_function";
  return out;
}

std::string mangle_controller_work(std::string_view module_name, int anon_index) {
  std::string camel;
  bool upper = true;
  for (char c : module_name) {
    if (c == '_') {
      upper = true;
      continue;
    }
    camel.push_back(upper ? static_cast<char>(std::toupper(static_cast<unsigned char>(c))) : c);
    upper = false;
  }
  return strformat("_component_%sModule_anon_%d_work", camel.c_str(), anon_index);
}

}  // namespace dfdbg

#include "dfdbg/common/json.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "dfdbg/common/strings.hpp"

namespace dfdbg {

std::string json_quote(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  out += '"';
  for (unsigned char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  out += '"';
  return out;
}

JsonWriter& JsonWriter::value(double v) {
  sep();
  if (!std::isfinite(v)) {  // JSON has no Inf/NaN; null is the least-bad spelling
    out_ += "null";
    return *this;
  }
  // %.17g round-trips every double but produces noisy output for the common
  // case; prefer the shortest of %g precisions that parses back exactly.
  char buf[32];
  for (int prec : {15, 16, 17}) {
    std::snprintf(buf, sizeof buf, "%.*g", prec, v);
    if (std::strtod(buf, nullptr) == v) break;
  }
  out_ += buf;
  return *this;
}

const JsonValue* JsonValue::find(std::string_view key) const {
  if (!is_object()) return nullptr;
  for (const auto& [k, v] : members_) {
    if (k == key) return &v;
  }
  return nullptr;
}

std::string JsonValue::str_or(std::string_view key, std::string_view dflt) const {
  const JsonValue* v = find(key);
  return (v != nullptr && v->is_string()) ? v->s_ : std::string(dflt);
}

std::uint64_t JsonValue::u64_or(std::string_view key, std::uint64_t dflt) const {
  const JsonValue* v = find(key);
  return (v != nullptr && v->is_number()) ? v->as_u64(dflt) : dflt;
}

bool JsonValue::bool_or(std::string_view key, bool dflt) const {
  const JsonValue* v = find(key);
  return (v != nullptr && v->is_bool()) ? v->b_ : dflt;
}

void JsonValue::write(JsonWriter& w) const {
  switch (kind_) {
    case Kind::kNull: w.null(); break;
    case Kind::kBool: w.value(b_); break;
    case Kind::kNumber:
      if (int_ && neg_) {
        w.value(-static_cast<std::int64_t>(u_));
      } else if (int_) {
        w.value(u_);
      } else {
        w.value(d_);
      }
      break;
    case Kind::kString: w.value(s_); break;
    case Kind::kArray:
      w.begin_array();
      for (const JsonValue& e : arr_) e.write(w);
      w.end_array();
      break;
    case Kind::kObject:
      w.begin_object();
      for (const auto& [k, v] : members_) {
        w.key(k);
        v.write(w);
      }
      w.end_object();
      break;
  }
}

std::string JsonValue::dump() const {
  JsonWriter w;
  write(w);
  return w.take();
}

namespace {

constexpr int kMaxDepth = 64;

}  // namespace

/// Recursive-descent parser over a string_view. Errors report a byte offset.
class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  Result<JsonValue> run() {
    JsonValue v;
    Status st = parse_value(v, 0);
    if (!st.ok()) return st;
    skip_ws();
    if (pos_ != text_.size()) return fail("trailing characters after document");
    return v;
  }

 private:
  Status parse_value(JsonValue& out, int depth) {
    if (depth > kMaxDepth) return fail("nesting too deep");
    skip_ws();
    if (pos_ >= text_.size()) return fail("unexpected end of input");
    switch (text_[pos_]) {
      case '{': return parse_object(out, depth);
      case '[': return parse_array(out, depth);
      case '"': out.kind_ = JsonValue::Kind::kString; return parse_string(out.s_);
      case 't':
        if (!literal("true")) return fail("bad literal");
        out.kind_ = JsonValue::Kind::kBool;
        out.b_ = true;
        return {};
      case 'f':
        if (!literal("false")) return fail("bad literal");
        out.kind_ = JsonValue::Kind::kBool;
        out.b_ = false;
        return {};
      case 'n':
        if (!literal("null")) return fail("bad literal");
        out.kind_ = JsonValue::Kind::kNull;
        return {};
      default: return parse_number(out);
    }
  }

  Status parse_object(JsonValue& out, int depth) {
    out.kind_ = JsonValue::Kind::kObject;
    ++pos_;  // '{'
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return {};
    }
    while (true) {
      skip_ws();
      if (peek() != '"') return fail("expected object key");
      std::string key;
      if (Status st = parse_string(key); !st.ok()) return st;
      skip_ws();
      if (peek() != ':') return fail("expected ':'");
      ++pos_;
      JsonValue v;
      if (Status st = parse_value(v, depth + 1); !st.ok()) return st;
      out.members_.emplace_back(std::move(key), std::move(v));
      skip_ws();
      char c = peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == '}') {
        ++pos_;
        return {};
      }
      return fail("expected ',' or '}'");
    }
  }

  Status parse_array(JsonValue& out, int depth) {
    out.kind_ = JsonValue::Kind::kArray;
    ++pos_;  // '['
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return {};
    }
    while (true) {
      JsonValue v;
      if (Status st = parse_value(v, depth + 1); !st.ok()) return st;
      out.arr_.push_back(std::move(v));
      skip_ws();
      char c = peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == ']') {
        ++pos_;
        return {};
      }
      return fail("expected ',' or ']'");
    }
  }

  Status parse_string(std::string& out) {
    ++pos_;  // '"'
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        return {};
      }
      if (c == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) break;
        char e = text_[pos_++];
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u': {
            unsigned cp = 0;
            if (!hex4(cp)) return fail("bad \\u escape");
            // Combine a surrogate pair when one follows; else emit as-is.
            if (cp >= 0xD800 && cp <= 0xDBFF && pos_ + 1 < text_.size() &&
                text_[pos_] == '\\' && text_[pos_ + 1] == 'u') {
              pos_ += 2;
              unsigned lo = 0;
              if (!hex4(lo)) return fail("bad \\u escape");
              if (lo >= 0xDC00 && lo <= 0xDFFF) {
                cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
              } else {
                append_utf8(out, cp);
                cp = lo;
              }
            }
            append_utf8(out, cp);
            break;
          }
          default: return fail("bad escape character");
        }
      } else if (static_cast<unsigned char>(c) < 0x20) {
        return fail("raw control character in string");
      } else {
        out += c;
        ++pos_;
      }
    }
    return fail("unterminated string");
  }

  Status parse_number(JsonValue& out) {
    std::size_t start = pos_;
    out.kind_ = JsonValue::Kind::kNumber;
    bool neg = false;
    if (peek() == '-') {
      neg = true;
      ++pos_;
    }
    if (!std::isdigit(static_cast<unsigned char>(peek()))) return fail("bad number");
    std::uint64_t mag = 0;
    bool overflow = false;
    while (std::isdigit(static_cast<unsigned char>(peek()))) {
      unsigned digit = static_cast<unsigned>(peek() - '0');
      if (mag > (UINT64_MAX - digit) / 10) overflow = true;
      mag = mag * 10 + digit;
      ++pos_;
    }
    bool integral = true;
    if (peek() == '.') {
      integral = false;
      ++pos_;
      if (!std::isdigit(static_cast<unsigned char>(peek()))) return fail("bad number");
      while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    }
    if (peek() == 'e' || peek() == 'E') {
      integral = false;
      ++pos_;
      if (peek() == '+' || peek() == '-') ++pos_;
      if (!std::isdigit(static_cast<unsigned char>(peek()))) return fail("bad number");
      while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    }
    std::string tok(text_.substr(start, pos_ - start));
    out.d_ = std::strtod(tok.c_str(), nullptr);
    out.int_ = integral && !overflow;
    out.neg_ = neg;
    out.u_ = out.int_ ? mag : 0;
    return {};
  }

  bool literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  bool hex4(unsigned& out) {
    out = 0;
    for (int i = 0; i < 4; ++i) {
      if (pos_ >= text_.size()) return false;
      char c = text_[pos_++];
      out <<= 4;
      if (c >= '0' && c <= '9') {
        out |= static_cast<unsigned>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        out |= static_cast<unsigned>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        out |= static_cast<unsigned>(c - 'A' + 10);
      } else {
        return false;
      }
    }
    return true;
  }

  static void append_utf8(std::string& out, unsigned cp) {
    if (cp < 0x80) {
      out += static_cast<char>(cp);
    } else if (cp < 0x800) {
      out += static_cast<char>(0xC0 | (cp >> 6));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else if (cp < 0x10000) {
      out += static_cast<char>(0xE0 | (cp >> 12));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else {
      out += static_cast<char>(0xF0 | (cp >> 18));
      out += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    }
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  [[nodiscard]] char peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }

  Status fail(const char* what) const {
    return Status::error(ErrCode::kParseError,
                         strformat("json: %s at offset %zu", what, pos_));
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

Result<JsonValue> JsonValue::parse(std::string_view text) {
  return JsonParser(text).run();
}

}  // namespace dfdbg

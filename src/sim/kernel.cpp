#include "dfdbg/sim/kernel.hpp"

#include <exception>

#include "dfdbg/common/assert.hpp"
#include "dfdbg/common/strings.hpp"
#include "dfdbg/obs/journal.hpp"
#include "dfdbg/obs/metrics.hpp"

namespace dfdbg::sim {

namespace {
/// Thrown inside parked processes at kernel teardown to unwind their stacks
/// cleanly through RAII frames (both backends).
struct ProcessKilled {};

/// Scheduler instruments, interned once (stable addresses by construction).
struct SchedMetrics {
  obs::Counter& dispatches;
  obs::Counter& context_switches;
  obs::Counter& spawns;
  obs::Counter& timed_wakeups;
  obs::Counter& breaks;
  obs::Histogram& ready_depth;
  static SchedMetrics& get() {
    auto& r = obs::Registry::global();
    static SchedMetrics m{r.counter("sim.dispatch"),     r.counter("sim.context_switch"),
                          r.counter("sim.process_spawn"), r.counter("sim.timed_wakeup"),
                          r.counter("sim.debug_break"),  r.histogram("sim.ready_depth")};
    return m;
  }
};
}  // namespace

// ---------------------------------------------------------------------------
// Process
// ---------------------------------------------------------------------------

const char* to_string(ProcessState s) {
  switch (s) {
    case ProcessState::kReady: return "ready";
    case ProcessState::kRunning: return "running";
    case ProcessState::kWaitingEvent: return "waiting-event";
    case ProcessState::kWaitingTime: return "waiting-time";
    case ProcessState::kTerminated: return "terminated";
  }
  return "?";
}

Process::Process(Kernel* kernel, ProcessId id, std::string name, std::function<void()> body)
    : kernel_(kernel), id_(id), name_(std::move(name)), body_(std::move(body)) {
  if (kernel_->backend_ == ProcessBackend::kFibers) {
    fiber_ = std::make_unique<FiberContext>(FiberContext::default_stack_bytes(),
                                            &Process::fiber_entry, this);
  } else {
    thread_ = std::thread([this] { thread_main(); });
  }
}

Process::~Process() {
  if (thread_.joinable()) thread_.join();
}

void Process::thread_main() {
  // Wait for the first dispatch (or teardown).
  resume_sem_.acquire();
  if (kernel_->shutting_down_) {
    kernel_->mark_terminated(this);
    return;
  }
  try {
    body_();
    kernel_->mark_terminated(this);
    kernel_->kernel_sem_.release();  // hand control back to the scheduler
  } catch (const ProcessKilled&) {
    kernel_->mark_terminated(this);
    // Teardown: the kernel is not blocked in dispatch; do not signal it.
  } catch (const std::exception& e) {
    panic(__FILE__, __LINE__,
          strformat("uncaught exception in simulated process '%s': %s", name_.c_str(), e.what()));
  }
}

void Process::fiber_entry(void* self) { static_cast<Process*>(self)->fiber_main(); }

void Process::fiber_main() {
  try {
    body_();
  } catch (const ProcessKilled&) {
    // Teardown: unwound through RAII frames; fall through to the final swap.
  } catch (const std::exception& e) {
    panic(__FILE__, __LINE__,
          strformat("uncaught exception in simulated process '%s': %s", name_.c_str(), e.what()));
  }
  kernel_->mark_terminated(this);
  // Permanent handoff: the scheduler (blocked in dispatch(), or in ~Kernel
  // during teardown) resumes and never re-enters this fiber.
  FiberContext::switch_to(*fiber_, kernel_->sched_ctx_);
  DFDBG_UNREACHABLE("terminated fiber was resumed");
}

void Process::park() {
  if (kernel_->backend_ == ProcessBackend::kFibers) {
    FiberContext::switch_to(*fiber_, kernel_->sched_ctx_);
  } else {
    kernel_->kernel_sem_.release();
    resume_sem_.acquire();
  }
  if (kernel_->shutting_down_) throw ProcessKilled{};
}

// ---------------------------------------------------------------------------
// Kernel
// ---------------------------------------------------------------------------

const char* to_string(RunResult r) {
  switch (r) {
    case RunResult::kFinished: return "finished";
    case RunResult::kStopped: return "stopped";
    case RunResult::kDeadlock: return "deadlock";
    case RunResult::kTimeLimit: return "time-limit";
  }
  return "?";
}

Kernel::Kernel(ProcessBackend backend) : backend_(backend) {}

Kernel::~Kernel() {
  shutting_down_ = true;
  instrument_.set_teardown(true);
  for (auto& p : processes_) {
    if (backend_ == ProcessBackend::kFibers) {
      if (p->state_ == ProcessState::kTerminated) continue;
      if (!p->fiber_started_) {
        // Body never began: nothing on the fiber stack to unwind.
        mark_terminated(p.get());
        continue;
      }
      // Resume the suspended fiber; park() throws ProcessKilled, the stack
      // unwinds through its RAII frames, and fiber_main swaps back here.
      FiberContext::switch_to(sched_ctx_, *p->fiber_);
      DFDBG_DCHECK(p->state_ == ProcessState::kTerminated);
    } else {
      // Release and join one process at a time so the teardown unwinds are
      // serialized like every other part of the cooperative kernel.
      if (p->state_ != ProcessState::kTerminated) p->resume_sem_.release();
      if (p->thread_.joinable()) p->thread_.join();
    }
  }
}

ProcessId Kernel::spawn(std::string name, std::function<void()> body) {
  DFDBG_CHECK_MSG(!shutting_down_, "spawn during teardown");
  auto id = ProcessId(static_cast<std::uint32_t>(processes_.size()));
  // Private constructor: cannot use make_unique.
  processes_.emplace_back(
      std::unique_ptr<Process>(new Process(this, id, std::move(name), std::move(body))));
  Process* p = processes_.back().get();
  name_index_.emplace(p->name(), id);  // keeps the first binding on collision
  live_count_++;
  make_ready(p);
  if (obs::enabled()) SchedMetrics::get().spawns.add();
  return id;
}

Process* Kernel::process(ProcessId id) const {
  if (!id.valid() || id.value() >= processes_.size()) return nullptr;
  return processes_[id.value()].get();
}

Process* Kernel::process_by_name(std::string_view name) const {
  auto it = name_index_.find(name);
  return it == name_index_.end() ? nullptr : processes_[it->second.value()].get();
}

void Kernel::mark_terminated(Process* p) {
  DFDBG_DCHECK(p->state_ != ProcessState::kTerminated);
  p->state_ = ProcessState::kTerminated;
  DFDBG_DCHECK(live_count_ > 0);
  live_count_--;
}

void Kernel::make_ready(Process* p) {
  p->state_ = ProcessState::kReady;
  if (policy_ == ReadyPolicy::kLifo)
    ready_.push_front(p);
  else
    ready_.push_back(p);
}

void Kernel::dispatch(Process* p) {
  DFDBG_DCHECK(p->state_ == ProcessState::kReady);
  p->state_ = ProcessState::kRunning;
  p->activations_++;
  dispatches_++;
  if (obs::enabled()) {
    SchedMetrics& m = SchedMetrics::get();
    m.dispatches.add();
    // Two control transfers per dispatch on either backend: one into the
    // process, one back to the scheduler when it yields. (Fibers: two
    // swapcontext calls; threads: two semaphore handoffs.)
    m.context_switches.add(2);
    // Depth observed when the process left the queue, i.e. the backlog it
    // waited behind.
    m.ready_depth.observe(ready_.size());
    obs::Journal& j = obs::Journal::global();
    if (j.recording()) {
      obs::JournalEvent ev;
      ev.time = now_;
      ev.kind = obs::JournalKind::kDispatch;
      ev.actor = j.intern_name(p->name());
      ev.index = p->activations_;
      j.record(ev);
    }
  }
  current_ = p;
  if (backend_ == ProcessBackend::kFibers) {
    p->fiber_started_ = true;
    FiberContext::switch_to(sched_ctx_, *p->fiber_);  // until it yields/terminates
  } else {
    p->resume_sem_.release();
    kernel_sem_.acquire();  // until the process yields or terminates
  }
  current_ = nullptr;
}

RunResult Kernel::run(SimTime until) {
  DFDBG_CHECK_MSG(current_ == nullptr, "Kernel::run called from process context");
  stop_requested_ = false;
  while (true) {
    if (stop_requested_) {
      stop_requested_ = false;
      return RunResult::kStopped;
    }
    if (ready_.empty()) {
      if (timed_.empty()) {
        return live_count_ == 0 ? RunResult::kFinished : RunResult::kDeadlock;
      }
      SimTime t = timed_.top().when;
      if (t > until) {
        now_ = until;
        return RunResult::kTimeLimit;
      }
      now_ = t;
      while (!timed_.empty() && timed_.top().when == now_) {
        Process* p = timed_.top().process;
        timed_.pop();
        make_ready(p);
        if (obs::enabled()) SchedMetrics::get().timed_wakeups.add();
      }
      continue;
    }
    Process* p = ready_.front();
    ready_.pop_front();
    if (p->state_ == ProcessState::kTerminated) continue;
    dispatch(p);
  }
}

void Kernel::wait(Event& e) {
  Process* p = current_;
  DFDBG_CHECK_MSG(p != nullptr, "wait() outside process context");
  p->state_ = ProcessState::kWaitingEvent;
  e.waiters_.push_back(p);
  p->park();
}

void Kernel::advance(SimTime dt) {
  Process* p = current_;
  DFDBG_CHECK_MSG(p != nullptr, "advance() outside process context");
  if (dt == 0) {
    // Plain yield: re-enqueue per the active policy.
    make_ready(p);
    p->park();
    return;
  }
  p->state_ = ProcessState::kWaitingTime;
  p->wake_time_ = now_ + dt;
  p->consumed_time_ += dt;
  timed_.push(TimedEntry{now_ + dt, wait_seq_counter_++, p});
  p->park();
}

void Kernel::debug_break() {
  Process* p = current_;
  DFDBG_CHECK_MSG(p != nullptr, "debug_break() outside process context");
  p->state_ = ProcessState::kReady;
  ready_.push_front(p);  // resume exactly here on the next run()
  stop_requested_ = true;
  if (obs::enabled()) SchedMetrics::get().breaks.add();
  p->park();
}

void Kernel::notify(Event& e) {
  e.notify_count_++;
  for (Process* p : e.waiters_) {
    DFDBG_DCHECK(p->state_ == ProcessState::kWaitingEvent);
    make_ready(p);
  }
  e.waiters_.clear();
}

}  // namespace dfdbg::sim

#include "dfdbg/sim/kernel.hpp"

#include <exception>

#include "dfdbg/common/assert.hpp"
#include "dfdbg/common/strings.hpp"
#include "dfdbg/obs/metrics.hpp"

namespace dfdbg::sim {

namespace {
/// Thrown inside parked process threads at kernel teardown to unwind their
/// stacks cleanly through RAII frames.
struct ProcessKilled {};

/// Scheduler instruments, interned once (stable addresses by construction).
struct SchedMetrics {
  obs::Counter& dispatches;
  obs::Counter& context_switches;
  obs::Counter& spawns;
  obs::Counter& timed_wakeups;
  obs::Counter& breaks;
  obs::Histogram& ready_depth;
  static SchedMetrics& get() {
    auto& r = obs::Registry::global();
    static SchedMetrics m{r.counter("sim.dispatch"),     r.counter("sim.context_switch"),
                          r.counter("sim.process_spawn"), r.counter("sim.timed_wakeup"),
                          r.counter("sim.debug_break"),  r.histogram("sim.ready_depth")};
    return m;
  }
};
}  // namespace

// ---------------------------------------------------------------------------
// Process
// ---------------------------------------------------------------------------

const char* to_string(ProcessState s) {
  switch (s) {
    case ProcessState::kReady: return "ready";
    case ProcessState::kRunning: return "running";
    case ProcessState::kWaitingEvent: return "waiting-event";
    case ProcessState::kWaitingTime: return "waiting-time";
    case ProcessState::kTerminated: return "terminated";
  }
  return "?";
}

Process::Process(Kernel* kernel, ProcessId id, std::string name, std::function<void()> body)
    : kernel_(kernel), id_(id), name_(std::move(name)), body_(std::move(body)) {
  thread_ = std::thread([this] { thread_main(); });
}

Process::~Process() {
  if (thread_.joinable()) thread_.join();
}

void Process::thread_main() {
  // Wait for the first dispatch (or teardown).
  resume_sem_.acquire();
  if (kernel_->shutting_down_) {
    state_ = ProcessState::kTerminated;
    return;
  }
  try {
    body_();
    state_ = ProcessState::kTerminated;
    kernel_->kernel_sem_.release();  // hand control back to the scheduler
  } catch (const ProcessKilled&) {
    state_ = ProcessState::kTerminated;
    // Teardown: the kernel is not blocked in dispatch; do not signal it.
  } catch (const std::exception& e) {
    panic(__FILE__, __LINE__,
          strformat("uncaught exception in simulated process '%s': %s", name_.c_str(), e.what()));
  }
}

void Process::park() {
  kernel_->kernel_sem_.release();
  resume_sem_.acquire();
  if (kernel_->shutting_down_) throw ProcessKilled{};
}

// ---------------------------------------------------------------------------
// Kernel
// ---------------------------------------------------------------------------

const char* to_string(RunResult r) {
  switch (r) {
    case RunResult::kFinished: return "finished";
    case RunResult::kStopped: return "stopped";
    case RunResult::kDeadlock: return "deadlock";
    case RunResult::kTimeLimit: return "time-limit";
  }
  return "?";
}

Kernel::Kernel() = default;

Kernel::~Kernel() {
  shutting_down_ = true;
  instrument_.set_teardown(true);
  for (auto& p : processes_) {
    if (p->state_ != ProcessState::kTerminated) p->resume_sem_.release();
  }
  for (auto& p : processes_) {
    if (p->thread_.joinable()) p->thread_.join();
  }
}

ProcessId Kernel::spawn(std::string name, std::function<void()> body) {
  DFDBG_CHECK_MSG(!shutting_down_, "spawn during teardown");
  auto id = ProcessId(static_cast<std::uint32_t>(processes_.size()));
  // Private constructor: cannot use make_unique.
  processes_.emplace_back(
      std::unique_ptr<Process>(new Process(this, id, std::move(name), std::move(body))));
  make_ready(processes_.back().get());
  SchedMetrics::get().spawns.add();
  return id;
}

Process* Kernel::process(ProcessId id) const {
  if (!id.valid() || id.value() >= processes_.size()) return nullptr;
  return processes_[id.value()].get();
}

Process* Kernel::process_by_name(const std::string& name) const {
  for (const auto& p : processes_)
    if (p->name() == name) return p.get();
  return nullptr;
}

std::size_t Kernel::live_process_count() const {
  std::size_t n = 0;
  for (const auto& p : processes_)
    if (p->state() != ProcessState::kTerminated) ++n;
  return n;
}

void Kernel::make_ready(Process* p) {
  p->state_ = ProcessState::kReady;
  if (policy_ == ReadyPolicy::kLifo)
    ready_.push_front(p);
  else
    ready_.push_back(p);
}

void Kernel::dispatch(Process* p) {
  DFDBG_DCHECK(p->state_ == ProcessState::kReady);
  p->state_ = ProcessState::kRunning;
  p->activations_++;
  dispatches_++;
  if (obs::enabled()) {
    SchedMetrics& m = SchedMetrics::get();
    m.dispatches.add();
    // One switch into the process, one back to the scheduler when it yields.
    m.context_switches.add(2);
    // Depth observed when the process left the queue, i.e. the backlog it
    // waited behind.
    m.ready_depth.observe(ready_.size());
  }
  current_ = p;
  p->resume_sem_.release();
  kernel_sem_.acquire();  // until the process yields or terminates
  current_ = nullptr;
}

RunResult Kernel::run(SimTime until) {
  DFDBG_CHECK_MSG(current_ == nullptr, "Kernel::run called from process context");
  stop_requested_ = false;
  while (true) {
    if (stop_requested_) {
      stop_requested_ = false;
      return RunResult::kStopped;
    }
    if (ready_.empty()) {
      if (timed_.empty()) {
        return live_process_count() == 0 ? RunResult::kFinished : RunResult::kDeadlock;
      }
      SimTime t = timed_.top().when;
      if (t > until) {
        now_ = until;
        return RunResult::kTimeLimit;
      }
      now_ = t;
      while (!timed_.empty() && timed_.top().when == now_) {
        Process* p = timed_.top().process;
        timed_.pop();
        make_ready(p);
        SchedMetrics::get().timed_wakeups.add();
      }
      continue;
    }
    Process* p = ready_.front();
    ready_.pop_front();
    if (p->state_ == ProcessState::kTerminated) continue;
    dispatch(p);
  }
}

void Kernel::wait(Event& e) {
  Process* p = current_;
  DFDBG_CHECK_MSG(p != nullptr, "wait() outside process context");
  p->state_ = ProcessState::kWaitingEvent;
  e.waiters_.push_back(p);
  p->park();
}

void Kernel::advance(SimTime dt) {
  Process* p = current_;
  DFDBG_CHECK_MSG(p != nullptr, "advance() outside process context");
  if (dt == 0) {
    // Plain yield: re-enqueue per the active policy.
    make_ready(p);
    p->park();
    return;
  }
  p->state_ = ProcessState::kWaitingTime;
  p->wake_time_ = now_ + dt;
  p->consumed_time_ += dt;
  timed_.push(TimedEntry{now_ + dt, wait_seq_counter_++, p});
  p->park();
}

void Kernel::debug_break() {
  Process* p = current_;
  DFDBG_CHECK_MSG(p != nullptr, "debug_break() outside process context");
  p->state_ = ProcessState::kReady;
  ready_.push_front(p);  // resume exactly here on the next run()
  stop_requested_ = true;
  SchedMetrics::get().breaks.add();
  p->park();
}

void Kernel::notify(Event& e) {
  e.notify_count_++;
  for (Process* p : e.waiters_) {
    DFDBG_DCHECK(p->state_ == ProcessState::kWaitingEvent);
    make_ready(p);
  }
  e.waiters_.clear();
}

}  // namespace dfdbg::sim

#include "dfdbg/sim/kernel.hpp"

#include <algorithm>
#include <chrono>
#include <exception>

#include "dfdbg/common/assert.hpp"
#include "dfdbg/common/strings.hpp"
#include "dfdbg/obs/journal.hpp"
#include "dfdbg/obs/metrics.hpp"

namespace dfdbg::sim {

namespace {
/// Thrown inside parked processes at kernel teardown to unwind their stacks
/// cleanly through RAII frames (both backends).
struct ProcessKilled {};

/// Scheduler instruments, interned once (stable addresses by construction).
struct SchedMetrics {
  obs::Counter& dispatches;
  obs::Counter& context_switches;
  obs::Counter& spawns;
  obs::Counter& timed_wakeups;
  obs::Counter& breaks;
  obs::Counter& rounds;
  obs::Counter& elided;            ///< sim.barrier.elided_rounds
  obs::Histogram& ready_depth;
  obs::Histogram& round_wall_ns;   ///< sim.barrier.round_wall_ns
  obs::Histogram& round_drain_ns;  ///< sim.barrier.drain_ns
  obs::Gauge& boundary_hwm;        ///< sim.barrier.boundary_hwm
  static SchedMetrics& get() {
    auto& r = obs::Registry::global();
    static SchedMetrics m{r.counter("sim.dispatch"),      r.counter("sim.context_switch"),
                          r.counter("sim.process_spawn"), r.counter("sim.timed_wakeup"),
                          r.counter("sim.debug_break"),   r.counter("sim.barrier.round"),
                          r.counter("sim.barrier.elided_rounds"),
                          r.histogram("sim.ready_depth"),
                          r.histogram("sim.barrier.round_wall_ns"),
                          r.histogram("sim.barrier.drain_ns"),
                          r.gauge("sim.barrier.boundary_hwm")};
    return m;
  }
};

/// Monotonic wall clock for shard time attribution. Never feeds back into
/// scheduling decisions, so measurement cannot perturb determinism.
std::uint64_t mono_ns() {
  return static_cast<std::uint64_t>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                        std::chrono::steady_clock::now().time_since_epoch())
                                        .count());
}

/// Parallel backend: identifies the worker thread (and hence partition) the
/// calling code runs on, plus the deferred-break bookkeeping for hooks that
/// request a stop while the instrumentation dispatch mutex is held.
struct WorkerTls {
  Kernel* kernel = nullptr;
  int shard = -1;
  int hook_depth = 0;
  bool pending_break = false;
};
thread_local WorkerTls t_worker;

/// Journal intern id of `p`'s name, cached on the process (the intern table
/// is a locked hash map in parallel mode; the dispatch hot path must not
/// take it per event).
std::uint32_t journal_name_of(obs::Journal& j, Process* p) {
  std::uint32_t id = p->jname();
  if (id == UINT32_MAX) {
    id = j.intern_name(p->name());
    p->set_jname(id);
  }
  return id;
}

}  // namespace

// ---------------------------------------------------------------------------
// Process
// ---------------------------------------------------------------------------

const char* to_string(ProcessState s) {
  switch (s) {
    case ProcessState::kReady: return "ready";
    case ProcessState::kRunning: return "running";
    case ProcessState::kWaitingEvent: return "waiting-event";
    case ProcessState::kWaitingTime: return "waiting-time";
    case ProcessState::kTerminated: return "terminated";
  }
  return "?";
}

Process::Process(Kernel* kernel, ProcessId id, std::string name, std::function<void()> body)
    : kernel_(kernel), id_(id), name_(std::move(name)), body_(std::move(body)) {
  resume_anchor_ = &kernel_->sched_ctx_;
  sched_sem_ = &kernel_->kernel_sem_;
  if (kernel_->uses_fiber_processes()) {
    fiber_ = std::make_unique<FiberContext>(FiberContext::default_stack_bytes(),
                                            &Process::fiber_entry, this);
  } else {
    thread_ = std::thread([this] { thread_main(); });
  }
}

Process::~Process() {
  if (thread_.joinable()) thread_.join();
}

void Process::thread_main() {
  // Wait for the first dispatch (or teardown).
  resume_sem_.acquire();
  if (kernel_->shutting_down_) {
    kernel_->mark_terminated(this);
    return;
  }
  if (kernel_->parallel_) {
    // Thread-substrate parallel processes run on their own OS thread, not the
    // shard's worker thread: adopt the shard identity so wait()/notify()/
    // debug_break() resolve the right sub-kernel, and the shard journal so
    // records land in the same buffer they would under the fiber substrate.
    // Safe because the worker blocks in dispatch_shard while this thread runs.
    t_worker.kernel = kernel_;
    t_worker.shard = shard_;
    obs::Journal::set_thread_journal(kernel_->shards_[shard_]->journal.get());
  } else {
    // Sequential thread-substrate processes likewise adopt the journal the
    // kernel was built under: a hosted session's private journal must see the
    // link push/pop records and token-id allocations made from actor bodies,
    // not the process-wide base. Safe because the scheduler blocks while this
    // thread runs (cooperative handoff).
    obs::Journal::set_thread_journal(kernel_->journal_base_);
  }
  try {
    body_();
    kernel_->mark_terminated(this);
    sched_sem_->release();  // hand control back to the scheduler
  } catch (const ProcessKilled&) {
    kernel_->mark_terminated(this);
    // Teardown: the kernel is not blocked in dispatch; do not signal it.
  } catch (const std::exception& e) {
    panic(__FILE__, __LINE__,
          strformat("uncaught exception in simulated process '%s': %s", name_.c_str(), e.what()));
  }
}

void Process::fiber_entry(void* self) { static_cast<Process*>(self)->fiber_main(); }

void Process::fiber_main() {
  try {
    body_();
  } catch (const ProcessKilled&) {
    // Teardown: unwound through RAII frames; fall through to the final swap.
  } catch (const std::exception& e) {
    panic(__FILE__, __LINE__,
          strformat("uncaught exception in simulated process '%s': %s", name_.c_str(), e.what()));
  }
  kernel_->mark_terminated(this);
  // Permanent handoff: the scheduler (blocked in dispatch() — per-shard in
  // parallel mode — or in ~Kernel during teardown) resumes and never
  // re-enters this fiber.
  FiberContext::switch_to(*fiber_, *resume_anchor_);
  DFDBG_UNREACHABLE("terminated fiber was resumed");
}

void Process::park() {
  if (fiber_ != nullptr) {
    FiberContext::switch_to(*fiber_, *resume_anchor_);
  } else {
    sched_sem_->release();
    resume_sem_.acquire();
  }
  if (kernel_->shutting_down_) throw ProcessKilled{};
}

// ---------------------------------------------------------------------------
// Kernel — construction, spawning, shared plumbing
// ---------------------------------------------------------------------------

const char* to_string(RunResult r) {
  switch (r) {
    case RunResult::kFinished: return "finished";
    case RunResult::kStopped: return "stopped";
    case RunResult::kDeadlock: return "deadlock";
    case RunResult::kTimeLimit: return "time-limit";
  }
  return "?";
}

Kernel::Kernel(ProcessBackend backend, int workers) : backend_(backend) {
  // Capture the journal visible at construction time (thread override if a
  // hosted session installed one, else the process-wide base). Every backend
  // needs this: parallel shard journals delegate token-id allocation to it
  // and merge back into it, and thread-substrate processes adopt it on their
  // own OS threads — so a kernel built under a per-session journal stays
  // confined to that session.
  journal_base_ = &obs::Journal::global();
  parallel_ = backend_ == ProcessBackend::kParallel;
  if (!parallel_) return;
  parallel_thread_processes_ = parallel_uses_thread_processes();
  int k = workers > 0 ? workers : default_parallel_workers();
  obs::Journal& base = *journal_base_;
  for (int i = 0; i < k; ++i) {
    auto sh = std::make_unique<Shard>();
    sh->index = i;
    sh->journal = std::make_unique<obs::Journal>(base.capacity());
    // Partition 0 of a single-partition kernel delegates token-id allocation
    // to the process-wide journal (uid base 0): ids — and therefore `whence`
    // output — stay byte-identical to the sequential backends. Multi-
    // partition kernels give each shard a disjoint 48-bit-offset range.
    std::uint64_t uid_base = k == 1 ? 0 : (static_cast<std::uint64_t>(i) + 1) << 48;
    sh->journal->configure_shard(&base, uid_base);
    obs::Registry& reg = obs::Registry::global();
    sh->m_dispatches = &reg.counter(strformat("sim.worker.%d.dispatch", i));
    sh->m_work_ns = &reg.counter(strformat("sim.worker.%d.work_ns", i));
    sh->m_wait_ns = &reg.counter(strformat("sim.worker.%d.barrier_wait_ns", i));
    sh->m_drain_ns = &reg.counter(strformat("sim.worker.%d.drain_ns", i));
    sh->m_idle_ns = &reg.counter(strformat("sim.worker.%d.idle_ns", i));
    sh->m_stalls = &reg.counter(strformat("sim.worker.%d.stalled_rounds", i));
    sh->m_skipped = &reg.counter(strformat("sim.worker.%d.skipped_wakes", i));
    sh->m_eager = &reg.counter(strformat("sim.worker.%d.eager_drained", i));
    sh->h_round_work = &reg.histogram(strformat("sim.worker.%d.round_work_ns", i));
    shards_.push_back(std::move(sh));
  }
  obs::Registry::global().gauge("sim.worker.count").set(k);
}

Kernel::~Kernel() {
  stop_workers();
  shutting_down_ = true;
  instrument_.set_teardown(true);
  for (auto& p : processes_) {
    if (p->fiber_ != nullptr) {
      if (p->state_ == ProcessState::kTerminated) continue;
      if (!p->fiber_started_) {
        // Body never began: nothing on the fiber stack to unwind.
        mark_terminated(p.get());
        continue;
      }
      // Resume the suspended fiber on this (the main) thread; park() throws
      // ProcessKilled, the stack unwinds through its RAII frames, and
      // fiber_main swaps back here.
      p->resume_anchor_ = &sched_ctx_;
      FiberContext::switch_to(sched_ctx_, *p->fiber_);
      DFDBG_DCHECK(p->state_ == ProcessState::kTerminated);
    } else {
      // Release and join one process at a time so the teardown unwinds are
      // serialized like every other part of the cooperative kernel.
      if (p->state_ != ProcessState::kTerminated) p->resume_sem_.release();
      if (p->thread_.joinable()) p->thread_.join();
    }
  }
}

bool Kernel::uses_fiber_processes() const {
  if (backend_ == ProcessBackend::kFibers) return true;
  return parallel_ && !parallel_thread_processes_;
}

ProcessId Kernel::spawn(std::string name, std::function<void()> body) {
  int partition = 0;
  if (parallel_ && t_worker.kernel == this) partition = t_worker.shard;
  return spawn_in(partition, std::move(name), std::move(body));
}

ProcessId Kernel::spawn_in(int partition, std::string name, std::function<void()> body) {
  DFDBG_CHECK_MSG(!shutting_down_, "spawn during teardown");
  if (parallel_) {
    DFDBG_CHECK_MSG(partition >= 0 && partition < partition_count(),
                    "spawn_in: partition out of range");
    // A worker may only spawn into its own partition: another shard's ready
    // queue is in concurrent use during a round.
    DFDBG_CHECK_MSG(t_worker.kernel != this || t_worker.shard == partition,
                    "spawn_in: cross-partition spawn from a worker");
  } else {
    DFDBG_CHECK_MSG(partition == 0, "spawn_in: sequential backends have one partition");
  }
  // Serialize the process table: workers of distinct shards may spawn
  // concurrently mid-round. (Lookups race only with mid-run spawns, which
  // the pedf runtime never performs.)
  std::unique_lock<std::mutex> lk(spawn_mu_, std::defer_lock);
  if (parallel_) lk.lock();
  auto id = ProcessId(static_cast<std::uint32_t>(processes_.size()));
  // Private constructor: cannot use make_unique.
  processes_.emplace_back(
      std::unique_ptr<Process>(new Process(this, id, std::move(name), std::move(body))));
  Process* p = processes_.back().get();
  p->shard_ = partition;
  if (parallel_) {
    p->sched_sem_ = &shards_[partition]->sem;
    p->resume_anchor_ = &shards_[partition]->sched_ctx;
  }
  name_index_.emplace(p->name(), id);  // keeps the first binding on collision
  live_count_.fetch_add(1, std::memory_order_relaxed);
  make_ready(p);
  if (obs::enabled()) SchedMetrics::get().spawns.add();
  return id;
}

Process* Kernel::process(ProcessId id) const {
  if (!id.valid() || id.value() >= processes_.size()) return nullptr;
  return processes_[id.value()].get();
}

Process* Kernel::process_by_name(std::string_view name) const {
  auto it = name_index_.find(name);
  return it == name_index_.end() ? nullptr : processes_[it->second.value()].get();
}

void Kernel::mark_terminated(Process* p) {
  DFDBG_DCHECK(p->state_ != ProcessState::kTerminated);
  p->state_ = ProcessState::kTerminated;
  DFDBG_DCHECK(live_count_.load(std::memory_order_relaxed) > 0);
  live_count_.fetch_sub(1, std::memory_order_relaxed);
}

void Kernel::make_ready(Process* p) {
  p->state_ = ProcessState::kReady;
  std::deque<Process*>& q = parallel_ ? shards_[p->shard_]->ready : ready_;
  if (policy_ == ReadyPolicy::kLifo)
    q.push_front(p);
  else
    q.push_back(p);
}

std::uint64_t Kernel::dispatch_count() const {
  if (!parallel_) return dispatches_;
  std::uint64_t n = dispatches_;
  for (const auto& sh : shards_) n += sh->dispatches;
  return n;
}

int Kernel::current_partition() const {
  if (!parallel_ || t_worker.kernel != this) return -1;
  return t_worker.shard;
}

void Kernel::add_barrier_task(std::function<bool()> task) {
  DFDBG_CHECK_MSG(parallel_, "add_barrier_task: parallel backend only");
  barrier_tasks_.push_back(std::move(task));
}

void Kernel::hook_dispatch_enter() {
  if (!parallel_) return;
  if (t_worker.kernel == this) t_worker.hook_depth++;
}

void Kernel::hook_dispatch_exit() {
  if (!parallel_) return;
  WorkerTls& t = t_worker;
  if (t.kernel != this || t.hook_depth == 0) return;
  if (--t.hook_depth == 0 && t.pending_break) {
    // A hook asked for debug_break() while the dispatch mutex was held;
    // take the stop now that the mutex is released (parking while holding
    // it would deadlock this shard's scheduler).
    t.pending_break = false;
    debug_break_parallel();
  }
}

// ---------------------------------------------------------------------------
// Kernel — sequential backends
// ---------------------------------------------------------------------------

void Kernel::dispatch(Process* p) {
  DFDBG_DCHECK(p->state_ == ProcessState::kReady);
  p->state_ = ProcessState::kRunning;
  p->activations_++;
  dispatches_++;
  const bool prof = obs::enabled();
  if (prof) {
    SchedMetrics& m = SchedMetrics::get();
    m.dispatches.add();
    // Two control transfers per dispatch on either backend: one into the
    // process, one back to the scheduler when it yields. (Fibers: two
    // swapcontext calls; threads: two semaphore handoffs.)
    m.context_switches.add(2);
    // Depth observed when the process left the queue, i.e. the backlog it
    // waited behind.
    m.ready_depth.observe(ready_.size());
    obs::Journal& j = obs::Journal::global();
    if (j.recording()) {
      obs::JournalEvent ev;
      ev.time = now_;
      ev.kind = obs::JournalKind::kDispatch;
      ev.actor = journal_name_of(j, p);
      ev.index = p->activations_;
      j.record(ev);
    }
  }
  current_ = p;
  // No per-fire wall-time accumulation here: the time profile only ever
  // feeds the parallel backend's partitioner, and two clock reads per
  // dispatch would tax every observed sequential run for data nothing
  // consumes (dispatch_parallel pays them instead, amortized by its
  // heavier handshake).
  if (p->fiber_ != nullptr) {
    p->fiber_started_ = true;
    FiberContext::switch_to(sched_ctx_, *p->fiber_);  // until it yields/terminates
  } else {
    p->resume_sem_.release();
    kernel_sem_.acquire();  // until the process yields or terminates
  }
  current_ = nullptr;
}

RunResult Kernel::run(SimTime until) {
  if (parallel_) return run_parallel(until);
  DFDBG_CHECK_MSG(current_ == nullptr, "Kernel::run called from process context");
  stop_requested_ = false;
  while (true) {
    if (stop_requested_) {
      stop_requested_ = false;
      return RunResult::kStopped;
    }
    if (ready_.empty()) {
      if (timed_.empty()) {
        return live_count_.load(std::memory_order_relaxed) == 0 ? RunResult::kFinished
                                                                : RunResult::kDeadlock;
      }
      SimTime t = timed_.top().when;
      if (t > until) {
        now_ = until;
        return RunResult::kTimeLimit;
      }
      now_ = t;
      while (!timed_.empty() && timed_.top().when == now_) {
        Process* p = timed_.top().process;
        timed_.pop();
        make_ready(p);
        if (obs::enabled()) SchedMetrics::get().timed_wakeups.add();
      }
      continue;
    }
    Process* p = ready_.front();
    ready_.pop_front();
    if (p->state_ == ProcessState::kTerminated) continue;
    dispatch(p);
  }
}

void Kernel::wait(Event& e) {
  if (parallel_) {
    wait_parallel(e);
    return;
  }
  Process* p = current_;
  DFDBG_CHECK_MSG(p != nullptr, "wait() outside process context");
  p->state_ = ProcessState::kWaitingEvent;
  e.waiters_.push_back(p);
  p->park();
}

void Kernel::advance(SimTime dt) {
  if (parallel_) {
    advance_parallel(dt);
    return;
  }
  Process* p = current_;
  DFDBG_CHECK_MSG(p != nullptr, "advance() outside process context");
  if (dt == 0) {
    // Plain yield: re-enqueue per the active policy.
    make_ready(p);
    p->park();
    return;
  }
  p->state_ = ProcessState::kWaitingTime;
  p->wake_time_ = now_ + dt;
  p->consumed_time_ += dt;
  timed_.push(TimedEntry{now_ + dt, wait_seq_counter_++, p});
  p->park();
}

void Kernel::debug_break() {
  if (parallel_) {
    debug_break_parallel();
    return;
  }
  Process* p = current_;
  DFDBG_CHECK_MSG(p != nullptr, "debug_break() outside process context");
  p->state_ = ProcessState::kReady;
  ready_.push_front(p);  // resume exactly here on the next run()
  stop_requested_ = true;
  if (obs::enabled()) SchedMetrics::get().breaks.add();
  p->park();
}

void Kernel::notify(Event& e) {
  if (parallel_) {
    notify_parallel(e);
    return;
  }
  e.notify_count_++;
  for (Process* p : e.waiters_) {
    DFDBG_DCHECK(p->state_ == ProcessState::kWaitingEvent);
    make_ready(p);
  }
  e.waiters_.clear();
}

// ---------------------------------------------------------------------------
// Kernel — parallel backend
//
// Execution model: every partition ("shard") is a sub-kernel — its own ready
// queue, timed queue and scheduler anchor — drained to quiescence by a
// dedicated worker thread. The coordinator (the thread that called run())
// alternates rounds with (mostly elided) barriers:
//
//   round:   the coordinator wakes only the shards that can progress — a
//            non-empty ready queue, or published boundary backlog their
//            eager drain can deliver (sparse wakes; the rest stay parked
//            and count a skipped_wake). Workers drain their shards,
//            interleaving eager drains of their inbound boundary channels
//            (tokens below the coordinator's published limit, in link
//            order); processes that wait/advance park as usual; notifies to
//            events owned by another partition are *deferred* (recorded,
//            not delivered).
//   barrier: only when the round produced cross-partition effects —
//            boundary traffic, deferred notifies, or a debug stop — does
//            the coordinator merge journal shards, deliver the deferred
//            notifies in partition order, and publish the boundary channels
//            (snapshot send indices, reclaim consumed slots, wake blocked
//            producers). Effect-free rounds skip all of it
//            (sim.barrier.elided_rounds); their journal records wait in the
//            bounded shard rings for the next real barrier or run exit.
//            Virtual-time advance, the registered full boundary drains
//            (barrier tasks) and debug stops still take a full barrier at
//            global quiescence.
//
// Determinism: each shard's drain order is a function of its own queue
// contents; eager-drain eligibility is bounded by the coordinator's
// *snapshots*, not live producer indices, so the delivered set per round is
// timing-independent; the coordinator's work happens in fixed (partition,
// link registration) order; time advances only at global quiescence. Hence
// the whole schedule — dispatches, token movements, journal merge order — is
// a pure function of the program and the partition map. With one partition
// it is the *same* function the sequential backends compute (a single
// partition has no boundary channels, and its unclaimed-event notifies keep
// every round un-elided).
// ---------------------------------------------------------------------------

Process* Kernel::current_parallel() const {
  if (t_worker.kernel != this) return nullptr;
  return shards_[t_worker.shard]->current;
}

void Kernel::ensure_workers_started() {
  if (workers_started_) return;
  workers_started_ = true;
  for (auto& sh : shards_) {
    int idx = sh->index;
    sh->thread = std::thread([this, idx] { worker_main(idx); });
  }
}

void Kernel::stop_workers() {
  if (!workers_started_) return;
  {
    std::lock_guard<std::mutex> lk(round_mu_);
    workers_exit_ = true;
  }
  for (auto& sh : shards_) sh->cv.notify_one();
  for (auto& sh : shards_)
    if (sh->thread.joinable()) sh->thread.join();
  workers_started_ = false;
}

void Kernel::worker_main(int shard) {
  Shard& s = *shards_[shard];
  t_worker.kernel = this;
  t_worker.shard = shard;
  // All journal traffic from this thread (dispatch records, link push/pop
  // records, token-id allocation) lands in the shard's private buffer.
  obs::Journal::set_thread_journal(s.journal.get());
  while (true) {
    {
      std::unique_lock<std::mutex> lk(round_mu_);
      s.cv.wait(lk, [&] { return workers_exit_ || s.wake; });
      if (workers_exit_) break;
      s.wake = false;
    }
    // Attribution: the worker times its own drain (clock reads obs-gated; the
    // scratch stores are unconditional and ordered before the coordinator's
    // read by the round_mu_ handshake below).
    const std::uint64_t dispatches_before = s.dispatches;
    const bool prof = obs::enabled();
    const std::uint64_t w0 = prof ? mono_ns() : 0;
    std::uint64_t eager = 0;
    drain_shard(s);
    if (boundary_hooks_.eager_drain) {
      // Eagerly deliver published cross-partition tokens and run whatever
      // they wake, until neither makes progress. Eligibility is bounded by
      // the coordinator's snapshot, so this fixpoint — like the drain order
      // itself — is a pure function of the round's starting state.
      while (!s.stop_round) {
        const std::size_t got = boundary_hooks_.eager_drain(s.index);
        if (got == 0) break;
        eager += got;
        drain_shard(s);
      }
    }
    s.round_eager = eager;
    s.eager_total += eager;
    s.round_work_ns = prof ? mono_ns() - w0 : 0;
    s.round_dispatches = s.dispatches - dispatches_before;
    {
      std::lock_guard<std::mutex> lk(round_mu_);
      if (--workers_running_ == 0) done_cv_.notify_one();
    }
  }
  obs::Journal::set_thread_journal(nullptr);
}

void Kernel::run_round() {
  rounds_++;
  if (obs::enabled()) SchedMetrics::get().rounds.add();
  std::unique_lock<std::mutex> lk(round_mu_);
  int participants = 0;
  for (auto& sh : shards_) {
    if (!sh->participant) continue;
    sh->wake = true;
    participants++;
  }
  workers_running_ = participants;
  for (auto& sh : shards_)
    if (sh->participant) sh->cv.notify_one();
  done_cv_.wait(lk, [&] { return workers_running_ == 0; });
}

void Kernel::drain_shard(Shard& s) {
  while (!s.ready.empty() && !s.stop_round) {
    Process* p = s.ready.front();
    s.ready.pop_front();
    if (p->state_ == ProcessState::kTerminated) continue;
    dispatch_shard(s, p);
  }
}

void Kernel::dispatch_shard(Shard& s, Process* p) {
  DFDBG_DCHECK(p->state_ == ProcessState::kReady);
  p->state_ = ProcessState::kRunning;
  p->activations_++;
  s.dispatches++;
  const bool prof = obs::enabled();
  if (prof) {
    SchedMetrics& m = SchedMetrics::get();
    m.dispatches.add();
    m.context_switches.add(2);
    m.ready_depth.observe(s.ready.size());
    s.m_dispatches->add();
    obs::Journal& j = *s.journal;
    if (j.recording()) {
      obs::JournalEvent ev;
      ev.time = now_;
      ev.kind = obs::JournalKind::kDispatch;
      ev.actor = journal_name_of(j, p);
      ev.index = p->activations_;
      j.record(ev);
    }
  }
  s.current = p;
  const std::uint64_t f0 = prof ? mono_ns() : 0;
  if (p->fiber_ != nullptr) {
    p->fiber_started_ = true;
    p->resume_anchor_ = &s.sched_ctx;
    FiberContext::switch_to(s.sched_ctx, *p->fiber_);
  } else {
    p->resume_sem_.release();
    s.sem.acquire();
  }
  if (prof) p->consumed_wall_ns_ += mono_ns() - f0;
  s.current = nullptr;
}

void Kernel::wait_parallel(Event& e) {
  DFDBG_CHECK_MSG(t_worker.kernel == this, "wait() outside process context");
  Shard& s = *shards_[t_worker.shard];
  Process* p = s.current;
  DFDBG_CHECK_MSG(p != nullptr, "wait() outside process context");
  int expected = -1;
  if (!e.partition_.compare_exchange_strong(expected, s.index, std::memory_order_acq_rel,
                                            std::memory_order_acquire)) {
    DFDBG_CHECK_MSG(expected == s.index,
                    strformat("event '%s' waited from partitions %d and %d — an event's "
                              "waiters must share one partition (see docs/KERNEL.md)",
                              e.name().c_str(), expected, s.index));
  }
  p->state_ = ProcessState::kWaitingEvent;
  e.waiters_.push_back(p);
  p->park();
}

void Kernel::advance_parallel(SimTime dt) {
  DFDBG_CHECK_MSG(t_worker.kernel == this, "advance() outside process context");
  Shard& s = *shards_[t_worker.shard];
  Process* p = s.current;
  DFDBG_CHECK_MSG(p != nullptr, "advance() outside process context");
  if (dt == 0) {
    make_ready(p);
    p->park();
    return;
  }
  p->state_ = ProcessState::kWaitingTime;
  p->wake_time_ = now_ + dt;
  p->consumed_time_ += dt;
  s.timed.push(TimedEntry{now_ + dt, s.wait_seq++, p});
  p->park();
}

void Kernel::debug_break_parallel() {
  WorkerTls& t = t_worker;
  DFDBG_CHECK_MSG(t.kernel == this, "debug_break() outside process context");
  if (t.hook_depth > 0) {
    // Called from inside an instrumentation hook: the dispatch mutex is
    // held. Defer; hook_dispatch_exit() parks once the hooks finish.
    t.pending_break = true;
    return;
  }
  Shard& s = *shards_[t.shard];
  Process* p = s.current;
  DFDBG_CHECK_MSG(p != nullptr, "debug_break() outside process context");
  p->state_ = ProcessState::kReady;
  s.ready.push_front(p);  // resume exactly here on the next run()
  s.stop_round = true;    // this shard ends its round; others drain naturally
  stop_flag_.store(true, std::memory_order_release);
  if (obs::enabled()) SchedMetrics::get().breaks.add();
  p->park();
}

void Kernel::notify_deliver(Event& e) {
  e.notify_count_++;
  for (Process* p : e.waiters_) {
    DFDBG_DCHECK(p->state_ == ProcessState::kWaitingEvent);
    make_ready(p);
  }
  e.waiters_.clear();
}

void Kernel::notify_parallel(Event& e) {
  WorkerTls& t = t_worker;
  if (t.kernel == this) {
    if (e.partition_.load(std::memory_order_acquire) == t.shard) {
      notify_deliver(e);  // same-partition: immediate, exactly like sequential
      return;
    }
    // Cross-partition (or unclaimed): defer to the barrier. Dedupe so one
    // event is delivered once per barrier no matter how many notifies hit it.
    if (!e.deferred_pending_.exchange(true, std::memory_order_acq_rel))
      shards_[t.shard]->deferred_notifies.push_back(&e);
    return;
  }
  // Coordinator/main thread: the simulation is stopped or at a barrier, so
  // the delivery is race-free — this is how the debugger unties deadlocks.
  notify_deliver(e);
}

bool Kernel::notify_if_waiting_parallel(Event& e) {
  WorkerTls& t = t_worker;
  if (t.kernel == this) {
    if (e.partition_.load(std::memory_order_acquire) == t.shard) {
      if (e.waiters_.empty()) {
        e.coalesced_count_++;
        return false;
      }
      notify_deliver(e);
      return true;
    }
    // Cross-partition: waiters_ cannot be read here; defer the edge.
    if (!e.deferred_pending_.exchange(true, std::memory_order_acq_rel))
      shards_[t.shard]->deferred_notifies.push_back(&e);
    return true;
  }
  if (e.waiters_.empty()) {
    e.coalesced_count_++;
    return false;
  }
  notify_deliver(e);
  return true;
}

void Kernel::record_round(std::uint64_t t0, std::uint64_t t1, std::uint64_t t2,
                          std::uint64_t boundary_hwm, bool elided) {
  const std::uint64_t wall = t2 - t0;
  const std::uint64_t drain = t2 - t1;
  const std::uint64_t span = t1 - t0;  // workers woken -> workers quiescent
  BarrierRoundRecord rec;
  rec.round = rounds_;
  rec.vtime = now_;
  rec.wall_ns = wall;
  rec.drain_ns = drain;
  rec.boundary_hwm = boundary_hwm;
  rec.elided = elided;
  rec.partitions.reserve(shards_.size());
  for (auto& sh : shards_) {
    BarrierRoundRecord::PartitionDelta d;
    // A skipped shard stayed parked: its round scratch (round_dispatches,
    // round_work_ns, round_eager) is stale from an earlier round and must
    // not be read. It did nothing and waited out the whole span.
    d.skipped = !sh->participant;
    d.dispatches = d.skipped ? 0 : sh->round_dispatches;
    d.eager = d.skipped ? 0 : sh->round_eager;
    // Worker and coordinator read the same steady clock from different
    // threads; clamp so work never exceeds the span the coordinator saw.
    d.work_ns = d.skipped ? 0 : std::min(sh->round_work_ns, span);
    d.wait_ns = span - d.work_ns;
    d.stalled = !d.skipped && sh->round_dispatches == 0;
    sh->work_ns_total += d.work_ns;
    sh->wait_ns_total += d.wait_ns;
    sh->drain_ns_total += drain;
    sh->m_work_ns->add(d.work_ns);
    sh->m_wait_ns->add(d.wait_ns);
    sh->m_drain_ns->add(drain);
    if (d.stalled) {
      sh->stalled_rounds++;
      sh->m_stalls->add();
    }
    if (d.skipped) sh->m_skipped->add();
    if (d.eager != 0) sh->m_eager->add(d.eager);
    sh->h_round_work->observe(d.work_ns);
    rec.partitions.push_back(d);
  }
  SchedMetrics& m = SchedMetrics::get();
  m.round_wall_ns.observe(wall);
  m.round_drain_ns.observe(drain);
  if (elided) m.elided.add();
  if (boundary_hwm > 0) m.boundary_hwm.set(static_cast<std::int64_t>(boundary_hwm));
  round_records_.push_back(std::move(rec));
  while (round_records_.size() > round_record_capacity_) round_records_.pop_front();
}

std::vector<BarrierRoundRecord> Kernel::round_records_after(std::uint64_t after,
                                                            std::size_t max_n) const {
  std::vector<BarrierRoundRecord> out;
  for (const BarrierRoundRecord& r : round_records_) {
    if (r.round <= after) continue;
    if (out.size() >= max_n) break;
    out.push_back(r);
  }
  return out;
}

void Kernel::set_round_record_capacity(std::size_t n) {
  round_record_capacity_ = n == 0 ? 1 : n;
  while (round_records_.size() > round_record_capacity_) round_records_.pop_front();
}

Kernel::ShardTotals Kernel::shard_totals(int partition) const {
  ShardTotals t;
  if (!parallel_ || partition < 0 || partition >= partition_count()) return t;
  const Shard& s = *shards_[partition];
  t.dispatches = s.dispatches;
  t.stalled_rounds = s.stalled_rounds;
  t.work_ns = s.work_ns_total;
  t.barrier_wait_ns = s.wait_ns_total;
  t.drain_ns = s.drain_ns_total;
  t.idle_ns = s.idle_ns_total;
  t.skipped_wakes = s.skipped_wakes;
  t.eager_drained = s.eager_total;
  return t;
}

void Kernel::merge_shard_journals() {
  for (auto& sh : shards_) journal_base_->merge_from(*sh->journal);
}

bool Kernel::flush_deferred() {
  bool progress = false;
  // Partition order: waking a blocked consumer may let a boundary drain
  // (eager or full) deliver straight into its link.
  for (auto& sh : shards_) {
    for (Event* e : sh->deferred_notifies) {
      e->deferred_pending_.store(false, std::memory_order_relaxed);
      if (!e->waiters_.empty()) progress = true;
      notify_deliver(*e);
    }
    sh->deferred_notifies.clear();
  }
  return progress;
}

bool Kernel::flush_barrier() {
  bool progress = flush_deferred();
  // Full boundary drains (registration order == link creation order).
  for (auto& task : barrier_tasks_)
    if (task()) progress = true;
  return progress;
}

RunResult Kernel::run_parallel(SimTime until) {
  DFDBG_CHECK_MSG(t_worker.kernel == nullptr && current() == nullptr,
                  "Kernel::run called from process context");
  ensure_workers_started();
  // Refreshed here, not only at construction: observers typically flip
  // obs::enabled() after the kernel exists, and a gated set would be lost.
  if (obs::enabled())
    obs::Registry::global().gauge("sim.worker.count").set(partition_count());
  stop_flag_.store(false, std::memory_order_relaxed);
  for (auto& sh : shards_) sh->stop_round = false;
  last_barrier_end_ns_ = 0;  // time stopped in the debugger is not idle
  // Re-publish the boundary snapshots: the debugger may have drained or
  // altered links while stopped, and a fresh run's first eligibility mask
  // must see current channel state.
  if (boundary_hooks_.publish) boundary_hooks_.publish();
  std::vector<std::uint8_t> boundary_pending(shards_.size(), 0);
  while (true) {
    // Pick the round's participants: shards with local ready work, plus
    // shards whose inbound boundary channels can deliver a published token
    // (their eager drain is then guaranteed at least one delivery, so a
    // woken shard always produces effects — no wake can spin forever).
    // Recomputed from live link/channel state every iteration; everything
    // else stays parked and counts a skipped wake.
    if (boundary_hooks_.pending) {
      std::fill(boundary_pending.begin(), boundary_pending.end(), 0);
      boundary_hooks_.pending(boundary_pending);
    }
    bool any_ready = false;
    for (auto& sh : shards_) {
      sh->participant =
          !sh->ready.empty() || boundary_pending[static_cast<std::size_t>(sh->index)] != 0;
      any_ready |= sh->participant;
    }
    if (any_ready) {
      for (auto& sh : shards_)
        if (!sh->participant) sh->skipped_wakes++;
      // Shard time attribution: t0..t1 is the workers' span (work +
      // barrier-wait), t1..t2 the coordinator's barrier (drain bucket), and
      // the gap since the previous barrier end is idle. All clock reads are
      // gated on obs::enabled(); disabled runs take none.
      const bool prof = obs::enabled();
      const std::uint64_t t0 = prof ? mono_ns() : 0;
      if (prof && last_barrier_end_ns_ != 0 && t0 > last_barrier_end_ns_) {
        const std::uint64_t idle = t0 - last_barrier_end_ns_;
        for (auto& sh : shards_) {
          sh->idle_ns_total += idle;
          sh->m_idle_ns->add(idle);
        }
      }
      run_round();
      const std::uint64_t t1 = prof ? mono_ns() : 0;
      // The probe samples every round — elided ones included — so the
      // boundary high-water mark cannot under-report across skipped
      // barriers.
      const std::uint64_t hwm = prof && boundary_probe_ ? boundary_probe_() : 0;
      const bool stop = stop_flag_.load(std::memory_order_acquire);
      // Barrier elision: did the round produce cross-partition effects?
      // Unpublished boundary movement, deferred notifies, or a debug stop.
      // Effect-free rounds skip the merge/flush/publish entirely; journal
      // records from purely-local rounds stay in their shard rings (bounded,
      // like every journal window) until the next real barrier or run exit
      // merges them in partition order. Every condition is a deterministic
      // function of the schedule, so the elision pattern — and with it the
      // merge schedule — is too.
      bool effects = stop;
      if (!effects && boundary_hooks_.activity) effects = boundary_hooks_.activity();
      if (!effects)
        for (auto& sh : shards_)
          if (!sh->deferred_notifies.empty()) {
            effects = true;
            break;
          }
      // Shard-journal pressure also forces a merge: records parked across
      // elided rounds must never be evicted from a shard ring that the
      // per-round merge would have kept (base drop accounting — see
      // Journal::merge_from — only balances when shards themselves never
      // drop). Half-full leaves a full round of headroom; at the default
      // 128Ki capacity this fires far too late to matter for elision.
      if (!effects)
        for (auto& sh : shards_)
          if (sh->journal->size() * 2 >= sh->journal->capacity()) {
            effects = true;
            break;
          }
      bool elided = false;
      if (effects) {
        merge_shard_journals();
        if (stop) {
          // Stop rounds take the full barrier — deferred notifies plus the
          // registered full drains — so the debugger never sees a token
          // parked invisibly behind a stale channel snapshot.
          flush_barrier();
        } else {
          flush_deferred();
          if (boundary_hooks_.publish) boundary_hooks_.publish();
        }
      } else {
        elided = true;
        elided_rounds_++;
      }
      if (prof) {
        const std::uint64_t t2 = mono_ns();
        record_round(t0, t1, t2, hwm, elided);
        last_barrier_end_ns_ = t2;
      } else {
        last_barrier_end_ns_ = 0;
      }
      if (stop) {
        stop_flag_.store(false, std::memory_order_relaxed);
        return RunResult::kStopped;
      }
      continue;
    }
    // No shard can progress; a full barrier flush may still create work
    // (e.g. boundary tokens parked behind a link that just gained space).
    if (flush_barrier()) continue;
    // Global quiescence at this virtual time: advance together.
    SimTime t = kMaxSimTime;
    bool has_timed = false;
    for (auto& sh : shards_)
      if (!sh->timed.empty()) {
        has_timed = true;
        if (sh->timed.top().when < t) t = sh->timed.top().when;
      }
    if (!has_timed) {
      merge_shard_journals();
      return live_count_.load(std::memory_order_relaxed) == 0 ? RunResult::kFinished
                                                              : RunResult::kDeadlock;
    }
    if (t > until) {
      now_ = until;
      merge_shard_journals();
      return RunResult::kTimeLimit;
    }
    now_ = t;
    for (auto& sh : shards_) {
      while (!sh->timed.empty() && sh->timed.top().when == now_) {
        Process* p = sh->timed.top().process;
        sh->timed.pop();
        make_ready(p);
        if (obs::enabled()) SchedMetrics::get().timed_wakeups.add();
      }
    }
  }
}

}  // namespace dfdbg::sim

// The deterministic cooperative simulation kernel.
//
// Model: discrete-event simulation with cooperative processes. Exactly one
// process executes at any instant; processes yield by waiting on events or
// advancing simulated time. The ready queue is FIFO and all wakeups are
// ordered, so a given program produces the same interleaving on every run.
// This reproduces the property of the P2012 functional simulator that the
// paper's debugger exploits: "the model and the implementation ensure that
// the data order is preserved, [so] we can stop the execution at the right
// location in a deterministic way".
//
// Debugger integration: any code running inside a process (e.g. an
// instrumentation hook) may call Kernel::debug_break(); the simulation is
// then suspended with the process frozen mid-call and Kernel::run() returns
// kStopped. A later run() resumes exactly where execution stopped, which is
// what gives the CLI its `continue` semantics.
//
// Execution backends: processes run either on stackful user-level fibers
// (default — dispatch is a ~100 ns swapcontext, mirroring the SystemC
// QuickThreads model the paper's simulator uses) or on parked OS threads
// (legacy — sanitizer/valgrind friendly). Schedules are bit-identical across
// backends; see context.hpp and docs/KERNEL.md.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <queue>
#include <semaphore>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "dfdbg/common/strings.hpp"
#include "dfdbg/sim/context.hpp"
#include "dfdbg/sim/event.hpp"
#include "dfdbg/sim/instrument.hpp"
#include "dfdbg/sim/process.hpp"
#include "dfdbg/sim/time.hpp"

namespace dfdbg::sim {

/// Order in which ready processes are dispatched. Dataflow applications on
/// blocking FIFO links are Kahn process networks: their *results* must be
/// identical under any policy — only timing and interleaving may change.
/// The LIFO policy exists to demonstrate (and test) exactly that.
enum class ReadyPolicy {
  kFifo,  ///< default: first-ready, first-dispatched (fully deterministic)
  kLifo,  ///< stack order: adversarial interleaving, same dataflow results
};

/// Why Kernel::run() returned.
enum class RunResult {
  kFinished,  ///< All processes terminated.
  kStopped,   ///< debug_break() was requested; simulation is resumable.
  kDeadlock,  ///< Live processes exist but all are blocked on events.
  kTimeLimit, ///< The `until` bound was reached; simulation is resumable.
};

/// Returns a short human-readable name for `r`.
const char* to_string(RunResult r);

/// The simulation kernel. Owns all processes and the instrumentation port.
/// Not thread-safe: the embedding application drives it from one thread.
class Kernel {
 public:
  /// `backend` selects how processes execute (fibers by default; see
  /// context.hpp). Fixed for the kernel's lifetime.
  explicit Kernel(ProcessBackend backend = default_process_backend());
  ~Kernel();

  /// The process execution backend this kernel was built with.
  [[nodiscard]] ProcessBackend backend() const { return backend_; }

  Kernel(const Kernel&) = delete;
  Kernel& operator=(const Kernel&) = delete;

  /// Creates a process executing `body`. May be called before run() or from
  /// inside a running process. The process becomes ready immediately.
  ProcessId spawn(std::string name, std::function<void()> body);

  /// Runs the simulation until it finishes, deadlocks, breaks, or simulated
  /// time would exceed `until`. Resumable after kStopped / kTimeLimit.
  RunResult run(SimTime until = kMaxSimTime);

  /// Current simulated time in cycles.
  [[nodiscard]] SimTime now() const { return now_; }

  /// The process currently executing, or nullptr outside process context.
  [[nodiscard]] Process* current() const { return current_; }

  /// Looks up a process by id (nullptr if unknown).
  [[nodiscard]] Process* process(ProcessId id) const;
  /// Looks up a process by name (nullptr if unknown; first spawn with that
  /// name wins). O(1): served from an index maintained at spawn.
  [[nodiscard]] Process* process_by_name(std::string_view name) const;
  /// All processes ever spawned (stable order).
  [[nodiscard]] const std::vector<std::unique_ptr<Process>>& processes() const {
    return processes_;
  }

  // --- Primitives callable from process context only -----------------------

  /// Blocks the calling process until `e` is notified.
  void wait(Event& e);

  /// Blocks the calling process for `dt` simulated cycles.
  void advance(SimTime dt);

  /// Suspends the whole simulation; run() returns kStopped. When run() is
  /// called again the calling process resumes here first (it is placed at
  /// the front of the ready queue), preserving determinism.
  void debug_break();

  // --- Primitives callable from any context --------------------------------

  /// Wakes every process waiting on `e` (they run after the current process
  /// yields, in wait order). Safe to call while the simulation is stopped,
  /// which is how the debugger "unties" deadlocks after altering state.
  void notify(Event& e);

  /// notify(e) only when someone is actually blocked on `e`; otherwise a
  /// no-op that counts the elision (Event::coalesced_count). Scheduling is
  /// identical to an unconditional notify — waking zero waiters changes
  /// nothing — but the hot path skips the call overhead and the token-path
  /// shims use it to signal only empty→non-empty / full→non-full edges.
  /// Returns true when a notify was issued.
  bool notify_if_waiting(Event& e) {
    if (e.waiters_.empty()) {
      e.coalesced_count_++;
      return false;
    }
    notify(e);
    return true;
  }

  /// Number of scheduler dispatches so far (for tests and benchmarks).
  [[nodiscard]] std::uint64_t dispatch_count() const { return dispatches_; }

  /// Count of live (non-terminated) processes. O(1): maintained at
  /// spawn/terminate rather than scanned.
  [[nodiscard]] std::size_t live_process_count() const { return live_count_; }

  /// The instrumentation port the debugger attaches to (see instrument.hpp).
  [[nodiscard]] InstrumentPort& instrument() { return instrument_; }
  [[nodiscard]] const InstrumentPort& instrument() const { return instrument_; }

  /// Ready-queue dispatch order (see ReadyPolicy). Still deterministic for
  /// a fixed policy; set before run() for reproducible experiments.
  void set_ready_policy(ReadyPolicy policy) { policy_ = policy; }
  [[nodiscard]] ReadyPolicy ready_policy() const { return policy_; }

 private:
  friend class Process;

  struct TimedEntry {
    SimTime when;
    std::uint64_t seq;  // FIFO tie-break
    Process* process;
    bool operator>(const TimedEntry& o) const {
      if (when != o.when) return when > o.when;
      return seq > o.seq;
    }
  };

  /// Hands the CPU to `p` and blocks until it yields back.
  void dispatch(Process* p);
  /// Enqueues a newly-ready process according to the active policy.
  void make_ready(Process* p);
  /// Records the (single) transition to kTerminated: state + live count.
  void mark_terminated(Process* p);

  ProcessBackend backend_;
  SimTime now_ = 0;
  std::vector<std::unique_ptr<Process>> processes_;
  std::unordered_map<std::string, ProcessId, TransparentStringHash, std::equal_to<>>
      name_index_;  ///< first spawn with a name wins (process_by_name contract)
  std::size_t live_count_ = 0;
  std::deque<Process*> ready_;
  std::priority_queue<TimedEntry, std::vector<TimedEntry>, std::greater<>> timed_;
  Process* current_ = nullptr;
  bool stop_requested_ = false;
  bool shutting_down_ = false;
  std::uint64_t dispatches_ = 0;
  std::uint64_t wait_seq_counter_ = 0;
  ReadyPolicy policy_ = ReadyPolicy::kFifo;
  std::binary_semaphore kernel_sem_{0};  ///< thread backend only
  FiberContext sched_ctx_;               ///< fiber backend: the scheduler's context
  InstrumentPort instrument_;
};

}  // namespace dfdbg::sim

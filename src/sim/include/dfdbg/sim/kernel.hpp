// The deterministic cooperative simulation kernel.
//
// Model: discrete-event simulation with cooperative processes. Exactly one
// process executes at any instant; processes yield by waiting on events or
// advancing simulated time. The ready queue is FIFO and all wakeups are
// ordered, so a given program produces the same interleaving on every run.
// This reproduces the property of the P2012 functional simulator that the
// paper's debugger exploits: "the model and the implementation ensure that
// the data order is preserved, [so] we can stop the execution at the right
// location in a deterministic way".
//
// Debugger integration: any code running inside a process (e.g. an
// instrumentation hook) may call Kernel::debug_break(); the simulation is
// then suspended with the process frozen mid-call and Kernel::run() returns
// kStopped. A later run() resumes exactly where execution stopped, which is
// what gives the CLI its `continue` semantics.
//
// Execution backends: processes run either on stackful user-level fibers
// (default — dispatch is a ~100 ns swapcontext, mirroring the SystemC
// QuickThreads model the paper's simulator uses), on parked OS threads
// (legacy — sanitizer/valgrind friendly), or on the *parallel* backend: the
// process set is partitioned into per-cluster sub-kernels, each drained to
// quiescence by its own worker thread between conservative barriers, with
// virtual time advancing globally. Schedules are bit-identical across the
// sequential backends and across parallel runs under a fixed partition map;
// see context.hpp and docs/KERNEL.md.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <queue>
#include <semaphore>
#include <string>
#include <string_view>
#include <thread>
#include <unordered_map>
#include <vector>

#include "dfdbg/common/strings.hpp"
#include "dfdbg/sim/context.hpp"
#include "dfdbg/sim/event.hpp"
#include "dfdbg/sim/instrument.hpp"
#include "dfdbg/sim/process.hpp"
#include "dfdbg/sim/time.hpp"

namespace dfdbg::obs {
class Counter;
class Histogram;
class Journal;
}  // namespace dfdbg::obs

namespace dfdbg::sim {

/// Order in which ready processes are dispatched. Dataflow applications on
/// blocking FIFO links are Kahn process networks: their *results* must be
/// identical under any policy — only timing and interleaving may change.
/// The LIFO policy exists to demonstrate (and test) exactly that.
enum class ReadyPolicy {
  kFifo,  ///< default: first-ready, first-dispatched (fully deterministic)
  kLifo,  ///< stack order: adversarial interleaving, same dataflow results
};

/// Why Kernel::run() returned.
enum class RunResult {
  kFinished,  ///< All processes terminated.
  kStopped,   ///< debug_break() was requested; simulation is resumable.
  kDeadlock,  ///< Live processes exist but all are blocked on events.
  kTimeLimit, ///< The `until` bound was reached; simulation is resumable.
};

/// Returns a short human-readable name for `r`.
const char* to_string(RunResult r);

/// One completed barrier round of the parallel backend, as captured by the
/// shard time-attribution profiler. Recorded only while `obs::enabled()` is
/// on (the disabled path takes no clock reads and allocates nothing), into a
/// bounded ring the debugger reads between runs — wall times are measurement,
/// not schedule input, so recording never perturbs determinism.
struct BarrierRoundRecord {
  std::uint64_t round = 0;        ///< 1-based round id (monotonic; stream cursor)
  SimTime vtime = 0;              ///< global virtual time during the round
  std::uint64_t wall_ns = 0;      ///< workers woken -> barrier flushed
  std::uint64_t drain_ns = 0;     ///< coordinator portion: journal merge + notifies + boundary drains
  std::uint64_t boundary_hwm = 0; ///< max boundary-channel occupancy sampled at the barrier
  bool elided = false;            ///< no cross-partition effects: coordinator skipped the barrier
  struct PartitionDelta {
    std::uint64_t dispatches = 0; ///< dispatches this shard executed this round
    std::uint64_t work_ns = 0;    ///< worker-measured time draining its ready queue
    std::uint64_t wait_ns = 0;    ///< barrier-wait: blocked on slower shards
    std::uint64_t eager = 0;      ///< boundary tokens this shard eager-drained this round
    bool stalled = false;         ///< woken with nothing to run (load-imbalance signal)
    bool skipped = false;         ///< not woken: no local work could progress this round
  };
  std::vector<PartitionDelta> partitions;  ///< one entry per partition, in order
};

/// The simulation kernel. Owns all processes and the instrumentation port.
/// The embedding application drives it from one thread; under the parallel
/// backend the kernel additionally owns its worker threads, and the public
/// primitives are safe to call from simulated-process context on any worker.
class Kernel {
 public:
  /// `backend` selects how processes execute (fibers by default; see
  /// context.hpp). Fixed for the kernel's lifetime. `workers` is the
  /// partition/worker-thread count of the parallel backend (0 = the
  /// default_parallel_workers() resolution; ignored by other backends).
  explicit Kernel(ProcessBackend backend = default_process_backend(), int workers = 0);
  ~Kernel();

  /// The process execution backend this kernel was built with.
  [[nodiscard]] ProcessBackend backend() const { return backend_; }

  /// True when this kernel runs the parallel (partitioned) backend.
  [[nodiscard]] bool parallel() const { return parallel_; }

  /// Number of partitions (== worker threads) under the parallel backend;
  /// 1 otherwise.
  [[nodiscard]] int partition_count() const {
    return parallel_ ? static_cast<int>(shards_.size()) : 1;
  }

  Kernel(const Kernel&) = delete;
  Kernel& operator=(const Kernel&) = delete;

  /// Creates a process executing `body`. May be called before run() or from
  /// inside a running process. The process becomes ready immediately. Under
  /// the parallel backend the process joins the spawner's partition
  /// (partition 0 when spawned from the coordinator).
  ProcessId spawn(std::string name, std::function<void()> body);

  /// spawn() into an explicit partition (parallel backend; other backends
  /// require partition 0). Partitioning is fixed at spawn.
  ProcessId spawn_in(int partition, std::string name, std::function<void()> body);

  /// Runs the simulation until it finishes, deadlocks, breaks, or simulated
  /// time would exceed `until`. Resumable after kStopped / kTimeLimit.
  RunResult run(SimTime until = kMaxSimTime);

  /// Current simulated time in cycles.
  [[nodiscard]] SimTime now() const { return now_; }

  /// The process currently executing, or nullptr outside process context.
  /// Parallel backend: the calling worker's current process (nullptr on the
  /// coordinator thread, e.g. inside the debugger while stopped).
  [[nodiscard]] Process* current() const {
    if (!parallel_) return current_;
    return current_parallel();
  }

  /// Parallel backend: the partition whose worker thread is executing the
  /// caller, or -1 on the coordinator/main thread (and always -1 on the
  /// sequential backends).
  [[nodiscard]] int current_partition() const;

  /// Looks up a process by id (nullptr if unknown).
  [[nodiscard]] Process* process(ProcessId id) const;
  /// Looks up a process by name (nullptr if unknown; first spawn with that
  /// name wins). O(1): served from an index maintained at spawn.
  [[nodiscard]] Process* process_by_name(std::string_view name) const;
  /// All processes ever spawned (stable order).
  [[nodiscard]] const std::vector<std::unique_ptr<Process>>& processes() const {
    return processes_;
  }

  // --- Primitives callable from process context only -----------------------

  /// Blocks the calling process until `e` is notified.
  void wait(Event& e);

  /// Blocks the calling process for `dt` simulated cycles.
  void advance(SimTime dt);

  /// Suspends the whole simulation; run() returns kStopped. When run() is
  /// called again the calling process resumes here first (it is placed at
  /// the front of the ready queue), preserving determinism.
  void debug_break();

  // --- Primitives callable from any context --------------------------------

  /// Wakes every process waiting on `e` (they run after the current process
  /// yields, in wait order). Safe to call while the simulation is stopped,
  /// which is how the debugger "unties" deadlocks after altering state.
  void notify(Event& e);

  /// notify(e) only when someone is actually blocked on `e`; otherwise a
  /// no-op that counts the elision (Event::coalesced_count). Scheduling is
  /// identical to an unconditional notify — waking zero waiters changes
  /// nothing — but the hot path skips the call overhead and the token-path
  /// shims use it to signal only empty→non-empty / full→non-full edges.
  /// Returns true when a notify was issued (parallel: or deferred).
  bool notify_if_waiting(Event& e) {
    if (parallel_) return notify_if_waiting_parallel(e);
    if (e.waiters_.empty()) {
      e.coalesced_count_++;
      return false;
    }
    notify(e);
    return true;
  }

  /// Parallel backend: registers a function the coordinator invokes at a
  /// *full* barrier — the global-quiescence fallback (no shard can progress
  /// at the current virtual time) and the barrier of a debug-stop round —
  /// after deferred notifies flush, before virtual time advances. Returns
  /// true when it made progress (delivered tokens, woke a process), which
  /// triggers another delta round at the same virtual time. The pedf runtime
  /// registers its full boundary-ring drain here; ordinary rounds move
  /// boundary tokens through the relaxed-synchrony path (BoundaryHooks)
  /// instead. Tasks run in registration order; register before the first
  /// run().
  void add_barrier_task(std::function<bool()> task);

  /// Parallel backend: the boundary-transport integration points of the
  /// relaxed-synchrony round protocol (see pedf/boundary.hpp). All optional;
  /// the pedf runtime installs them when partition-crossing links exist.
  struct BoundaryHooks {
    /// Worker context, during a round: the given partition drains its
    /// inbound channels' *published* tokens, in link order, waking local
    /// waiters. Returns tokens delivered.
    std::function<std::size_t(int partition)> eager_drain;
    /// Coordinator: does any channel hold movement the last publish has not
    /// seen (unpublished sends, or consumed slots not yet reclaimed)?
    std::function<bool()> activity;
    /// Coordinator: snapshot send indices for the next round's eager drains,
    /// reclaim consumed slots, wake producers blocked on space. Returns true
    /// when a blocked producer was woken.
    std::function<bool()> publish;
    /// Coordinator: set mask[p] nonzero for partitions whose inbound
    /// channels can deliver at least one token right now (published backlog
    /// and link room) — those shards join the round even with empty ready
    /// queues.
    std::function<void(std::vector<std::uint8_t>&)> pending;
  };
  void set_boundary_hooks(BoundaryHooks hooks) { boundary_hooks_ = std::move(hooks); }

  /// Parallel backend: barrier rounds completed so far (0 otherwise).
  [[nodiscard]] std::uint64_t round_count() const { return rounds_; }

  /// Parallel backend: rounds whose coordinator barrier was skipped entirely
  /// (no cross-partition effects: no boundary traffic, no deferred notifies,
  /// no debug stop). Counted regardless of obs state.
  [[nodiscard]] std::uint64_t elided_round_count() const { return elided_rounds_; }

  // --- Shard time attribution (parallel backend; docs/OBSERVABILITY.md) ----

  /// Cumulative wall-time buckets of one partition, as attributed by the
  /// profiler: work (draining the shard's ready queue), barrier-wait
  /// (blocked on slower shards), drain (coordinator barrier work: journal
  /// merge, deferred notifies, boundary rings) and idle (between rounds:
  /// virtual-time advance / quiescence checks). Zero unless obs was enabled
  /// while running.
  struct ShardTotals {
    std::uint64_t dispatches = 0;
    std::uint64_t stalled_rounds = 0;  ///< rounds woken with an empty ready queue
    std::uint64_t work_ns = 0;
    std::uint64_t barrier_wait_ns = 0;
    std::uint64_t drain_ns = 0;
    std::uint64_t idle_ns = 0;
    /// Rounds this shard stayed parked through (sparse wakes). Counted
    /// regardless of obs state, like dispatches.
    std::uint64_t skipped_wakes = 0;
    /// Boundary tokens this shard eager-drained from its inbound channels.
    std::uint64_t eager_drained = 0;
  };
  [[nodiscard]] ShardTotals shard_totals(int partition) const;

  /// The retained per-round attribution records, oldest first. Bounded ring
  /// (set_round_record_capacity); populated only while obs::enabled().
  [[nodiscard]] const std::deque<BarrierRoundRecord>& round_records() const {
    return round_records_;
  }

  /// Copies retained records with round id > `after` (the shard_rounds
  /// stream cursor), oldest first, at most `max_n` of them.
  [[nodiscard]] std::vector<BarrierRoundRecord> round_records_after(
      std::uint64_t after, std::size_t max_n) const;

  /// Resizes the round-record ring (default 512); evicts oldest.
  void set_round_record_capacity(std::size_t n);

  /// Registers a probe the coordinator samples at each barrier, *before*
  /// boundary rings drain, returning the current aggregate boundary-channel
  /// occupancy. The pedf runtime installs one reporting the max pending
  /// count across its BoundaryChannels; recorded as the round's
  /// boundary_hwm. Only called while obs::enabled().
  void set_boundary_probe(std::function<std::uint64_t()> probe) {
    boundary_probe_ = std::move(probe);
  }

  /// Bracketing for instrumentation-hook dispatch (see InstrumentPort): under
  /// the parallel backend hooks run holding the port's dispatch mutex, so a
  /// debug_break() issued inside a hook is deferred and taken here, at
  /// hook_dispatch_exit(), once the mutex is released. No-ops otherwise.
  void hook_dispatch_enter();
  void hook_dispatch_exit();

  /// Number of scheduler dispatches so far (for tests and benchmarks).
  /// Parallel backend: aggregated over all partitions.
  [[nodiscard]] std::uint64_t dispatch_count() const;

  /// Count of live (non-terminated) processes. O(1): maintained at
  /// spawn/terminate rather than scanned.
  [[nodiscard]] std::size_t live_process_count() const {
    return live_count_.load(std::memory_order_relaxed);
  }

  /// The instrumentation port the debugger attaches to (see instrument.hpp).
  [[nodiscard]] InstrumentPort& instrument() { return instrument_; }
  [[nodiscard]] const InstrumentPort& instrument() const { return instrument_; }

  /// Ready-queue dispatch order (see ReadyPolicy). Still deterministic for
  /// a fixed policy; set before run() for reproducible experiments.
  void set_ready_policy(ReadyPolicy policy) { policy_ = policy; }
  [[nodiscard]] ReadyPolicy ready_policy() const { return policy_; }

 private:
  friend class Process;

  struct TimedEntry {
    SimTime when;
    std::uint64_t seq;  // FIFO tie-break
    Process* process;
    bool operator>(const TimedEntry& o) const {
      if (when != o.when) return when > o.when;
      return seq > o.seq;
    }
  };

  /// One partition of the parallel backend: a sub-kernel with its own ready
  /// queue, timed queue, scheduler anchor and journal shard, drained to
  /// quiescence by one worker thread between barriers. Mutated only by its
  /// worker during a round and only by the coordinator between rounds (the
  /// round handshake's mutex orders the two).
  struct Shard {
    int index = 0;
    std::deque<Process*> ready;
    std::priority_queue<TimedEntry, std::vector<TimedEntry>, std::greater<>> timed;
    std::uint64_t wait_seq = 0;
    Process* current = nullptr;
    std::uint64_t dispatches = 0;
    bool stop_round = false;  ///< debug_break: end this round after the park
    std::vector<Event*> deferred_notifies;  ///< cross-partition, flushed at barrier
    FiberContext sched_ctx;                 ///< this worker's scheduler anchor
    std::binary_semaphore sem{0};           ///< thread-process substrate handoff
    std::unique_ptr<obs::Journal> journal;  ///< per-worker flight-recorder shard
    obs::Counter* m_dispatches = nullptr;   ///< sim.worker.<i>.dispatch
    std::thread thread;

    // Sparse wakes: the coordinator wakes only shards that can progress this
    // round; the rest stay parked on their own condition variable. `wake`
    // and `participant` are coordinator-written under round_mu_ (the worker
    // clears `wake` when it takes a round); `skipped_wakes` is
    // coordinator-only; `round_eager`/`eager_total` are worker-written,
    // coordinator-read across the round handshake.
    std::condition_variable cv;   ///< this worker's round-wake channel
    bool wake = false;            ///< a round is pending for this shard
    bool participant = false;     ///< coordinator scratch: woken this round
    std::uint64_t round_eager = 0;   ///< boundary tokens eager-drained, this round
    std::uint64_t eager_total = 0;   ///< cumulative eager-drained tokens
    std::uint64_t skipped_wakes = 0; ///< rounds this shard stayed parked through
    obs::Counter* m_skipped = nullptr; ///< sim.worker.<i>.skipped_wakes
    obs::Counter* m_eager = nullptr;   ///< sim.worker.<i>.eager_drained

    // Shard time attribution. The worker writes the two round-scratch fields
    // before re-parking (ordered before the coordinator's read by round_mu_);
    // everything else is coordinator-only. Clock reads are obs-gated; the
    // scratch writes are two unconditional u64 stores per round.
    std::uint64_t round_work_ns = 0;    ///< worker-measured drain time, this round
    std::uint64_t round_dispatches = 0; ///< dispatch delta, this round
    std::uint64_t work_ns_total = 0;
    std::uint64_t wait_ns_total = 0;
    std::uint64_t drain_ns_total = 0;
    std::uint64_t idle_ns_total = 0;
    std::uint64_t stalled_rounds = 0;
    obs::Counter* m_work_ns = nullptr;     ///< sim.worker.<i>.work_ns
    obs::Counter* m_wait_ns = nullptr;     ///< sim.worker.<i>.barrier_wait_ns
    obs::Counter* m_drain_ns = nullptr;    ///< sim.worker.<i>.drain_ns
    obs::Counter* m_idle_ns = nullptr;     ///< sim.worker.<i>.idle_ns
    obs::Counter* m_stalls = nullptr;      ///< sim.worker.<i>.stalled_rounds
    obs::Histogram* h_round_work = nullptr;///< sim.worker.<i>.round_work_ns
  };

  /// True when simulated processes run on fibers (kFibers, and kParallel
  /// unless DFDBG_PARALLEL_SUBSTRATE=threads).
  [[nodiscard]] bool uses_fiber_processes() const;

  /// Hands the CPU to `p` and blocks until it yields back.
  void dispatch(Process* p);
  /// Enqueues a newly-ready process according to the active policy (parallel:
  /// into the process's own partition).
  void make_ready(Process* p);
  /// Records the (single) transition to kTerminated: state + live count.
  void mark_terminated(Process* p);

  // --- parallel backend internals (kernel.cpp) ------------------------------
  [[nodiscard]] Process* current_parallel() const;
  RunResult run_parallel(SimTime until);
  void ensure_workers_started();
  void worker_main(int shard);
  void run_round();
  void drain_shard(Shard& s);
  void dispatch_shard(Shard& s, Process* p);
  void wait_parallel(Event& e);
  void advance_parallel(SimTime dt);
  void debug_break_parallel();
  void notify_parallel(Event& e);
  bool notify_if_waiting_parallel(Event& e);
  /// Wakes `e`'s waiters into their partitions' ready queues (coordinator
  /// or owning-shard context only).
  void notify_deliver(Event& e);
  /// Coordinator: flushes deferred notifies in partition order; true when a
  /// waiter was woken.
  bool flush_deferred();
  /// Coordinator, full barrier: flush_deferred() then the registered barrier
  /// tasks (pedf's full boundary drain); true when any progress was made.
  bool flush_barrier();
  void merge_shard_journals();
  void stop_workers();
  /// Attribution bookkeeping for one completed round: t0 = workers woken,
  /// t1 = workers quiescent, t2 = barrier flushed (all mono_ns).
  void record_round(std::uint64_t t0, std::uint64_t t1, std::uint64_t t2,
                    std::uint64_t boundary_hwm, bool elided);

  ProcessBackend backend_;
  bool parallel_ = false;
  bool parallel_thread_processes_ = false;  ///< see parallel_uses_thread_processes()
  SimTime now_ = 0;
  std::vector<std::unique_ptr<Process>> processes_;
  std::unordered_map<std::string, ProcessId, TransparentStringHash, std::equal_to<>>
      name_index_;  ///< first spawn with a name wins (process_by_name contract)
  std::atomic<std::size_t> live_count_{0};
  std::deque<Process*> ready_;
  std::priority_queue<TimedEntry, std::vector<TimedEntry>, std::greater<>> timed_;
  Process* current_ = nullptr;
  bool stop_requested_ = false;
  bool shutting_down_ = false;
  std::uint64_t dispatches_ = 0;
  std::uint64_t wait_seq_counter_ = 0;
  ReadyPolicy policy_ = ReadyPolicy::kFifo;
  std::binary_semaphore kernel_sem_{0};  ///< thread backend only
  FiberContext sched_ctx_;               ///< fiber backend: the scheduler's context
  InstrumentPort instrument_;

  // Parallel backend state.
  obs::Journal* journal_base_ = nullptr;  ///< journal shards delegate/merge here
  std::vector<std::unique_ptr<Shard>> shards_;
  std::vector<std::function<bool()>> barrier_tasks_;
  BoundaryHooks boundary_hooks_;
  std::uint64_t rounds_ = 0;
  std::uint64_t elided_rounds_ = 0;
  std::atomic<bool> stop_flag_{false};  ///< some shard requested a debug stop
  std::mutex spawn_mu_;                 ///< serializes mid-run spawns from workers
  // Round handshake: coordinator bumps round_gen_, sets the participating
  // shards' wake flags (each worker parks on its own Shard::cv — sparse
  // wakes), and waits for workers_running_ to fall back to zero; the mutex
  // carries the happens-before edges between coordinator and workers each
  // round, for participants and skipped shards alike.
  std::mutex round_mu_;
  std::condition_variable done_cv_;
  int workers_running_ = 0;
  bool workers_exit_ = false;
  bool workers_started_ = false;

  // Shard time attribution (coordinator-only).
  std::deque<BarrierRoundRecord> round_records_;
  std::size_t round_record_capacity_ = 512;
  std::function<std::uint64_t()> boundary_probe_;
  std::uint64_t last_barrier_end_ns_ = 0;  ///< idle attribution anchor
};

}  // namespace dfdbg::sim

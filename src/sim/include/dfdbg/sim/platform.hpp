// Functional model of the P2012-like MPSoC platform (paper Fig. 1):
// a general-purpose multicore host, a fabric of clusters of configurable
// PEs sharing an L1 memory, an inter-cluster L2, a host-fabric L3 reached
// through DMA engines, and optional hardware-accelerator slots wired into
// the fabric.
//
// The model is functional-with-latencies: memory accesses, DMA transfers and
// PE execution advance simulated time; PEs are exclusive resources (two
// actors mapped to the same PE serialize).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "dfdbg/sim/event.hpp"
#include "dfdbg/sim/kernel.hpp"
#include "dfdbg/sim/time.hpp"

namespace dfdbg::sim {

/// Dimensions and latencies of the simulated platform.
struct PlatformConfig {
  int host_cores = 2;          ///< general-purpose host cores (ARM side)
  int clusters = 4;            ///< fabric clusters
  int pes_per_cluster = 16;    ///< STxP70-like PEs per cluster
  int accel_slots_per_cluster = 2;  ///< HW accelerator slots per cluster
  std::uint64_t l1_bytes = 256 * 1024;
  std::uint64_t l2_bytes = 1 * 1024 * 1024;
  std::uint64_t l3_bytes = 64 * 1024 * 1024;
  SimTime l1_latency = 1;      ///< cycles per access
  SimTime l2_latency = 8;
  SimTime l3_latency = 32;
  int dma_engines = 2;
  SimTime dma_setup_cycles = 16;
  std::uint64_t dma_bytes_per_cycle = 8;
};

/// A latency-modelled memory. Accesses advance simulated time when performed
/// from process context and are counted for the platform statistics.
class MemoryModel {
 public:
  MemoryModel(std::string name, std::uint64_t bytes, SimTime latency)
      : name_(std::move(name)), bytes_(bytes), latency_(latency) {}

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] std::uint64_t size_bytes() const { return bytes_; }
  [[nodiscard]] SimTime latency() const { return latency_; }

  /// Performs one access of `bytes` bytes: advances time by the latency plus
  /// a per-word cost. Must be called from process context.
  void access(Kernel& kernel, std::uint64_t bytes);

  [[nodiscard]] std::uint64_t access_count() const {
    return accesses_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t bytes_transferred() const {
    return bytes_moved_.load(std::memory_order_relaxed);
  }

 private:
  std::string name_;
  std::uint64_t bytes_;
  SimTime latency_;
  // Shared memories (L1, L2, L3) are touched by every partition's workers
  // under the parallel backend; relaxed atomics keep the tallies exact.
  std::atomic<std::uint64_t> accesses_{0};
  std::atomic<std::uint64_t> bytes_moved_{0};
};

/// Where a processing element lives.
enum class PeKind { kHost, kFabric, kAccelerator };

/// An exclusive processing element. Actors mapped to the same PE serialize
/// through acquire/execute/release.
class Pe {
 public:
  Pe(std::string name, PeKind kind, int cluster_index)
      : name_(std::move(name)), kind_(kind), cluster_(cluster_index),
        free_event_("pe-free:" + name_) {}

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] PeKind kind() const { return kind_; }
  /// Cluster index, or -1 for host PEs.
  [[nodiscard]] int cluster_index() const { return cluster_; }
  [[nodiscard]] bool busy() const { return busy_; }

  /// Runs `cycles` of computation on this PE, waiting for exclusivity first.
  /// Must be called from process context.
  void execute(Kernel& kernel, SimTime cycles);

  [[nodiscard]] SimTime busy_cycles() const { return busy_cycles_; }
  [[nodiscard]] std::uint64_t execution_count() const { return executions_; }

 private:
  std::string name_;
  PeKind kind_;
  int cluster_;
  bool busy_ = false;
  Event free_event_;
  SimTime busy_cycles_ = 0;
  std::uint64_t executions_ = 0;
};

/// A fabric cluster: PEs + accelerator slots sharing an L1 memory.
struct Cluster {
  int index = 0;
  std::vector<std::unique_ptr<Pe>> pes;
  std::vector<std::unique_ptr<Pe>> accelerators;
  std::unique_ptr<MemoryModel> l1;
};

/// A DMA engine moving data between memories (host<->fabric exchanges).
class DmaEngine {
 public:
  DmaEngine(std::string name, SimTime setup_cycles, std::uint64_t bytes_per_cycle)
      : name_(std::move(name)), setup_(setup_cycles), bw_(bytes_per_cycle),
        free_event_("dma-free:" + name_) {}

  [[nodiscard]] const std::string& name() const { return name_; }

  /// Transfers `bytes` from `src` to `dst`; advances time by setup plus
  /// bytes/bandwidth, serializing concurrent users of this engine. Must be
  /// called from process context. Parallel backend: a DMA engine is the one
  /// platform resource deliberately shared across partitions, so exclusivity
  /// is waived there — each worker pays the full transfer latency but engine
  /// contention is not modelled (see docs/KERNEL.md "Parallel backend").
  void transfer(Kernel& kernel, MemoryModel& src, MemoryModel& dst, std::uint64_t bytes);

  [[nodiscard]] std::uint64_t transfer_count() const {
    return transfers_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t bytes_transferred() const {
    return bytes_moved_.load(std::memory_order_relaxed);
  }

 private:
  std::string name_;
  SimTime setup_;
  std::uint64_t bw_;
  bool busy_ = false;
  Event free_event_;
  std::atomic<std::uint64_t> transfers_{0};
  std::atomic<std::uint64_t> bytes_moved_{0};
};

/// The whole platform instance. Owns all hardware models.
class Platform {
 public:
  /// Builds a platform of the given dimensions. `kernel` must outlive it.
  Platform(Kernel& kernel, const PlatformConfig& config);

  [[nodiscard]] const PlatformConfig& config() const { return config_; }
  [[nodiscard]] Kernel& kernel() { return kernel_; }

  [[nodiscard]] const std::vector<std::unique_ptr<Pe>>& host_pes() const { return host_; }
  [[nodiscard]] const std::vector<Cluster>& fabric() const { return fabric_; }
  [[nodiscard]] std::vector<Cluster>& fabric() { return fabric_; }
  [[nodiscard]] MemoryModel& l2() { return *l2_; }
  [[nodiscard]] MemoryModel& l3() { return *l3_; }
  [[nodiscard]] std::vector<std::unique_ptr<DmaEngine>>& dmas() { return dmas_; }

  /// PE lookup by name ("host0", "c1p3", "c0a1"); nullptr if unknown.
  [[nodiscard]] Pe* pe_by_name(const std::string& name) const;

  /// Deterministic round-robin allocation of fabric PEs for actor mapping.
  Pe& allocate_fabric_pe();

  /// Total number of PEs (host + fabric + accelerators).
  [[nodiscard]] std::size_t pe_count() const;

  /// Emits the platform topology as Graphviz DOT (regenerates paper Fig. 1).
  [[nodiscard]] std::string to_dot() const;

 private:
  Kernel& kernel_;
  PlatformConfig config_;
  std::vector<std::unique_ptr<Pe>> host_;
  std::vector<Cluster> fabric_;
  std::unique_ptr<MemoryModel> l2_;
  std::unique_ptr<MemoryModel> l3_;
  std::vector<std::unique_ptr<DmaEngine>> dmas_;
  std::size_t next_pe_ = 0;
};

}  // namespace dfdbg::sim

// A simulated process: the kernel's unit of execution. Mirrors SystemC
// SC_THREADs — user-level cooperative threads that a conventional
// thread-level debugger cannot see individually (the paper's §VI-F point).
//
// Two interchangeable execution backends (see context.hpp and docs/KERNEL.md):
// the default backs each process with a stackful fiber the scheduler swaps
// into directly; the legacy backend parks each process on its own OS thread
// behind a semaphore. Scheduling semantics are identical either way.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <semaphore>
#include <string>
#include <thread>

#include "dfdbg/common/ids.hpp"
#include "dfdbg/sim/context.hpp"
#include "dfdbg/sim/time.hpp"

namespace dfdbg::sim {

class Kernel;

struct ProcessIdTag {};
/// Stable identifier of a simulated process.
using ProcessId = dfdbg::Id<ProcessIdTag>;

/// Lifecycle states of a simulated process.
enum class ProcessState {
  kReady,         ///< In the ready queue, will run when scheduled.
  kRunning,       ///< Currently executing (at most one at any instant).
  kWaitingEvent,  ///< Blocked on an Event.
  kWaitingTime,   ///< Blocked until a simulated time.
  kTerminated,    ///< Body returned (or process killed at shutdown).
};

/// Returns a short human-readable name for `s`.
const char* to_string(ProcessState s);

/// A cooperative process. Created via Kernel::spawn; lifetime managed by the
/// kernel. Exactly one process runs at a time, which gives the deterministic
/// token ordering the dataflow debugger relies on.
class Process {
 public:
  Process(const Process&) = delete;
  Process& operator=(const Process&) = delete;
  ~Process();

  [[nodiscard]] ProcessId id() const { return id_; }
  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] ProcessState state() const { return state_; }

  /// Partition this process belongs to (always 0 outside the parallel
  /// backend). Fixed at spawn.
  [[nodiscard]] int partition() const { return shard_; }

  /// Total simulated cycles this process spent advancing time.
  [[nodiscard]] SimTime consumed_time() const { return consumed_time_; }

  /// Number of times this process has been scheduled in.
  [[nodiscard]] std::uint64_t activation_count() const { return activations_; }

  /// Observed wall nanoseconds spent inside this process's dispatches
  /// (scheduled in -> yielded back), accumulated only on the parallel
  /// backend while obs::enabled() — 0 on unobserved or sequential runs
  /// (sequential dispatch skips the clock reads: nothing consumes the
  /// data there). A measurement, never schedule input; it feeds
  /// Application::dispatch_time_profile() for time-weighted partitioning.
  [[nodiscard]] std::uint64_t consumed_wall_ns() const { return consumed_wall_ns_; }

  /// Cached journal intern id of name() (UINT32_MAX until first dispatch);
  /// kernel plumbing — see jname_.
  [[nodiscard]] std::uint32_t jname() const { return jname_.load(std::memory_order_relaxed); }
  void set_jname(std::uint32_t id) { jname_.store(id, std::memory_order_relaxed); }

 private:
  friend class Kernel;
  Process(Kernel* kernel, ProcessId id, std::string name, std::function<void()> body);

  /// Thread backend: OS-thread body. Blocks until first dispatch / teardown.
  void thread_main();
  /// Fiber backend: runs `body_` on the fiber's own stack, then hands control
  /// back to the scheduler permanently. Never returns.
  void fiber_main();
  static void fiber_entry(void* self);

  /// Yields the CPU back to the kernel scheduler and blocks until the kernel
  /// hands control back. Throws Killed at kernel teardown.
  void park();

  Kernel* kernel_;
  ProcessId id_;
  std::string name_;
  std::function<void()> body_;
  ProcessState state_ = ProcessState::kReady;
  SimTime wake_time_ = 0;
  SimTime consumed_time_ = 0;
  std::uint64_t activations_ = 0;
  std::uint64_t consumed_wall_ns_ = 0;  ///< obs-gated; see consumed_wall_ns()
  std::uint64_t wait_seq_ = 0;  ///< tie-break for deterministic timed wakeups
  int shard_ = 0;               ///< parallel backend: owning partition

  /// Journal intern id of name_, cached at the first dispatch so the hot
  /// path skips the (locked, in parallel mode) intern table. UINT32_MAX =
  /// not yet interned. Benign racing writes store the same value.
  std::atomic<std::uint32_t> jname_{UINT32_MAX};

  // Thread-process substrates (kThreads, kParallel with thread processes).
  std::binary_semaphore resume_sem_{0};
  std::binary_semaphore* sched_sem_ = nullptr;  ///< scheduler side of the handoff
  std::thread thread_;

  // Fiber-process substrates (kFibers, kParallel default).
  std::unique_ptr<FiberContext> fiber_;
  FiberContext* resume_anchor_ = nullptr;  ///< context park() yields back to
  bool fiber_started_ = false;  ///< the fiber has been entered at least once
};

}  // namespace dfdbg::sim

// The instrumentation port: this repository's stand-in for attaching GDB to
// the simulator process.
//
// In the paper, the debugger sets *function breakpoints* at the entry and
// exit of the dataflow framework's API functions and parses the relevant
// arguments "based on the API definition, calling conventions and debug
// information" (DWARF). The framework itself is NOT modified.
//
// Running everything in one host process, we cannot plant real INT3
// breakpoints, so the simulator exposes this port instead: framework
// functions report (symbol, raw argument values) at entry/exit, exactly the
// data a breakpoint + DWARF parse would yield. The debugger attaches by
// symbol name and registers enter hooks (function breakpoints) and exit
// hooks (the paper's *finish breakpoints*). When nothing is attached the
// fast path is a single branch, so the framework stays debugger-agnostic.
//
// "Framework cooperation" (§V, option 2 — left unimplemented in the paper,
// built here as an extension): the framework can additionally report a
// per-instance symbol (e.g. the link or actor the call concerns), letting
// the debugger arm breakpoints for the actors of interest only.
#pragma once

#include <cstdint>
#include <functional>
#include <initializer_list>
#include <mutex>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "dfdbg/common/ids.hpp"
#include "dfdbg/common/strings.hpp"

namespace dfdbg::obs {
class Counter;
}  // namespace dfdbg::obs

namespace dfdbg::sim {

class Kernel;

struct SymbolIdTag {};
/// Dense id of an interned function (or instance) symbol.
using SymbolId = dfdbg::Id<SymbolIdTag>;

struct HookIdTag {};
/// Identifier of one registered hook (function or finish breakpoint).
using HookId = dfdbg::Id<HookIdTag>;

/// One function argument (or return value) as the debugger would recover it
/// from registers/stack plus DWARF type info.
struct ArgValue {
  enum class Kind : std::uint8_t { kNone, kI64, kU64, kF64, kPtr, kStr };

  const char* name = "";
  Kind kind = Kind::kNone;
  std::int64_t i64 = 0;
  std::uint64_t u64 = 0;
  double f64 = 0.0;
  void* ptr = nullptr;
  const char* str = nullptr;

  static ArgValue of_i64(const char* n, std::int64_t v) {
    ArgValue a;
    a.name = n;
    a.kind = Kind::kI64;
    a.i64 = v;
    return a;
  }
  static ArgValue of_u64(const char* n, std::uint64_t v) {
    ArgValue a;
    a.name = n;
    a.kind = Kind::kU64;
    a.u64 = v;
    return a;
  }
  static ArgValue of_f64(const char* n, double v) {
    ArgValue a;
    a.name = n;
    a.kind = Kind::kF64;
    a.f64 = v;
    return a;
  }
  static ArgValue of_ptr(const char* n, void* v) {
    ArgValue a;
    a.name = n;
    a.kind = Kind::kPtr;
    a.ptr = v;
    return a;
  }
  static ArgValue of_str(const char* n, const char* v) {
    ArgValue a;
    a.name = n;
    a.kind = Kind::kStr;
    a.str = v;
    return a;
  }
};

/// The view a hook receives when its breakpoint triggers.
class Frame {
 public:
  Frame(Kernel& kernel, SymbolId symbol, std::string_view symbol_name,
        std::span<const ArgValue> args, const ArgValue* ret)
      : kernel_(kernel), symbol_(symbol), symbol_name_(symbol_name), args_(args), ret_(ret) {}

  [[nodiscard]] Kernel& kernel() const { return kernel_; }
  [[nodiscard]] SymbolId symbol() const { return symbol_; }
  [[nodiscard]] std::string_view symbol_name() const { return symbol_name_; }
  [[nodiscard]] std::span<const ArgValue> args() const { return args_; }

  /// Argument by name, nullptr if absent.
  [[nodiscard]] const ArgValue* arg(std::string_view name) const;

  /// Return value — non-null only in exit (finish-breakpoint) hooks.
  [[nodiscard]] const ArgValue* ret() const { return ret_; }

 private:
  Kernel& kernel_;
  SymbolId symbol_;
  std::string_view symbol_name_;
  std::span<const ArgValue> args_;
  const ArgValue* ret_;
};

/// Hook callback. Runs synchronously on the simulated process that executed
/// the framework function; may call Kernel::debug_break() to stop.
using Hook = std::function<void(Frame&)>;

/// Registry of symbols and hooks. One per kernel.
class InstrumentPort {
 public:
  // --- symbol table (framework fills it during elaboration) ---------------

  /// Interns `name`, returning a dense id (idempotent).
  SymbolId intern(std::string name);
  /// Id of `name` if interned, invalid id otherwise.
  [[nodiscard]] SymbolId lookup(std::string_view name) const;
  /// Name of an interned symbol.
  [[nodiscard]] const std::string& symbol_name(SymbolId id) const;
  /// All interned symbol names (the debugger's "symbol file").
  [[nodiscard]] std::vector<std::string> all_symbols() const;

  // --- debugger side -------------------------------------------------------

  /// Registers a function breakpoint at `symbol` entry.
  HookId add_enter_hook(SymbolId symbol, Hook hook);
  /// Registers a finish breakpoint at `symbol` exit.
  HookId add_exit_hook(SymbolId symbol, Hook hook);
  /// Unregisters a hook (idempotent).
  void remove_hook(HookId id);
  /// Temporarily enables/disables a hook without unregistering it — the
  /// paper's option 1 ("disabling the data exchange breakpoints").
  void set_hook_enabled(HookId id, bool enabled);
  [[nodiscard]] bool hook_enabled(HookId id) const;

  /// Master switch: with false, no hooks fire at all (detached debugger).
  void set_enabled(bool enabled) { enabled_ = enabled; }
  [[nodiscard]] bool enabled() const { return enabled_; }

  // --- framework side ------------------------------------------------------

  /// Fast check used by the framework before building an argument pack.
  /// `instance` is the optional per-actor/per-link symbol (cooperation).
  [[nodiscard]] bool armed(SymbolId symbol, SymbolId instance = SymbolId{}) const {
    if (!enabled_) return false;
    return has_any_hook(symbol) || (instance.valid() && has_any_hook(instance));
  }

  /// Fires enter hooks of `symbol` (and `instance`, if armed). Called by the
  /// framework; `kernel` is the owning kernel.
  void fire_enter(Kernel& kernel, SymbolId symbol, std::span<const ArgValue> args,
                  SymbolId instance = SymbolId{});
  /// Fires exit hooks with the return value (may be null for void).
  void fire_exit(Kernel& kernel, SymbolId symbol, std::span<const ArgValue> args,
                 const ArgValue* ret, SymbolId instance = SymbolId{});

  /// Set during kernel teardown so that unwinding frames stop reporting.
  void set_teardown(bool teardown) { teardown_ = teardown; }
  [[nodiscard]] bool teardown() const { return teardown_; }

  /// Serializes hook dispatch under the parallel backend: workers of
  /// different partitions may hit armed framework functions concurrently,
  /// but debugger hooks (and the port's own bookkeeping) assume the
  /// stopped-world view the sequential backends give them. Construction
  /// takes the port's dispatch mutex (re-entrant via a thread-local depth,
  /// so a hook that triggers another armed call does not self-deadlock) and
  /// brackets the kernel (hook_dispatch_enter/exit) so a debug_break()
  /// issued inside a hook parks only after the mutex is released.
  /// Sequential backends: a no-op. fire_enter/fire_exit take this scope
  /// themselves; it is public for debugger code that needs the same
  /// exclusion around out-of-band port mutation while workers run.
  class DispatchScope {
   public:
    DispatchScope(InstrumentPort& port, Kernel& kernel);
    // noexcept(false): a deferred debug_break parks the process *inside*
    // this destructor (after the unlock, in hook_dispatch_exit). Kernel
    // teardown unwinds such frozen processes by throwing through park(),
    // and that exception must be able to leave this frame.
    ~DispatchScope() noexcept(false);
    DispatchScope(const DispatchScope&) = delete;
    DispatchScope& operator=(const DispatchScope&) = delete;

   private:
    InstrumentPort& port_;
    Kernel& kernel_;
    bool active_;  ///< kernel is parallel: the bracket applies
  };

  // --- statistics (benchmarks & tests) -------------------------------------

  [[nodiscard]] std::uint64_t enter_fired() const { return enter_fired_; }
  [[nodiscard]] std::uint64_t exit_fired() const { return exit_fired_; }
  [[nodiscard]] std::uint64_t hook_invocations() const { return hook_invocations_; }
  /// Times any hook of `symbol` has been invoked.
  [[nodiscard]] std::uint64_t symbol_hits(SymbolId symbol) const;
  void reset_stats();

 private:
  struct HookRecord {
    SymbolId symbol;
    bool is_enter = true;
    bool enabled = true;
    bool removed = false;
    Hook fn;
  };
  struct SymbolHooks {
    std::vector<std::uint32_t> enter;  // indexes into hooks_
    std::vector<std::uint32_t> exit;
    std::uint64_t hits = 0;
  };

  [[nodiscard]] bool has_any_hook(SymbolId s) const;
  void fire_list(Kernel& kernel, const std::vector<std::uint32_t>& list, SymbolId symbol,
                 std::span<const ArgValue> args, const ArgValue* ret, bool is_enter);
  /// Registry counter "hook.sym.<name>.enter|exit", interned on first fire.
  obs::Counter& symbol_counter(SymbolId symbol, bool is_enter);

  bool enabled_ = false;
  bool teardown_ = false;
  /// Parallel backend: held for the duration of every hook dispatch (see
  /// DispatchScope). All mutable port state below is only touched while the
  /// owning kernel is stopped or under this mutex.
  std::mutex dispatch_mu_;
  std::vector<std::string> symbol_names_;
  // Transparent hash/equal: lookup(string_view) probes without allocating.
  std::unordered_map<std::string, std::uint32_t, TransparentStringHash, std::equal_to<>>
      symbol_index_;
  std::vector<SymbolHooks> per_symbol_;
  std::vector<HookRecord> hooks_;
  std::uint64_t enter_fired_ = 0;
  std::uint64_t exit_fired_ = 0;
  std::uint64_t hook_invocations_ = 0;
  // Per-symbol obs counters, indexed by SymbolId and interned on first use
  // so hot fires never pay a name lookup (see symbol_counter()).
  std::vector<obs::Counter*> enter_counters_;
  std::vector<obs::Counter*> exit_counters_;
};

/// RAII frame used by framework functions: fires the enter hook on
/// construction and the exit (finish) hook on destruction.
class InstrScope {
 public:
  /// `args` must outlive the scope (they normally live on the caller stack).
  InstrScope(Kernel& kernel, SymbolId symbol, std::span<const ArgValue> args,
             SymbolId instance = SymbolId{});
  /// noexcept(false): exit hooks may suspend the process (debug_break), and
  /// a kernel teardown while suspended unwinds through this destructor.
  ~InstrScope() noexcept(false);

  InstrScope(const InstrScope&) = delete;
  InstrScope& operator=(const InstrScope&) = delete;

  /// Sets the value the exit hook will observe as the function result.
  void set_return(ArgValue ret) {
    ret_ = ret;
    has_ret_ = true;
  }

 private:
  Kernel& kernel_;
  SymbolId symbol_;
  SymbolId instance_;
  std::span<const ArgValue> args_;
  ArgValue ret_;
  bool has_ret_ = false;
  bool armed_;
  int uncaught_;  ///< exception depth at entry; skip exit hooks when unwinding
};

}  // namespace dfdbg::sim

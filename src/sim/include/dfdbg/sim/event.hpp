// Simulation events: the wait/notify primitive of the cooperative kernel.
// A process waits on an event; notifying moves all waiters (in wait order,
// deterministically) to the ready queue.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace dfdbg::sim {

class Process;
class Kernel;

/// A named notification channel. Owned by user code; must outlive any wait.
class Event {
 public:
  explicit Event(std::string name = "event") : name_(std::move(name)) {}

  Event(const Event&) = delete;
  Event& operator=(const Event&) = delete;

  [[nodiscard]] const std::string& name() const { return name_; }

  /// Number of processes currently blocked on this event.
  [[nodiscard]] std::size_t waiter_count() const { return waiters_.size(); }

  /// Number of times this event has been notified.
  [[nodiscard]] std::uint64_t notify_count() const { return notify_count_; }

  /// Number of notifies elided by Kernel::notify_if_waiting because no
  /// process was blocked (edge-coalescing on the token hot path: a link
  /// only signals data/space availability when a waiter can make progress).
  [[nodiscard]] std::uint64_t coalesced_count() const { return coalesced_count_; }

 private:
  friend class Kernel;
  std::string name_;
  std::vector<Process*> waiters_;
  std::uint64_t notify_count_ = 0;
  std::uint64_t coalesced_count_ = 0;
};

}  // namespace dfdbg::sim

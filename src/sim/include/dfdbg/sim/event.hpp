// Simulation events: the wait/notify primitive of the cooperative kernel.
// A process waits on an event; notifying moves all waiters (in wait order,
// deterministically) to the ready queue.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace dfdbg::sim {

class Process;
class Kernel;

/// A named notification channel. Owned by user code; must outlive any wait.
class Event {
 public:
  explicit Event(std::string name = "event") : name_(std::move(name)) {}

  Event(const Event&) = delete;
  Event& operator=(const Event&) = delete;

  [[nodiscard]] const std::string& name() const { return name_; }

  /// Number of processes currently blocked on this event.
  [[nodiscard]] std::size_t waiter_count() const { return waiters_.size(); }

  /// Number of times this event has been notified.
  [[nodiscard]] std::uint64_t notify_count() const { return notify_count_; }

  /// Number of notifies elided by Kernel::notify_if_waiting because no
  /// process was blocked (edge-coalescing on the token hot path: a link
  /// only signals data/space availability when a waiter can make progress).
  [[nodiscard]] std::uint64_t coalesced_count() const { return coalesced_count_; }

  /// Parallel backend: the partition whose processes wait on this event, or
  /// -1 while unclaimed. All waiters of one event must live in a single
  /// partition (the kernel claims ownership at the first wait and panics on
  /// a cross-partition wait); the pedf runtime pre-binds its events at
  /// Application::start(). Notifies from any partition remain legal — a
  /// non-owner's notify is deferred to the next barrier.
  [[nodiscard]] int partition() const { return partition_.load(std::memory_order_relaxed); }
  /// Pre-claims the owning partition (see partition()).
  void bind_partition(int p) { partition_.store(p, std::memory_order_relaxed); }

 private:
  friend class Kernel;
  std::string name_;
  std::vector<Process*> waiters_;
  std::uint64_t notify_count_ = 0;
  std::uint64_t coalesced_count_ = 0;
  std::atomic<int> partition_{-1};
  /// Set while this event sits in some shard's deferred-notify list (dedupe:
  /// at most one barrier delivery per event per round).
  std::atomic<bool> deferred_pending_{false};
};

}  // namespace dfdbg::sim

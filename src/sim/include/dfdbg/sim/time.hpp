// Simulated time. The functional simulator counts abstract cycles; all
// latencies (memory, DMA, compute) are expressed in cycles.
#pragma once

#include <cstdint>

namespace dfdbg::sim {

/// Simulated time in cycles.
using SimTime = std::uint64_t;

/// Sentinel: run without a time bound.
inline constexpr SimTime kMaxSimTime = UINT64_MAX;

}  // namespace dfdbg::sim

// Stackful user-level execution contexts (fibers) for the simulation kernel.
//
// The paper debugs the P2012 *functional simulator*, whose actors run as
// SystemC user-level cooperative threads (QuickThreads): switching between
// them is a few dozen nanoseconds of register save/restore, invisible to the
// OS and to a thread-level debugger. This file reproduces that substrate with
// POSIX ucontext (`makecontext`/`swapcontext`): each fiber owns an `mmap`'d
// stack with a PROT_NONE guard page below it, so a runaway recursion faults
// deterministically instead of silently corrupting a neighbouring stack.
//
// The kernel keeps three interchangeable process backends:
//   kFibers  (default) — dispatch is one user-space context switch each way;
//                        no OS scheduling on the hot path.
//   kThreads           — the original std::thread + two-semaphore handoff.
//                        Slower by orders of magnitude, but sanitizer- and
//                        valgrind-friendly (those tools do not follow raw
//                        `swapcontext` stacks).
//   kParallel          — the graph is partitioned into per-cluster sub-kernels,
//                        each drained by its own worker thread (fibers inside a
//                        partition, a conservative barrier between partitions).
//                        See docs/KERNEL.md "Parallel backend".
// All backends honour the same dispatch ordering (parallel: per partition, and
// globally under a fixed single-partition map), teardown-by-unwind and public
// API.
#pragma once

#include <ucontext.h>

#include <cstddef>

namespace dfdbg::sim {

/// How the kernel executes simulated processes. See file comment.
enum class ProcessBackend {
  kThreads,   ///< one OS thread per process, semaphore handoff per dispatch
  kFibers,    ///< user-level stackful contexts, swapcontext per dispatch
  kParallel,  ///< partitioned sub-kernels on worker threads, barrier-synced
};

/// Returns a short human-readable name for `b` ("threads"/"fibers"/"parallel").
const char* to_string(ProcessBackend b);

/// The backend new kernels use when none is passed to the constructor.
/// Resolution order: set_default_process_backend() override, then the
/// DFDBG_PROCESS_BACKEND environment variable ("threads"/"fibers"/"parallel"),
/// then the compile-time default chosen by the DFDBG_PROCESS_BACKEND CMake
/// option.
[[nodiscard]] ProcessBackend default_process_backend();

/// Worker-thread count new kParallel kernels use when none is passed to the
/// constructor: the DFDBG_PARALLEL_WORKERS environment variable, or 2.
[[nodiscard]] int default_parallel_workers();

/// Substrate simulated processes run on inside a kParallel partition: fibers
/// (default) or parked OS threads when DFDBG_PARALLEL_SUBSTRATE=threads —
/// the sanitizer-friendly variant ThreadSanitizer CI uses, since TSan does
/// not follow raw swapcontext stacks. Scheduling is identical either way.
[[nodiscard]] bool parallel_uses_thread_processes();

/// Overrides the process-wide default (benchmarks flip this to measure both
/// backends in one run). Sticky until called again.
void set_default_process_backend(ProcessBackend b);

/// One stackful execution context. Two flavours:
///  - default-constructed: an empty anchor the *scheduler* runs on; it has no
///    stack of its own and is filled by the first switch away from it.
///  - stack-constructed: a fiber with its own guarded stack, prepared so the
///    first switch into it calls `entry(arg)`. `entry` must never return —
///    it hands control back by switching to another context (the kernel
///    switches out of a finished fiber and never re-enters it).
class FiberContext {
 public:
  using Entry = void (*)(void*);

  /// Empty scheduler-side anchor.
  FiberContext();

  /// Fiber with `stack_bytes` of usable stack (rounded up to whole pages)
  /// plus one PROT_NONE guard page below it. Panics if the mapping fails.
  FiberContext(std::size_t stack_bytes, Entry entry, void* arg);

  ~FiberContext();

  FiberContext(const FiberContext&) = delete;
  FiberContext& operator=(const FiberContext&) = delete;

  /// Saves the current context into `from` and resumes `to`. Returns when
  /// some other context switches back into `from`.
  static void switch_to(FiberContext& from, FiberContext& to);

  /// True for stack-constructed fibers.
  [[nodiscard]] bool has_stack() const { return map_base_ != nullptr; }

  /// Usable stack bytes (0 for the scheduler anchor).
  [[nodiscard]] std::size_t stack_bytes() const { return stack_bytes_; }

  /// Stack size used for new simulated processes: the DFDBG_FIBER_STACK_KB
  /// environment variable, or 1 MiB. Virtual memory only — pages are
  /// committed on first touch, so idle processes stay cheap.
  [[nodiscard]] static std::size_t default_stack_bytes();

 private:
  static void trampoline(unsigned hi, unsigned lo);

  ucontext_t uc_;
  void* map_base_ = nullptr;   ///< mmap base (guard page included)
  std::size_t map_bytes_ = 0;  ///< total mapping size
  std::size_t stack_bytes_ = 0;
  Entry entry_ = nullptr;
  void* arg_ = nullptr;
};

}  // namespace dfdbg::sim

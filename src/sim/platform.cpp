#include "dfdbg/sim/platform.hpp"

#include <sstream>

#include "dfdbg/common/assert.hpp"
#include "dfdbg/common/strings.hpp"

namespace dfdbg::sim {

void MemoryModel::access(Kernel& kernel, std::uint64_t bytes) {
  accesses_.fetch_add(1, std::memory_order_relaxed);
  bytes_moved_.fetch_add(bytes, std::memory_order_relaxed);
  // One latency per access plus one cycle per 8-byte word beyond the first.
  SimTime cost = latency_ + (bytes > 8 ? (bytes - 1) / 8 : 0);
  if (kernel.current() != nullptr) kernel.advance(cost);
}

void Pe::execute(Kernel& kernel, SimTime cycles) {
  while (busy_) kernel.wait(free_event_);
  busy_ = true;
  executions_++;
  busy_cycles_ += cycles;
  kernel.advance(cycles);
  busy_ = false;
  kernel.notify(free_event_);
}

void DmaEngine::transfer(Kernel& kernel, MemoryModel& src, MemoryModel& dst,
                         std::uint64_t bytes) {
  // Parallel backend: engines serve every partition, but the busy flag and
  // free event assume single-partition use (an event's waiters must share a
  // partition). With several partitions, exclusivity is waived for workers —
  // latency is still paid, engine contention is not modelled. A one-worker
  // parallel kernel keeps full contention modelling, which is what makes its
  // schedule byte-identical to the sequential backends.
  bool exclusive = kernel.current_partition() < 0 || kernel.partition_count() == 1;
  if (exclusive) {
    while (busy_) kernel.wait(free_event_);
    busy_ = true;
  }
  transfers_.fetch_add(1, std::memory_order_relaxed);
  bytes_moved_.fetch_add(bytes, std::memory_order_relaxed);
  src.access(kernel, 0);  // count the touch, no extra advance for 0 bytes
  dst.access(kernel, 0);
  SimTime cost = setup_ + (bw_ > 0 ? bytes / bw_ : 0);
  kernel.advance(cost);
  if (exclusive) {
    busy_ = false;
    kernel.notify(free_event_);
  }
}

Platform::Platform(Kernel& kernel, const PlatformConfig& config)
    : kernel_(kernel), config_(config) {
  DFDBG_CHECK(config.host_cores >= 1);
  DFDBG_CHECK(config.clusters >= 1);
  DFDBG_CHECK(config.pes_per_cluster >= 1);
  for (int i = 0; i < config.host_cores; ++i)
    host_.push_back(std::make_unique<Pe>(strformat("host%d", i), PeKind::kHost, -1));
  for (int c = 0; c < config.clusters; ++c) {
    Cluster cl;
    cl.index = c;
    for (int p = 0; p < config.pes_per_cluster; ++p)
      cl.pes.push_back(std::make_unique<Pe>(strformat("c%dp%d", c, p), PeKind::kFabric, c));
    for (int a = 0; a < config.accel_slots_per_cluster; ++a)
      cl.accelerators.push_back(
          std::make_unique<Pe>(strformat("c%da%d", c, a), PeKind::kAccelerator, c));
    cl.l1 = std::make_unique<MemoryModel>(strformat("L1.c%d", c), config.l1_bytes,
                                          config.l1_latency);
    fabric_.push_back(std::move(cl));
  }
  l2_ = std::make_unique<MemoryModel>("L2", config.l2_bytes, config.l2_latency);
  l3_ = std::make_unique<MemoryModel>("L3", config.l3_bytes, config.l3_latency);
  for (int d = 0; d < config.dma_engines; ++d)
    dmas_.push_back(std::make_unique<DmaEngine>(strformat("dma%d", d), config.dma_setup_cycles,
                                                config.dma_bytes_per_cycle));
}

Pe* Platform::pe_by_name(const std::string& name) const {
  for (const auto& p : host_)
    if (p->name() == name) return p.get();
  for (const auto& cl : fabric_) {
    for (const auto& p : cl.pes)
      if (p->name() == name) return p.get();
    for (const auto& p : cl.accelerators)
      if (p->name() == name) return p.get();
  }
  return nullptr;
}

Pe& Platform::allocate_fabric_pe() {
  std::size_t total = static_cast<std::size_t>(config_.clusters) *
                      static_cast<std::size_t>(config_.pes_per_cluster);
  std::size_t idx = next_pe_ % total;
  next_pe_++;
  // Spread across clusters first, then across PEs within a cluster.
  std::size_t cluster = idx % static_cast<std::size_t>(config_.clusters);
  std::size_t pe = idx / static_cast<std::size_t>(config_.clusters);
  return *fabric_[cluster].pes[pe];
}

std::size_t Platform::pe_count() const {
  std::size_t n = host_.size();
  for (const auto& cl : fabric_) n += cl.pes.size() + cl.accelerators.size();
  return n;
}

std::string Platform::to_dot() const {
  std::ostringstream os;
  os << "digraph p2012 {\n  rankdir=LR;\n  node [shape=box];\n";
  os << "  subgraph cluster_host {\n    label=\"Host (ARM)\";\n";
  for (const auto& p : host_) os << "    \"" << p->name() << "\";\n";
  os << "  }\n";
  for (const auto& cl : fabric_) {
    os << "  subgraph cluster_c" << cl.index << " {\n    label=\"Cluster " << cl.index
       << "\";\n";
    for (const auto& p : cl.pes) os << "    \"" << p->name() << "\";\n";
    for (const auto& p : cl.accelerators)
      os << "    \"" << p->name() << "\" [shape=component];\n";
    os << "    \"" << cl.l1->name() << "\" [shape=cylinder];\n";
    for (const auto& p : cl.pes)
      os << "    \"" << p->name() << "\" -> \"" << cl.l1->name() << "\";\n";
    for (const auto& p : cl.accelerators)
      os << "    \"" << p->name() << "\" -> \"" << cl.l1->name() << "\";\n";
    os << "  }\n";
  }
  os << "  \"L2\" [shape=cylinder];\n  \"L3\" [shape=cylinder];\n";
  for (const auto& cl : fabric_) os << "  \"" << cl.l1->name() << "\" -> \"L2\";\n";
  for (const auto& d : dmas_) {
    os << "  \"" << d->name() << "\" [shape=cds];\n";
    os << "  \"L2\" -> \"" << d->name() << "\" -> \"L3\";\n";
  }
  for (const auto& p : host_) os << "  \"" << p->name() << "\" -> \"L3\";\n";
  os << "}\n";
  return os.str();
}

}  // namespace dfdbg::sim

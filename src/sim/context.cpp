#include "dfdbg/sim/context.hpp"

#include <sys/mman.h>
#include <unistd.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <cstring>

#include "dfdbg/common/assert.hpp"
#include "dfdbg/common/strings.hpp"

namespace dfdbg::sim {

namespace {

std::size_t page_size() {
  static const std::size_t sz = static_cast<std::size_t>(::sysconf(_SC_PAGESIZE));
  return sz;
}

std::size_t round_up_pages(std::size_t bytes) {
  std::size_t page = page_size();
  return (bytes + page - 1) / page * page;
}

/// The explicit override, if any. 0 = unset, else 1 + backend enum value.
std::atomic<int> g_backend_override{0};

ProcessBackend compiled_default_backend() {
#if defined(DFDBG_DEFAULT_BACKEND_THREADS)
  return ProcessBackend::kThreads;
#elif defined(DFDBG_DEFAULT_BACKEND_PARALLEL)
  return ProcessBackend::kParallel;
#else
  return ProcessBackend::kFibers;
#endif
}

}  // namespace

const char* to_string(ProcessBackend b) {
  switch (b) {
    case ProcessBackend::kThreads: return "threads";
    case ProcessBackend::kFibers: return "fibers";
    case ProcessBackend::kParallel: return "parallel";
  }
  return "?";
}

ProcessBackend default_process_backend() {
  int ov = g_backend_override.load(std::memory_order_relaxed);
  if (ov != 0) return static_cast<ProcessBackend>(ov - 1);
  // Read the environment on every call (not cached) so tests and the CI
  // harness can steer whole binaries through DFDBG_PROCESS_BACKEND.
  if (const char* env = std::getenv("DFDBG_PROCESS_BACKEND")) {
    if (std::strcmp(env, "threads") == 0) return ProcessBackend::kThreads;
    if (std::strcmp(env, "fibers") == 0) return ProcessBackend::kFibers;
    if (std::strcmp(env, "parallel") == 0) return ProcessBackend::kParallel;
    if (env[0] != '\0')
      panic(__FILE__, __LINE__,
            strformat("DFDBG_PROCESS_BACKEND='%s' (expected 'threads', 'fibers' or 'parallel')",
                      env));
  }
  return compiled_default_backend();
}

void set_default_process_backend(ProcessBackend b) {
  g_backend_override.store(1 + static_cast<int>(b), std::memory_order_relaxed);
}

int default_parallel_workers() {
  // Read on every call (not cached) so tests can sweep worker counts through
  // the environment within one binary.
  if (const char* env = std::getenv("DFDBG_PARALLEL_WORKERS")) {
    long n = std::atol(env);
    if (n >= 1 && n <= 256) return static_cast<int>(n);
    if (env[0] != '\0')
      panic(__FILE__, __LINE__,
            strformat("DFDBG_PARALLEL_WORKERS='%s' (expected 1..256)", env));
  }
  return 2;
}

bool parallel_uses_thread_processes() {
  if (const char* env = std::getenv("DFDBG_PARALLEL_SUBSTRATE")) {
    if (std::strcmp(env, "threads") == 0) return true;
    if (std::strcmp(env, "fibers") == 0) return false;
    if (env[0] != '\0')
      panic(__FILE__, __LINE__,
            strformat("DFDBG_PARALLEL_SUBSTRATE='%s' (expected 'fibers' or 'threads')", env));
  }
  return false;
}

std::size_t FiberContext::default_stack_bytes() {
  static const std::size_t bytes = [] {
    if (const char* env = std::getenv("DFDBG_FIBER_STACK_KB")) {
      long kb = std::atol(env);
      if (kb > 0) return static_cast<std::size_t>(kb) * 1024;
    }
    return std::size_t{1} << 20;  // 1 MiB of (lazily committed) stack
  }();
  return bytes;
}

FiberContext::FiberContext() { std::memset(&uc_, 0, sizeof uc_); }

FiberContext::FiberContext(std::size_t stack_bytes, Entry entry, void* arg)
    : entry_(entry), arg_(arg) {
  std::size_t page = page_size();
  stack_bytes_ = round_up_pages(stack_bytes == 0 ? default_stack_bytes() : stack_bytes);
  map_bytes_ = stack_bytes_ + page;  // +1 guard page at the low end
  void* base = ::mmap(nullptr, map_bytes_, PROT_READ | PROT_WRITE,
                      MAP_PRIVATE | MAP_ANONYMOUS | MAP_STACK, -1, 0);
  DFDBG_CHECK_MSG(base != MAP_FAILED, "fiber stack mmap failed");
  // Stacks grow down: protect the lowest page so overflow faults immediately
  // instead of scribbling over whatever the allocator placed below.
  DFDBG_CHECK_MSG(::mprotect(base, page, PROT_NONE) == 0, "fiber guard mprotect failed");
  map_base_ = base;

  std::memset(&uc_, 0, sizeof uc_);
  DFDBG_CHECK_MSG(::getcontext(&uc_) == 0, "getcontext failed");
  uc_.uc_stack.ss_sp = static_cast<char*>(base) + page;
  uc_.uc_stack.ss_size = stack_bytes_;
  uc_.uc_link = nullptr;  // entry never returns; see header contract
  // makecontext passes only ints — split `this` across two 32-bit halves.
  auto self = reinterpret_cast<std::uintptr_t>(this);
  ::makecontext(&uc_, reinterpret_cast<void (*)()>(&FiberContext::trampoline), 2,
                static_cast<unsigned>(self >> 32),
                static_cast<unsigned>(self & 0xffffffffu));
}

FiberContext::~FiberContext() {
  if (map_base_ != nullptr) ::munmap(map_base_, map_bytes_);
}

void FiberContext::trampoline(unsigned hi, unsigned lo) {
  auto self = reinterpret_cast<FiberContext*>((static_cast<std::uintptr_t>(hi) << 32) |
                                              static_cast<std::uintptr_t>(lo));
  self->entry_(self->arg_);
  panic(__FILE__, __LINE__, "fiber entry returned instead of switching away");
}

void FiberContext::switch_to(FiberContext& from, FiberContext& to) {
  DFDBG_CHECK_MSG(::swapcontext(&from.uc_, &to.uc_) == 0, "swapcontext failed");
}

}  // namespace dfdbg::sim

#include "dfdbg/sim/instrument.hpp"

#include <exception>

#include "dfdbg/common/assert.hpp"
#include "dfdbg/obs/metrics.hpp"
#include "dfdbg/sim/kernel.hpp"

namespace dfdbg::sim {

namespace {
/// Hook-dispatch instruments (aggregate across all ports).
struct HookMetrics {
  obs::Counter& enter_fired;
  obs::Counter& exit_fired;
  obs::Counter& invocations;
  obs::Histogram& dispatch_ns;
  static HookMetrics& get() {
    auto& r = obs::Registry::global();
    static HookMetrics m{r.counter("hook.enter"), r.counter("hook.exit"),
                         r.counter("hook.invocation"), r.histogram("hook.dispatch_ns")};
    return m;
  }
};
/// Re-entrancy depth of DispatchScope on this thread (a hook that triggers
/// another armed framework call must not re-lock the dispatch mutex).
thread_local int t_dispatch_depth = 0;
}  // namespace

InstrumentPort::DispatchScope::DispatchScope(InstrumentPort& port, Kernel& kernel)
    : port_(port), kernel_(kernel), active_(kernel.parallel()) {
  if (!active_) return;
  if (t_dispatch_depth++ == 0) port_.dispatch_mu_.lock();
  kernel_.hook_dispatch_enter();
}

InstrumentPort::DispatchScope::~DispatchScope() noexcept(false) {
  if (!active_) return;
  if (--t_dispatch_depth == 0) port_.dispatch_mu_.unlock();
  // After the unlock: a debug_break() deferred by a hook parks here, with
  // the mutex free for the other workers finishing their round.
  kernel_.hook_dispatch_exit();
}

const ArgValue* Frame::arg(std::string_view name) const {
  for (const ArgValue& a : args_)
    if (name == a.name) return &a;
  return nullptr;
}

SymbolId InstrumentPort::intern(std::string name) {
  auto it = symbol_index_.find(name);
  if (it != symbol_index_.end()) return SymbolId(it->second);
  auto idx = static_cast<std::uint32_t>(symbol_names_.size());
  symbol_index_.emplace(name, idx);
  symbol_names_.push_back(std::move(name));
  per_symbol_.emplace_back();
  return SymbolId(idx);
}

SymbolId InstrumentPort::lookup(std::string_view name) const {
  auto it = symbol_index_.find(name);  // heterogeneous: no std::string temporary
  return it == symbol_index_.end() ? SymbolId{} : SymbolId(it->second);
}

const std::string& InstrumentPort::symbol_name(SymbolId id) const {
  DFDBG_CHECK(id.valid() && id.value() < symbol_names_.size());
  return symbol_names_[id.value()];
}

std::vector<std::string> InstrumentPort::all_symbols() const { return symbol_names_; }

HookId InstrumentPort::add_enter_hook(SymbolId symbol, Hook hook) {
  DFDBG_CHECK(symbol.valid() && symbol.value() < per_symbol_.size());
  auto id = HookId(static_cast<std::uint32_t>(hooks_.size()));
  hooks_.push_back(HookRecord{symbol, /*is_enter=*/true, /*enabled=*/true,
                              /*removed=*/false, std::move(hook)});
  per_symbol_[symbol.value()].enter.push_back(id.value());
  return id;
}

HookId InstrumentPort::add_exit_hook(SymbolId symbol, Hook hook) {
  DFDBG_CHECK(symbol.valid() && symbol.value() < per_symbol_.size());
  auto id = HookId(static_cast<std::uint32_t>(hooks_.size()));
  hooks_.push_back(HookRecord{symbol, /*is_enter=*/false, /*enabled=*/true,
                              /*removed=*/false, std::move(hook)});
  per_symbol_[symbol.value()].exit.push_back(id.value());
  return id;
}

void InstrumentPort::remove_hook(HookId id) {
  if (!id.valid() || id.value() >= hooks_.size()) return;
  HookRecord& rec = hooks_[id.value()];
  if (rec.removed) return;
  rec.removed = true;
  rec.fn = nullptr;
  auto& lists = per_symbol_[rec.symbol.value()];
  auto& list = rec.is_enter ? lists.enter : lists.exit;
  for (auto it = list.begin(); it != list.end(); ++it) {
    if (*it == id.value()) {
      list.erase(it);
      break;
    }
  }
}

void InstrumentPort::set_hook_enabled(HookId id, bool enabled) {
  DFDBG_CHECK(id.valid() && id.value() < hooks_.size());
  hooks_[id.value()].enabled = enabled;
}

bool InstrumentPort::hook_enabled(HookId id) const {
  DFDBG_CHECK(id.valid() && id.value() < hooks_.size());
  return hooks_[id.value()].enabled && !hooks_[id.value()].removed;
}

bool InstrumentPort::has_any_hook(SymbolId s) const {
  if (!s.valid() || s.value() >= per_symbol_.size()) return false;
  const SymbolHooks& h = per_symbol_[s.value()];
  return !h.enter.empty() || !h.exit.empty();
}

obs::Counter& InstrumentPort::symbol_counter(SymbolId symbol, bool is_enter) {
  auto& cache = is_enter ? enter_counters_ : exit_counters_;
  std::size_t idx = symbol.value();
  if (idx >= cache.size()) cache.resize(idx + 1, nullptr);
  if (cache[idx] == nullptr) {
    cache[idx] = &obs::Registry::global().counter("hook.sym." + symbol_names_[idx] +
                                                  (is_enter ? ".enter" : ".exit"));
  }
  return *cache[idx];
}

void InstrumentPort::fire_list(Kernel& kernel, const std::vector<std::uint32_t>& list,
                               SymbolId symbol, std::span<const ArgValue> args,
                               const ArgValue* ret, bool is_enter) {
  if (list.empty()) return;
  // Per-symbol dispatch count plus the wall-clock cost of running the hooks
  // — the debugger's own overhead, measured from inside (see OBSERVABILITY.md).
  obs::ScopedTimer timer(HookMetrics::get().dispatch_ns);
  if (obs::enabled()) symbol_counter(symbol, is_enter).add();
  // Hooks may add/remove hooks while running (temporary breakpoints), so
  // iterate over a snapshot of the registration list.
  std::vector<std::uint32_t> snapshot = list;
  per_symbol_[symbol.value()].hits += snapshot.size();
  for (std::uint32_t idx : snapshot) {
    HookRecord& rec = hooks_[idx];
    if (rec.removed || !rec.enabled) continue;
    hook_invocations_++;
    HookMetrics::get().invocations.add();
    Frame frame(kernel, symbol, symbol_names_[symbol.value()], args, ret);
    rec.fn(frame);
  }
}

void InstrumentPort::fire_enter(Kernel& kernel, SymbolId symbol, std::span<const ArgValue> args,
                                SymbolId instance) {
  if (!enabled_ || teardown_) return;
  DispatchScope scope(*this, kernel);
  enter_fired_++;
  HookMetrics::get().enter_fired.add();
  if (symbol.valid() && symbol.value() < per_symbol_.size())
    fire_list(kernel, per_symbol_[symbol.value()].enter, symbol, args, nullptr, true);
  if (instance.valid() && instance.value() < per_symbol_.size())
    fire_list(kernel, per_symbol_[instance.value()].enter, instance, args, nullptr, true);
}

void InstrumentPort::fire_exit(Kernel& kernel, SymbolId symbol, std::span<const ArgValue> args,
                               const ArgValue* ret, SymbolId instance) {
  if (!enabled_ || teardown_) return;
  DispatchScope scope(*this, kernel);
  exit_fired_++;
  HookMetrics::get().exit_fired.add();
  if (symbol.valid() && symbol.value() < per_symbol_.size())
    fire_list(kernel, per_symbol_[symbol.value()].exit, symbol, args, ret, false);
  if (instance.valid() && instance.value() < per_symbol_.size())
    fire_list(kernel, per_symbol_[instance.value()].exit, instance, args, ret, false);
}

std::uint64_t InstrumentPort::symbol_hits(SymbolId symbol) const {
  if (!symbol.valid() || symbol.value() >= per_symbol_.size()) return 0;
  return per_symbol_[symbol.value()].hits;
}

void InstrumentPort::reset_stats() {
  enter_fired_ = 0;
  exit_fired_ = 0;
  hook_invocations_ = 0;
  for (auto& s : per_symbol_) s.hits = 0;
}

InstrScope::InstrScope(Kernel& kernel, SymbolId symbol, std::span<const ArgValue> args,
                       SymbolId instance)
    : kernel_(kernel), symbol_(symbol), instance_(instance), args_(args),
      uncaught_(std::uncaught_exceptions()) {
  // Keep the armed decision so enter and exit fire consistently even if the
  // debugger attaches mid-call.
  armed_ = kernel_.instrument().armed(symbol_, instance_);
  if (armed_) kernel_.instrument().fire_enter(kernel_, symbol_, args_, instance_);
}

InstrScope::~InstrScope() noexcept(false) {
  if (!armed_ || kernel_.instrument().teardown()) return;
  // Do not report a "function return" while the frame is being unwound by
  // an exception (e.g. a process being killed at kernel teardown).
  if (std::uncaught_exceptions() > uncaught_) return;
  kernel_.instrument().fire_exit(kernel_, symbol_, args_, has_ret_ ? &ret_ : nullptr, instance_);
}

}  // namespace dfdbg::sim

// The fleet host's session table: N independent debug sessions per process.
//
// Each hosted session is a complete debug world (kernel + app + private
// journal + dbg::Session) built by a dbg::SessionFactory rig, pinned to one
// server shard. The single-threaded deterministic kernels never share state:
// every verb against a session executes on its owning shard's poll thread,
// under the session's thread-journal override.
//
// Thread model: the table itself (create/destroy/lookup/list) is mutex-
// guarded and callable from any shard. The *worlds* are not — a session's
// kernel, dbg::Session and interpreter may only be touched by the owning
// shard, and create/destroy must run there too (ucontext fibers are created,
// run and unwound on one thread). Cross-shard observability (session_list)
// reads the per-session atomic stat mirrors, refreshed by the owning shard
// after each verb.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "dfdbg/common/status.hpp"
#include "dfdbg/dbgcli/cli.hpp"
#include "dfdbg/debug/session_host.hpp"

namespace dfdbg::server {

/// One hosted debug session. Identity fields (id/name/rig/shard/quota) are
/// immutable after creation; the world and interpreter belong to the owning
/// shard; the `stat_*` mirrors are the only cross-shard-readable state.
struct HostedSession {
  std::uint64_t id = 0;
  std::string name;
  std::string rig;
  int shard = 0;
  dbg::SessionQuota quota;
  bool is_default = false;  ///< the v1 alias target; never evicted/destroyed

  /// Null for an externally-owned default session (legacy single-session
  /// constructor): the server then serves it but does not own its lifetime.
  std::unique_ptr<dbg::SessionWorld> world;
  dbg::Session* session = nullptr;
  obs::Journal* journal = nullptr;  ///< world's journal, or the process ring
  std::unique_ptr<cli::Interpreter> interp;  ///< lazy; owning shard only

  /// Attachment count. Atomic because a client that migrated away can detach
  /// from its previous session cross-shard; all other use is owning-shard.
  std::atomic<int> attached_clients{0};

  // Cross-shard stat mirrors (relaxed; refreshed by the owning shard).
  std::atomic<std::uint64_t> stat_requests{0};
  std::atomic<std::uint64_t> stat_journal_events{0};
  std::atomic<std::uint64_t> stat_last_token{0};
  std::atomic<std::int64_t> stat_clients{0};
  std::atomic<std::uint64_t> last_used_ms{0};

  /// Refresh the mirrors from the world (owning shard only).
  void sync_stats() {
    if (journal != nullptr) {
      stat_journal_events.store(journal->cursor(), std::memory_order_relaxed);
      stat_last_token.store(journal->last_token(), std::memory_order_relaxed);
    }
    stat_clients.store(attached_clients.load(std::memory_order_relaxed),
                       std::memory_order_relaxed);
  }

  /// Token-budget quota check (owning shard only). 0 = unlimited.
  [[nodiscard]] bool over_token_budget() const {
    return quota.token_budget != 0 && journal != nullptr &&
           journal->last_token() >= quota.token_budget;
  }
};

/// Mutex-guarded session table. Entries are heap-stable: a HostedSession*
/// returned by lookup stays valid until destroy() — which the owning shard
/// only calls once no client of its poll loop references the session.
class SessionManager {
 public:
  SessionManager(dbg::SessionFactory* factory, std::size_t max_sessions);
  ~SessionManager();

  SessionManager(const SessionManager&) = delete;
  SessionManager& operator=(const SessionManager&) = delete;

  void set_factory(dbg::SessionFactory* factory) { factory_ = factory; }
  [[nodiscard]] dbg::SessionFactory* factory() const { return factory_; }

  /// Registers an externally-owned session as the default (id 1, shard 0).
  HostedSession* register_external(dbg::Session& session, const std::string& name,
                                   const dbg::SessionQuota& quota);

  /// Builds a world from `spec` and registers it on `shard`. MUST run on the
  /// owning shard's thread. `now_ms` seeds the idle clock.
  Result<HostedSession*> create(const dbg::SessionSpec& spec, int shard,
                                std::uint64_t now_ms);

  /// Tears the session down. MUST run on the owning shard's thread, after
  /// the caller has detached every client referencing it. Refuses the
  /// default session.
  Status destroy(std::uint64_t id, bool evicted = false);

  /// Destroys every owned session pinned to `shard` (shard-loop exit).
  void destroy_all_on_shard(int shard);

  /// Lookup by id or name; nullptr if absent. The pointer is only safe to
  /// *use* (beyond identity/stat fields) on the session's owning shard.
  HostedSession* find(std::uint64_t id);
  HostedSession* find(const std::string& name);

  /// Sessions on `shard` eligible for idle eviction at `now_ms` (owned,
  /// non-default, idle_timeout_ms > 0, no attached clients, idle long
  /// enough). Caller (the owning shard) re-checks bindings then destroys.
  std::vector<std::uint64_t> idle_candidates(int shard, std::uint64_t now_ms);

  /// True if any session on `shard` has an idle timeout armed (the shard
  /// loop then polls with a bounded timeout instead of blocking forever).
  bool has_armed_timeout(int shard);

  /// Stable snapshot of identity + stat mirrors for session_list.
  struct ListEntry {
    std::uint64_t id;
    std::string name;
    std::string rig;
    int shard;
    bool is_default;
    bool owned;
    dbg::SessionQuota quota;
    std::uint64_t requests;
    std::uint64_t journal_events;
    std::uint64_t last_token;
    std::int64_t clients;
    std::uint64_t last_used_ms;
  };
  std::vector<ListEntry> list();

  [[nodiscard]] std::size_t count();
  [[nodiscard]] std::size_t max_sessions() const { return max_sessions_; }

 private:
  dbg::SessionFactory* factory_;
  std::size_t max_sessions_;
  std::mutex mu_;
  std::vector<std::unique_ptr<HostedSession>> sessions_;
  std::uint64_t next_id_ = 1;
};

}  // namespace dfdbg::server

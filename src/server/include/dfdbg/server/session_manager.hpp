// The fleet host's session table: N independent debug sessions per process.
//
// Each hosted session is a complete debug world (kernel + app + private
// journal + dbg::Session) built by a dbg::SessionFactory rig, pinned to one
// server shard. The single-threaded deterministic kernels never share state:
// every verb against a session executes on its owning shard's poll thread,
// under the session's thread-journal override.
//
// Thread model: the table itself (create/destroy/lookup/list) is mutex-
// guarded and callable from any shard, and lookups return shared_ptr pins,
// so a session destroyed concurrently by its owning shard can never dangle
// under a cross-shard reader. The *worlds* are not shared — a session's
// kernel, dbg::Session and interpreter may only be touched by the owning
// shard, and create/destroy must run there too (ucontext fibers are created,
// run and unwound on one thread); a cross-shard holder of a pin may read
// only the immutable identity fields and the atomic stat mirrors, refreshed
// by the owning shard after each verb.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "dfdbg/common/status.hpp"
#include "dfdbg/dbgcli/cli.hpp"
#include "dfdbg/debug/session_host.hpp"

namespace dfdbg::server {

/// One hosted debug session. Identity fields (id/name/rig/shard/quota/
/// backend/workers) are immutable after creation and readable from any
/// shard; the world and interpreter belong to the owning shard; the
/// `stat_*` mirrors are the only other cross-shard-readable state.
struct HostedSession {
  std::uint64_t id = 0;
  std::string name;
  std::string rig;
  int shard = 0;
  dbg::SessionQuota quota;
  bool is_default = false;  ///< the v1 alias target; never evicted/destroyed
  /// Kernel identity, snapshotted at registration (both are fixed at kernel
  /// construction) so any shard can describe the session — capabilities,
  /// session briefs — without touching the world.
  std::string backend;
  int workers = 0;

  /// Null for an externally-owned default session (legacy single-session
  /// constructor): the server then serves it but does not own its lifetime.
  /// Reset (with `session`/`journal`/`interp`) by destroy(), on the owning
  /// shard, before the struct itself is released.
  std::unique_ptr<dbg::SessionWorld> world;
  dbg::Session* session = nullptr;
  obs::Journal* journal = nullptr;  ///< world's journal, or the process ring
  std::unique_ptr<cli::Interpreter> interp;  ///< lazy; owning shard only

  /// Attachment count. Atomic because a client that migrated away can detach
  /// from its previous session cross-shard; all other use is owning-shard.
  std::atomic<int> attached_clients{0};

  // Cross-shard stat mirrors (relaxed; refreshed by the owning shard).
  std::atomic<std::uint64_t> stat_requests{0};
  std::atomic<std::uint64_t> stat_journal_events{0};
  std::atomic<std::uint64_t> stat_last_token{0};
  std::atomic<std::int64_t> stat_clients{0};
  std::atomic<std::uint64_t> last_used_ms{0};

  /// Refresh the mirrors from the world. Owning shard ONLY: the journal
  /// cursor reads race with recording otherwise. Cross-shard detachers must
  /// limit themselves to sync_client_stat().
  void sync_stats() {
    if (journal != nullptr) {
      stat_journal_events.store(journal->cursor(), std::memory_order_relaxed);
      stat_last_token.store(journal->last_token(), std::memory_order_relaxed);
    }
    sync_client_stat();
  }

  /// Refresh only the client-count mirror. Atomic-to-atomic, so callable
  /// from any shard (the path a migrated-away client's detach takes).
  void sync_client_stat() {
    stat_clients.store(attached_clients.load(std::memory_order_relaxed),
                       std::memory_order_relaxed);
  }

  /// Token-budget quota check (owning shard only). 0 = unlimited.
  [[nodiscard]] bool over_token_budget() const {
    return quota.token_budget != 0 && journal != nullptr &&
           journal->last_token() >= quota.token_budget;
  }
};

/// Mutex-guarded session table. Lookups return shared_ptr pins: destroy()
/// removes the entry and unwinds the *world* on the owning shard, but the
/// HostedSession struct stays alive while any pin is held, so a concurrent
/// cross-shard reader of its identity fields and atomic mirrors never
/// dereferences freed memory.
class SessionManager {
 public:
  SessionManager(dbg::SessionFactory* factory, std::size_t max_sessions);
  ~SessionManager();

  SessionManager(const SessionManager&) = delete;
  SessionManager& operator=(const SessionManager&) = delete;

  void set_factory(dbg::SessionFactory* factory) { factory_ = factory; }
  [[nodiscard]] dbg::SessionFactory* factory() const { return factory_; }

  /// Registers an externally-owned session as the default (id 1, shard 0).
  std::shared_ptr<HostedSession> register_external(dbg::Session& session,
                                                   const std::string& name,
                                                   const dbg::SessionQuota& quota);

  /// Builds a world from `spec` and registers it on `shard`. MUST run on the
  /// owning shard's thread. `now_ms` seeds the idle clock. The capacity and
  /// name checks are re-validated after the (unlocked) factory build, so two
  /// racing creates cannot exceed max_sessions or both claim one name.
  Result<std::shared_ptr<HostedSession>> create(const dbg::SessionSpec& spec, int shard,
                                                std::uint64_t now_ms);

  /// Removes the session from the table and tears its world down. MUST run
  /// on the owning shard's thread, after the caller has detached every
  /// client of that shard referencing it. Refuses the default session.
  Status destroy(std::uint64_t id, bool evicted = false);

  /// Destroys every owned session pinned to `shard` (shard-loop exit).
  void destroy_all_on_shard(int shard);

  /// Lookup by id or name; nullptr if absent. The pin keeps the struct
  /// alive, but the *world* behind it is only safe to use on the session's
  /// owning shard (and only while the session is still in the table, which
  /// on the owning shard cannot change mid-verb).
  std::shared_ptr<HostedSession> find(std::uint64_t id);
  std::shared_ptr<HostedSession> find(const std::string& name);

  /// Sessions on `shard` eligible for idle eviction at `now_ms` (owned,
  /// non-default, idle_timeout_ms > 0, no attached clients, idle long
  /// enough). Caller (the owning shard) re-checks bindings then destroys.
  std::vector<std::uint64_t> idle_candidates(int shard, std::uint64_t now_ms);

  /// True if any session on `shard` has an idle timeout armed (the shard
  /// loop then polls with a bounded timeout instead of blocking forever).
  bool has_armed_timeout(int shard);

  /// Stable snapshot of identity + stat mirrors for session_list.
  struct ListEntry {
    std::uint64_t id;
    std::string name;
    std::string rig;
    int shard;
    bool is_default;
    bool owned;
    dbg::SessionQuota quota;
    std::uint64_t requests;
    std::uint64_t journal_events;
    std::uint64_t last_token;
    std::int64_t clients;
    std::uint64_t last_used_ms;
  };
  std::vector<ListEntry> list();

  [[nodiscard]] std::size_t count();
  [[nodiscard]] std::size_t max_sessions() const { return max_sessions_; }

 private:
  dbg::SessionFactory* factory_;
  std::size_t max_sessions_;
  std::mutex mu_;
  std::vector<std::shared_ptr<HostedSession>> sessions_;
  std::uint64_t next_id_ = 1;
};

}  // namespace dfdbg::server

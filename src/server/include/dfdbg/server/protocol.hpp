// Wire protocol of the debug server: JSON-RPC 2.0 objects, one per line
// (newline-delimited JSON), over a TCP or Unix-domain stream socket.
//
//   --> {"jsonrpc":"2.0","id":1,"method":"info_links"}
//   <-- {"jsonrpc":"2.0","id":1,"result":{"links":[...]}}
//   --> {"jsonrpc":"2.0","id":2,"method":"whence","params":{"iface":"x::y"}}
//   <-- {"jsonrpc":"2.0","id":2,"error":{"code":-32001,"message":"...",
//        "data":{"err":"not-found"}}}
//
// Requests and responses never contain a raw newline (the JSON encoder
// escapes them), so '\n' is an unambiguous frame delimiter. See
// docs/PROTOCOL.md for the verb catalogue.
#pragma once

#include <string>

#include "dfdbg/common/json.hpp"
#include "dfdbg/common/status.hpp"

namespace dfdbg::server {

// JSON-RPC 2.0 pre-defined error codes.
inline constexpr int kErrParse = -32700;
inline constexpr int kErrInvalidRequest = -32600;
inline constexpr int kErrMethodNotFound = -32601;
inline constexpr int kErrInvalidParams = -32602;
inline constexpr int kErrInternal = -32603;
// Implementation-defined range (-32000..-32099): dfdbg Status codes that
// have no JSON-RPC equivalent.
inline constexpr int kErrNotFound = -32001;
inline constexpr int kErrFailedPrecondition = -32002;
inline constexpr int kErrOutOfRange = -32003;
inline constexpr int kErrIo = -32004;

/// Maps a Status error code onto the JSON-RPC error-code space.
[[nodiscard]] int jsonrpc_code(ErrCode code);

/// Serializes a success response: {"jsonrpc":"2.0","id":<id>,"result":<r>}.
/// `id_json` and `result_json` are pre-serialized JSON fragments.
[[nodiscard]] std::string make_result_frame(const std::string& id_json,
                                            const std::string& result_json);

/// Serializes an error response; `data.err` carries the stable dfdbg error
/// code string (to_string(ErrCode)) so clients need not parse messages.
[[nodiscard]] std::string make_error_frame(const std::string& id_json, int code,
                                           const std::string& message, ErrCode err);

/// Same, straight from a failed Status.
[[nodiscard]] std::string make_error_frame(const std::string& id_json, const Status& s);

/// Serializes a server-push notification — a request object with no `id`,
/// which per JSON-RPC 2.0 expects no response:
///   {"jsonrpc":"2.0","method":<m>,"params":<p>}
/// The subscription streams (journal.delta, flow.snapshot, stats.delta,
/// run.event) are all delivered in this framing, interleaved with ordinary
/// responses on the same connection; clients route on the presence of `id`.
[[nodiscard]] std::string make_notification_frame(const std::string& method,
                                                  const std::string& params_json);

}  // namespace dfdbg::server

// The multi-client debug server: exposes a Session's command surface over
// newline-delimited JSON-RPC on a TCP or Unix-domain socket (protocol.hpp).
//
// Concurrency model: ONE thread runs serve() — a poll(2) event loop that
// accepts clients, reassembles frames and executes verbs synchronously
// against the Session. The simulation kernel is cooperative and
// deterministic (fibers or blocked threads), so every verb — including
// `run`, which resumes the simulation — executes on the serving thread and
// clients observe a single consistent interleaving; no locks are needed and
// the determinism guarantees of the kernel are preserved. Multiple clients
// are multiplexed, not parallelized: requests are handled in arrival order.
//
// serve() blocks until the `shutdown` verb arrives or request_shutdown() is
// called from another thread (a self-pipe wakes the poll loop).
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "dfdbg/common/status.hpp"
#include "dfdbg/dbgcli/cli.hpp"
#include "dfdbg/debug/session.hpp"

namespace dfdbg::server {

struct ServerConfig {
  /// A request line longer than this is rejected (-32600) and the client
  /// disconnected: a stream that never produces '\n' would otherwise grow
  /// the reassembly buffer without bound.
  std::size_t max_frame_bytes = 1 << 20;
  /// Accepted connections beyond this are refused (accept+close).
  std::size_t max_clients = 32;
  /// Gate for the `exec` verb (raw CLI line execution). Disable to restrict
  /// remote clients to the structured verb set.
  bool allow_exec = true;
};

class DebugServer {
 public:
  explicit DebugServer(dbg::Session& session, ServerConfig config = {});
  ~DebugServer();

  DebugServer(const DebugServer&) = delete;
  DebugServer& operator=(const DebugServer&) = delete;

  /// Binds and listens on `host:port` (port 0 = ephemeral). Returns the
  /// bound port.
  Result<int> listen_tcp(const std::string& host = "127.0.0.1", int port = 0);
  /// Binds and listens on a Unix-domain socket path (unlinked first).
  Status listen_unix(const std::string& path);

  /// Runs the event loop on the calling thread until shutdown. Requires a
  /// prior successful listen_tcp()/listen_unix().
  Status serve();

  /// Thread-safe: wakes the poll loop and makes serve() return.
  void request_shutdown();

  /// Bound TCP port (0 before listen_tcp()).
  [[nodiscard]] int port() const { return port_; }

  /// Decodes and executes ONE request frame (no trailing newline), returns
  /// the response frame. This is the whole protocol minus the socket —
  /// public so tests and benchmarks can drive the verb table in-process.
  std::string handle_frame(std::string_view frame);

  [[nodiscard]] dbg::Session& session() { return session_; }
  [[nodiscard]] const ServerConfig& config() const { return config_; }

 private:
  struct Client {
    int fd = -1;
    std::string in;   ///< bytes received, not yet framed
    std::string out;  ///< responses not yet written
    bool close_after_flush = false;
  };

  std::string dispatch(const std::string& method, const JsonValue& params,
                       const std::string& id_json);
  void accept_clients();
  /// Reads from client `i`; frames and executes requests. Returns false if
  /// the client disconnected (and was closed).
  bool service_input(std::size_t i);
  /// Flushes pending output of client `i`. Returns false on write error.
  bool flush_output(std::size_t i);
  void close_client(std::size_t i);
  void enqueue(Client& c, std::string frame);

  dbg::Session& session_;
  ServerConfig config_;
  /// Executes `exec` verbs; its console buffers each command's transcript.
  std::unique_ptr<cli::Interpreter> interp_;

  int listen_fd_ = -1;
  int port_ = 0;
  std::string unix_path_;
  int wake_pipe_[2] = {-1, -1};  ///< self-pipe: request_shutdown() -> poll()
  bool shutdown_ = false;
  std::vector<Client> clients_;
};

}  // namespace dfdbg::server

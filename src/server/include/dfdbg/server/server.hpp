// The multi-session debug fleet host: exposes N debug sessions' command
// surfaces over newline-delimited JSON-RPC on a TCP or Unix-domain socket
// (protocol.hpp), multiplexed across per-core poll loops.
//
// Concurrency model: the server runs `config.shards` poll loops — shard 0 on
// the serve() caller's thread (it also owns the listening socket), shards
// 1..N-1 on spawned threads. Every session is pinned to exactly one shard
// and every verb against it executes on that shard's thread, so the
// cooperative deterministic kernels (fibers or blocked threads) never share
// state and no locks guard the debug worlds themselves; only the session
// table and the client-handoff queues are mutex-guarded. Clients are
// multiplexed, not parallelized, *within* a shard: requests are handled in
// arrival order and each `run` verb parks its whole shard — but shards
// progress independently, which is what makes N sessions on K cores scale.
//
// Protocol v2 (see docs/PROTOCOL.md): requests may carry a `session` param
// (id or name); clients may `session_attach` to make it implicit. Clients
// with neither are served by the *default session* — the v1 alias that keeps
// single-session clients byte-compatible. A client follows its session: a
// `session_create`/`session_attach`/`session_destroy` naming a session on
// another shard migrates the connection to that shard (buffered input and
// all); other verbs refuse cross-shard targets.
//
// Subscriptions are session-scoped: each stream binding (journal deltas,
// flow/stats snapshots, run events, shard rounds) is bound at subscribe time
// to the resolved session and every notification's params carry a
// `"session":<id>` tag. Backpressure is unchanged from the single-session
// server: bounded outbound buffers, snapshot coalescing, journal gap
// reporting (server.sub.* counters).
//
// serve() blocks until the `shutdown` verb arrives or request_shutdown() is
// called from another thread (a self-pipe per shard wakes the poll loops).
// Each shard destroys its own sessions on exit — fiber stacks are unwound on
// the thread that created them.
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "dfdbg/common/status.hpp"
#include "dfdbg/dbgcli/cli.hpp"
#include "dfdbg/debug/session.hpp"
#include "dfdbg/debug/session_host.hpp"
#include "dfdbg/obs/journal.hpp"
#include "dfdbg/obs/metrics.hpp"
#include "dfdbg/server/session_manager.hpp"

namespace dfdbg::server {

struct ServerConfig {
  /// A request line longer than this is rejected (-32600) and the client
  /// disconnected: a stream that never produces '\n' would otherwise grow
  /// the reassembly buffer without bound.
  std::size_t max_frame_bytes = 1 << 20;
  /// Accepted connections beyond this are refused (accept+close). Counted
  /// across all shards.
  std::size_t max_clients = 32;
  /// Gate for the `exec` verb (raw CLI line execution). Disable to restrict
  /// remote clients to the structured verb set.
  bool allow_exec = true;
  /// Slow-consumer bound: once a client's unsent output exceeds this, the
  /// server stops producing for it (snapshots coalesce, journal reads
  /// pause) until the socket drains. Responses to requests are exempt —
  /// only push streams are throttled.
  std::size_t max_outbound_bytes = 1 << 18;
  /// Cadence of the periodic streams (flow.snapshot, stats.delta), in
  /// milliseconds. Also the poll timeout while periodic subscribers exist.
  int tick_ms = 50;
  /// Max journal events per journal.delta notification. Smaller batches
  /// interleave finer with snapshots; larger ones cost less framing.
  std::size_t journal_batch = 64;

  // --- fleet-host knobs -----------------------------------------------------

  /// Poll loops (>= 1). A session is pinned at create time to the shard the
  /// request names (`shard` param) or, absent that, the shard the creating
  /// client is on; shard 0 runs on the serve() caller.
  int shards = 1;
  /// Hosted-session ceiling (the default session counts).
  std::size_t max_sessions = 4096;
  /// Gate for the `session_create` verb (a factory must also be set).
  bool allow_session_create = true;
  /// Quota applied when session_create carries none.
  dbg::SessionQuota default_quota;
  /// Ceiling on the client-supplied `quota.journal_capacity` (events):
  /// requests above it are clamped, so one remote session_create cannot
  /// make the host allocate an arbitrarily large private ring.
  std::size_t max_journal_capacity = obs::Journal::kDefaultCapacity;
};

class DebugServer {
 public:
  /// Single-session (v1-compatible) host: `session` becomes the default
  /// session, served from shard 0, its journal the process-wide ring.
  /// Call set_factory() to additionally enable session_create.
  explicit DebugServer(dbg::Session& session, ServerConfig config = {});

  /// Fleet-only host: no default session. Clients must session_create or
  /// session_attach before using session-scoped verbs.
  explicit DebugServer(dbg::SessionFactory& factory, ServerConfig config = {});

  ~DebugServer();

  DebugServer(const DebugServer&) = delete;
  DebugServer& operator=(const DebugServer&) = delete;

  /// Enables session_create on a single-session server (the factory must
  /// outlive the server).
  void set_factory(dbg::SessionFactory* factory) { manager_.set_factory(factory); }

  /// Binds and listens on `host:port` (port 0 = ephemeral). Returns the
  /// bound port.
  Result<int> listen_tcp(const std::string& host = "127.0.0.1", int port = 0);
  /// Binds and listens on a Unix-domain socket path (unlinked first).
  Status listen_unix(const std::string& path);

  /// Runs shard 0's event loop on the calling thread (spawning shards
  /// 1..N-1) until shutdown. Requires a prior successful listen_*().
  Status serve();

  /// Thread-safe: wakes every poll loop and makes serve() return.
  void request_shutdown();

  /// Bound TCP port (0 before listen_tcp()).
  [[nodiscard]] int port() const { return port_; }

  /// Decodes and executes ONE request frame (no trailing newline), returns
  /// the response frame. This is the whole protocol minus the socket —
  /// public so tests and benchmarks can drive the verb table in-process.
  /// Runs as shard 0; sessions it creates are pinned there.
  std::string handle_frame(std::string_view frame);

  /// The default session (legacy accessor; only valid on a server built
  /// with the single-session constructor).
  [[nodiscard]] dbg::Session& session() { return *default_->session; }
  [[nodiscard]] const ServerConfig& config() const { return config_; }
  [[nodiscard]] SessionManager& sessions() { return manager_; }

  /// Runs one idle-eviction sweep for shard 0 at a synthetic "now" offset
  /// (milliseconds from server start). Test hook: lets eviction be driven
  /// without a poll loop or wall-clock waits.
  std::size_t evict_idle_for_test(std::uint64_t now_ms);

 private:
  struct Client {
    int fd = -1;
    std::string in;   ///< bytes received, not yet framed
    std::string out;  ///< responses not yet written
    bool close_after_flush = false;

    /// Session this client is attached to (0 = none: verbs fall back to the
    /// default session).
    std::uint64_t attached = 0;

    /// Set by dispatch when a verb must run on another shard: the client —
    /// fd, buffers, bindings — moves to that shard's intake, carrying the
    /// triggering frame in `pending` for re-execution there.
    int migrate_to = -1;
    std::string pending;

    // --- subscription state: the session id each stream is bound to
    // (0 = not subscribed) -----------------------------------------------
    std::uint64_t sub_journal = 0;
    std::uint64_t sub_flow = 0;
    std::uint64_t sub_stats = 0;
    std::uint64_t sub_run_events = 0;
    std::uint64_t sub_shard_rounds = 0;
    /// Resume point into the bound session's journal ring (absolute seq).
    std::uint64_t journal_cursor = 0;
    /// Resume point into the barrier-round record ring (round ids are
    /// monotonic, so "rounds after N" is a stable cursor even as the ring
    /// evicts old records).
    std::uint64_t shard_cursor = 0;
    /// Reader-side registry snapshot backing `stats.delta`.
    obs::StatsSnapshot stats_prev;
    /// Last-seen per-link (pushes, pops) backing the d_pushes/d_pops rates
    /// in `flow.snapshot`.
    std::unordered_map<std::string, std::pair<std::uint64_t, std::uint64_t>> flow_prev;

    [[nodiscard]] bool subscribed() const {
      return sub_journal != 0 || sub_flow != 0 || sub_stats != 0 || sub_run_events != 0 ||
             sub_shard_rounds != 0;
    }
    /// Periodic streams force a poll timeout; event streams do not.
    [[nodiscard]] bool wants_tick() const { return sub_flow != 0 || sub_stats != 0; }
    /// True if any binding or the attachment references session `sid`.
    [[nodiscard]] bool references(std::uint64_t sid) const {
      return attached == sid || sub_journal == sid || sub_flow == sid || sub_stats == sid ||
             sub_run_events == sid || sub_shard_rounds == sid;
    }
    /// Clears the attachment and every binding referencing session `sid`.
    void drop_session(std::uint64_t sid) {
      if (attached == sid) attached = 0;
      if (sub_journal == sid) sub_journal = 0;
      if (sub_flow == sid) sub_flow = 0;
      if (sub_stats == sid) sub_stats = 0;
      if (sub_run_events == sid) sub_run_events = 0;
      if (sub_shard_rounds == sid) sub_shard_rounds = 0;
    }
  };

  /// One poll loop. Shard 0 additionally owns accept().
  struct Shard {
    int index = 0;
    int wake_pipe[2] = {-1, -1};
    std::vector<std::unique_ptr<Client>> clients;
    std::chrono::steady_clock::time_point last_tick{};
    std::mutex mu;  ///< guards intake
    std::vector<std::unique_ptr<Client>> intake;  ///< migrated clients, pending adoption
    std::thread thread;  ///< shards 1..N-1 only
  };

  void init(ServerConfig config);

  /// handle_frame with the requesting connection attached (nullptr for the
  /// in-process entry point: subscribe verbs then report an error, since
  /// there is no socket to push to). `replay` suppresses the request
  /// counters when re-executing a migrated frame on its new shard.
  std::string handle_frame_for(std::string_view frame, Client* client, int shard,
                               bool replay = false);
  std::string dispatch(const std::string& method, const JsonValue& params,
                       const std::string& id_json, Client* client, int shard);

  /// Resolves the target session of a request: explicit `session` param
  /// (id or name) > client attachment > default session. When
  /// `pin_to_shard`, a session owned by another shard is an error (the
  /// migrating verbs pass false and handle the move themselves). The
  /// returned pin must be held for as long as the session is used.
  Result<std::shared_ptr<HostedSession>> resolve(const JsonValue& params, Client* client,
                                                 int shard, bool pin_to_shard = true);

  Status run_shard(int shard);
  void adopt_intake(int shard);
  void accept_clients();
  /// Reads from client `i` of `shard`; frames and executes requests.
  /// Returns false if the client disconnected or migrated away.
  bool service_input(int shard, std::size_t i);
  /// Executes `c.pending` (a migrated frame) then every complete frame in
  /// `c.in`. Returns false if the client migrated (again) mid-buffer.
  bool process_buffered(int shard, Client& c);
  /// Flushes pending output of client `i`. Returns false on write error.
  bool flush_output(int shard, std::size_t i);
  void close_client(int shard, std::size_t i);
  void enqueue(Client& c, std::string frame);
  /// Hands `c` (owned) to `target`'s intake and wakes it.
  void migrate_client(std::unique_ptr<Client> c, int target);
  std::size_t evict_idle(int shard, std::uint64_t now_ms);
  [[nodiscard]] std::uint64_t now_ms() const;

  // --- push-stream machinery ------------------------------------------------

  /// Resolves journal link ids to application link names for `hs`.
  [[nodiscard]] static obs::Journal::LinkNamer link_namer(HostedSession& hs);
  /// Enqueues one notification frame onto `c`, tagging the params object
  /// with the originating session id (counts server.sub.*).
  void push_notification(Client& c, const std::string& method, std::string params_json,
                         std::uint64_t sid);
  /// Produces everything `c` is owed — journal deltas up to the outbound
  /// bound, plus flow/stats snapshots when `tick_due` — without flushing.
  /// Bindings to vanished sessions are silently cleared.
  void pump_client(Client& c, int shard, bool tick_due);
  /// Per-session stop observer: fans a stop event out to the owning shard's
  /// `run_events` subscribers *while the triggering request is still
  /// executing*, with a best-effort non-blocking send so the event precedes
  /// the response on the wire. Runs on the owning shard's thread.
  void on_stop_event(HostedSession& hs, const dbg::StopEvent& ev);
  /// Installs the stop observer on a newly created hosted session.
  void install_stop_observer(HostedSession& hs);

  ServerConfig config_;
  SessionManager manager_;
  std::shared_ptr<HostedSession> default_;  ///< null on a fleet-only server

  int listen_fd_ = -1;
  int port_ = 0;
  std::string unix_path_;
  std::atomic<bool> shutdown_{false};
  std::atomic<std::size_t> client_count_{0};
  std::vector<std::unique_ptr<Shard>> shards_;
  std::chrono::steady_clock::time_point start_time_{};
};

}  // namespace dfdbg::server

// The multi-client debug server: exposes a Session's command surface over
// newline-delimited JSON-RPC on a TCP or Unix-domain socket (protocol.hpp).
//
// Concurrency model: ONE thread runs serve() — a poll(2) event loop that
// accepts clients, reassembles frames and executes verbs synchronously
// against the Session. The simulation kernel is cooperative and
// deterministic (fibers or blocked threads), so every verb — including
// `run`, which resumes the simulation — executes on the serving thread and
// clients observe a single consistent interleaving; no locks are needed and
// the determinism guarantees of the kernel are preserved. Multiple clients
// are multiplexed, not parallelized: requests are handled in arrival order.
//
// serve() blocks until the `shutdown` verb arrives or request_shutdown() is
// called from another thread (a self-pipe wakes the poll loop).
//
// Subscriptions (the streaming half of the protocol): a client may
// `subscribe` to named streams — `journal` (provenance-event deltas with a
// resumable cursor), `info_flow` (periodic link-occupancy snapshots),
// `stats` (changed-keys registry deltas), `run_events` (stop events as they
// happen), `shard_rounds` (parallel-backend barrier-round attribution
// records with a resumable round cursor) — and the server pushes JSON-RPC
// *notifications* (frames without an `id`) interleaved with ordinary
// responses on the same connection.
// Backpressure is explicit: each client's outbound buffer is bounded by
// `max_outbound_bytes`; while a client is over the bound, periodic
// snapshots are coalesced (skipped and counted in `server.sub.coalesced`)
// and journal reads pause — if the ring then laps the paused cursor the
// lost span is reported in-band as a `gap` and counted in
// `server.sub.dropped`. A slow subscriber therefore costs bounded memory
// and never blocks the loop or other clients.
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "dfdbg/common/status.hpp"
#include "dfdbg/dbgcli/cli.hpp"
#include "dfdbg/debug/session.hpp"
#include "dfdbg/obs/journal.hpp"
#include "dfdbg/obs/metrics.hpp"

namespace dfdbg::server {

struct ServerConfig {
  /// A request line longer than this is rejected (-32600) and the client
  /// disconnected: a stream that never produces '\n' would otherwise grow
  /// the reassembly buffer without bound.
  std::size_t max_frame_bytes = 1 << 20;
  /// Accepted connections beyond this are refused (accept+close).
  std::size_t max_clients = 32;
  /// Gate for the `exec` verb (raw CLI line execution). Disable to restrict
  /// remote clients to the structured verb set.
  bool allow_exec = true;
  /// Slow-consumer bound: once a client's unsent output exceeds this, the
  /// server stops producing for it (snapshots coalesce, journal reads
  /// pause) until the socket drains. Responses to requests are exempt —
  /// only push streams are throttled.
  std::size_t max_outbound_bytes = 1 << 18;
  /// Cadence of the periodic streams (flow.snapshot, stats.delta), in
  /// milliseconds. Also the poll timeout while periodic subscribers exist.
  int tick_ms = 50;
  /// Max journal events per journal.delta notification. Smaller batches
  /// interleave finer with snapshots; larger ones cost less framing.
  std::size_t journal_batch = 64;
};

class DebugServer {
 public:
  explicit DebugServer(dbg::Session& session, ServerConfig config = {});
  ~DebugServer();

  DebugServer(const DebugServer&) = delete;
  DebugServer& operator=(const DebugServer&) = delete;

  /// Binds and listens on `host:port` (port 0 = ephemeral). Returns the
  /// bound port.
  Result<int> listen_tcp(const std::string& host = "127.0.0.1", int port = 0);
  /// Binds and listens on a Unix-domain socket path (unlinked first).
  Status listen_unix(const std::string& path);

  /// Runs the event loop on the calling thread until shutdown. Requires a
  /// prior successful listen_tcp()/listen_unix().
  Status serve();

  /// Thread-safe: wakes the poll loop and makes serve() return.
  void request_shutdown();

  /// Bound TCP port (0 before listen_tcp()).
  [[nodiscard]] int port() const { return port_; }

  /// Decodes and executes ONE request frame (no trailing newline), returns
  /// the response frame. This is the whole protocol minus the socket —
  /// public so tests and benchmarks can drive the verb table in-process.
  std::string handle_frame(std::string_view frame);

  [[nodiscard]] dbg::Session& session() { return session_; }
  [[nodiscard]] const ServerConfig& config() const { return config_; }

 private:
  struct Client {
    int fd = -1;
    std::string in;   ///< bytes received, not yet framed
    std::string out;  ///< responses not yet written
    bool close_after_flush = false;

    // --- subscription state (all default-off) -------------------------------
    bool sub_journal = false;
    bool sub_flow = false;
    bool sub_stats = false;
    bool sub_run_events = false;
    bool sub_shard_rounds = false;
    /// Resume point into the journal ring (absolute sequence).
    std::uint64_t journal_cursor = 0;
    /// Resume point into the barrier-round record ring (round ids are
    /// monotonic, so "rounds after N" is a stable cursor even as the ring
    /// evicts old records).
    std::uint64_t shard_cursor = 0;
    /// Reader-side registry snapshot backing `stats.delta`.
    obs::StatsSnapshot stats_prev;
    /// Last-seen per-link (pushes, pops) backing the d_pushes/d_pops rates
    /// in `flow.snapshot`.
    std::unordered_map<std::string, std::pair<std::uint64_t, std::uint64_t>> flow_prev;

    [[nodiscard]] bool subscribed() const {
      return sub_journal || sub_flow || sub_stats || sub_run_events || sub_shard_rounds;
    }
    /// Periodic streams force a poll timeout; event streams do not.
    [[nodiscard]] bool wants_tick() const { return sub_flow || sub_stats; }
  };

  /// handle_frame with the requesting connection attached (nullptr for the
  /// in-process entry point: subscribe verbs then report an error, since
  /// there is no socket to push to).
  std::string handle_frame_for(std::string_view frame, Client* client);
  std::string dispatch(const std::string& method, const JsonValue& params,
                       const std::string& id_json, Client* client);
  void accept_clients();
  /// Reads from client `i`; frames and executes requests. Returns false if
  /// the client disconnected (and was closed).
  bool service_input(std::size_t i);
  /// Flushes pending output of client `i`. Returns false on write error.
  bool flush_output(std::size_t i);
  void close_client(std::size_t i);
  void enqueue(Client& c, std::string frame);

  // --- push-stream machinery ------------------------------------------------

  /// Resolves journal link ids to application link names.
  [[nodiscard]] obs::Journal::LinkNamer link_namer();
  /// Enqueues one notification frame onto `c` (counts server.sub.*).
  void push_notification(Client& c, const std::string& method, std::string params_json);
  /// Produces everything `c` is owed — journal deltas up to the outbound
  /// bound, plus flow/stats snapshots when `tick_due` — without flushing.
  void pump_client(Client& c, bool tick_due);
  /// Session stop observer: fans a stop event out to `run_events`
  /// subscribers *while the triggering request is still executing*, with a
  /// best-effort non-blocking send so the event precedes the response on
  /// the wire. Never closes a client (the poll loop owns lifecycle).
  void on_stop_event(const dbg::StopEvent& ev);

  dbg::Session& session_;
  ServerConfig config_;
  /// Executes `exec` verbs; its console buffers each command's transcript.
  std::unique_ptr<cli::Interpreter> interp_;

  int listen_fd_ = -1;
  int port_ = 0;
  std::string unix_path_;
  int wake_pipe_[2] = {-1, -1};  ///< self-pipe: request_shutdown() -> poll()
  bool shutdown_ = false;
  std::vector<Client> clients_;
  std::chrono::steady_clock::time_point last_tick_{};
};

}  // namespace dfdbg::server

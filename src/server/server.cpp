#include "dfdbg/server/server.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

#include "dfdbg/common/json.hpp"
#include "dfdbg/common/strings.hpp"
#include "dfdbg/obs/journal.hpp"
#include "dfdbg/obs/metrics.hpp"
#include "dfdbg/server/protocol.hpp"
#include "dfdbg/sim/kernel.hpp"

namespace dfdbg::server {

namespace {

Status errno_status(const char* what) {
  return Status::error(ErrCode::kIo, strformat("%s: %s", what, std::strerror(errno)));
}

void set_nonblocking(int fd) {
  int flags = fcntl(fd, F_GETFL, 0);
  if (flags >= 0) fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

/// Serializes one structured view as a full result frame.
template <typename V>
std::string view_frame(const std::string& id_json, const V& v) {
  JsonWriter w;
  dbg::to_json(w, v);
  return make_result_frame(id_json, w.take());
}

/// Result<View> -> result frame or mapped error frame.
template <typename V>
std::string result_frame(const std::string& id_json, const Result<V>& r) {
  if (!r.ok()) return make_error_frame(id_json, r.status());
  return view_frame(id_json, *r);
}

/// Result<BpId> -> {"breakpoint":<id>}.
std::string bp_frame(const std::string& id_json, const Result<dbg::BpId>& r) {
  if (!r.ok()) return make_error_frame(id_json, r.status());
  JsonWriter w;
  w.begin_object().kv("breakpoint", r->value()).end_object();
  return make_result_frame(id_json, w.take());
}

/// Status -> {"ok":true} or error frame.
std::string status_frame(const std::string& id_json, const Status& s) {
  if (!s.ok()) return make_error_frame(id_json, s);
  return make_result_frame(id_json, "{\"ok\":true}");
}

constexpr const char* kMethods[] = {
    "ping",           "capabilities",      "run",
    "info_links",     "info_filter",       "info_sched",
    "info_profile",   "info_last_token",   "link_tokens",
    "whence",         "breakpoints",       "catch_work",
    "catch_tokens",   "catch_all_inputs",  "break_receive",
    "break_send",     "break_occupancy",   "break_schedule",
    "delete_breakpoint", "enable_breakpoint", "step_both",
    "inject",         "remove",            "replace",
    "exec",           "journal",           "stats",
    "info_stats",     "info_shards",       "subscribe",
    "unsubscribe",    "session_create",    "session_attach",
    "session_detach", "session_destroy",   "session_list",
    "shutdown",
};

/// The subscribable stream names (the protocol's spelling).
constexpr const char* kStreamJournal = "journal";
constexpr const char* kStreamFlow = "info_flow";
constexpr const char* kStreamStats = "stats";
constexpr const char* kStreamRunEvents = "run_events";
constexpr const char* kStreamShardRounds = "shard_rounds";

/// Subscription-layer instruments, interned once (Registry interning is
/// mutex-guarded, so first use may come from any shard).
struct SubMetrics {
  obs::Counter& notifications;  ///< push frames enqueued, any stream
  obs::Counter& dropped;        ///< journal events lost to ring laps (gap total)
  obs::Counter& coalesced;      ///< periodic snapshots skipped on a full buffer
  static SubMetrics& get() {
    auto& r = obs::Registry::global();
    static SubMetrics m{r.counter("server.sub.notifications"),
                        r.counter("server.sub.dropped"),
                        r.counter("server.sub.coalesced")};
    return m;
  }
};

/// Verbs that advance the simulation or mutate tokens: the ones gated by a
/// session's token budget.
bool is_mutating(const std::string& method) {
  return method == "run" || method == "step_both" || method == "inject" ||
         method == "replace" || method == "remove" || method == "exec";
}

/// {"id":..,"name":..,"rig":..,"shard":..,"backend":..,"workers":..} for a
/// session any shard may describe: every field is an immutable identity
/// snapshot, so this never touches the session's world (which only the
/// owning shard may do).
void write_session_brief(JsonWriter& w, const HostedSession& s) {
  w.begin_object()
      .kv("id", s.id)
      .kv("name", s.name)
      .kv("rig", s.rig)
      .kv("shard", static_cast<std::uint64_t>(s.shard))
      .kv("backend", s.backend)
      .kv("workers", static_cast<std::uint64_t>(s.workers))
      .end_object();
}

/// Drops one attachment from `hs`. Callable from any shard: the counter and
/// its mirror are atomic. The journal-backed mirrors are refreshed only when
/// the caller runs on the owning shard — a migrated-away client detaching
/// cross-shard must not read the session's world.
void drop_attachment(HostedSession& hs, int shard) {
  hs.attached_clients.fetch_sub(1, std::memory_order_relaxed);
  if (hs.shard == shard)
    hs.sync_stats();
  else
    hs.sync_client_stat();
}

/// Fills a SessionSpec from session_create params, quota defaults included.
dbg::SessionSpec parse_spec(const JsonValue& p, const ServerConfig& cfg) {
  dbg::SessionSpec spec;
  std::string rig = p.str_or("rig");
  if (!rig.empty()) spec.rig = rig;
  spec.name = p.str_or("name");
  spec.backend = p.str_or("backend");
  spec.workers = static_cast<int>(p.u64_or("workers", 0));
  spec.pipelines = static_cast<int>(p.u64_or("pipelines", static_cast<std::uint64_t>(spec.pipelines)));
  spec.stages = static_cast<int>(p.u64_or("stages", static_cast<std::uint64_t>(spec.stages)));
  spec.tokens = static_cast<int>(p.u64_or("tokens", static_cast<std::uint64_t>(spec.tokens)));
  spec.spin = static_cast<std::uint32_t>(p.u64_or("spin", spec.spin));
  spec.seed = static_cast<std::uint32_t>(p.u64_or("seed", spec.seed));
  spec.width = static_cast<int>(p.u64_or("width", static_cast<std::uint64_t>(spec.width)));
  spec.height = static_cast<int>(p.u64_or("height", static_cast<std::uint64_t>(spec.height)));
  spec.frames = static_cast<int>(p.u64_or("frames", static_cast<std::uint64_t>(spec.frames)));
  spec.fault = p.str_or("fault");
  spec.trigger_mb = static_cast<int>(p.u64_or("trigger_mb", static_cast<std::uint64_t>(spec.trigger_mb)));
  spec.path = p.str_or("path");
  spec.top = p.str_or("top");
  spec.steps = static_cast<int>(p.u64_or("steps", static_cast<std::uint64_t>(spec.steps)));
  spec.quota = cfg.default_quota;
  const JsonValue* q = p.find("quota");
  if (q != nullptr && q->is_object()) {
    spec.quota.journal_capacity = static_cast<std::size_t>(
        q->u64_or("journal_capacity", spec.quota.journal_capacity));
    spec.quota.max_clients =
        static_cast<int>(q->u64_or("max_clients", static_cast<std::uint64_t>(spec.quota.max_clients)));
    spec.quota.token_budget = q->u64_or("token_budget", spec.quota.token_budget);
    spec.quota.idle_timeout_ms = q->u64_or("idle_timeout_ms", spec.quota.idle_timeout_ms);
    // A quota is a request, not a command: cap the field that sizes a server
    // allocation so one remote create cannot exhaust host memory. (Too-small
    // values still fail in the factory: journal_capacity must be >= 2.)
    spec.quota.journal_capacity =
        std::min(spec.quota.journal_capacity, cfg.max_journal_capacity);
  }
  return spec;
}

}  // namespace

DebugServer::DebugServer(dbg::Session& session, ServerConfig config)
    : manager_(nullptr, config.max_sessions) {
  init(config);
  default_ = manager_.register_external(session, "default", config_.default_quota);
  install_stop_observer(*default_);
}

DebugServer::DebugServer(dbg::SessionFactory& factory, ServerConfig config)
    : manager_(&factory, config.max_sessions) {
  init(config);
}

void DebugServer::init(ServerConfig config) {
  // The server IS an observability surface: stats, journal streams and the
  // per-session mirrors are all dead with the process-wide gate off. (The
  // old single-session server got this as a side effect of eagerly
  // constructing a cli::Interpreter; interpreters are lazy now.)
  obs::set_enabled(true);
  config_ = config;
  if (config_.shards < 1) config_.shards = 1;
  start_time_ = std::chrono::steady_clock::now();
  shards_.reserve(static_cast<std::size_t>(config_.shards));
  for (int k = 0; k < config_.shards; ++k) {
    auto sh = std::make_unique<Shard>();
    sh->index = k;
    if (pipe(sh->wake_pipe) == 0) {
      set_nonblocking(sh->wake_pipe[0]);
      set_nonblocking(sh->wake_pipe[1]);
    }
    shards_.push_back(std::move(sh));
  }
}

DebugServer::~DebugServer() {
  if (default_ != nullptr && default_->session != nullptr)
    default_->session->set_stop_observer(nullptr);
  for (auto& sh : shards_) {
    for (auto& c : sh->clients)
      if (c->fd >= 0) close(c->fd);
    sh->clients.clear();
    std::lock_guard<std::mutex> lk(sh->mu);
    for (auto& c : sh->intake)
      if (c->fd >= 0) close(c->fd);
    sh->intake.clear();
  }
  // Owned sessions not already destroyed by a shard loop (in-process use:
  // everything lives on shard 0 and this runs on the creating thread).
  for (int k = 0; k < config_.shards; ++k) manager_.destroy_all_on_shard(k);
  if (listen_fd_ >= 0) close(listen_fd_);
  if (!unix_path_.empty()) unlink(unix_path_.c_str());
  for (auto& sh : shards_) {
    if (sh->wake_pipe[0] >= 0) close(sh->wake_pipe[0]);
    if (sh->wake_pipe[1] >= 0) close(sh->wake_pipe[1]);
  }
}

Result<int> DebugServer::listen_tcp(const std::string& host, int port) {
  int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return errno_status("socket");
  int one = 1;
  setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    close(fd);
    return Status::error(ErrCode::kInvalidArgument, "bad listen address: " + host);
  }
  if (bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    Status s = errno_status("bind");
    close(fd);
    return s;
  }
  if (listen(fd, 16) != 0) {
    Status s = errno_status("listen");
    close(fd);
    return s;
  }
  socklen_t len = sizeof(addr);
  getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len);
  set_nonblocking(fd);
  listen_fd_ = fd;
  port_ = ntohs(addr.sin_port);
  return port_;
}

Status DebugServer::listen_unix(const std::string& path) {
  sockaddr_un addr{};
  if (path.size() >= sizeof(addr.sun_path))
    return Status::error(ErrCode::kInvalidArgument, "socket path too long: " + path);
  int fd = socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return errno_status("socket");
  unlink(path.c_str());
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  if (bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    Status s = errno_status("bind");
    close(fd);
    return s;
  }
  if (listen(fd, 16) != 0) {
    Status s = errno_status("listen");
    close(fd);
    return s;
  }
  set_nonblocking(fd);
  listen_fd_ = fd;
  unix_path_ = path;
  return Status{};
}

void DebugServer::request_shutdown() {
  shutdown_.store(true, std::memory_order_relaxed);
  char b = 1;
  for (auto& sh : shards_) {
    if (sh->wake_pipe[1] >= 0) {
      ssize_t n = write(sh->wake_pipe[1], &b, 1);
      (void)n;
    }
  }
}

std::uint64_t DebugServer::now_ms() const {
  return static_cast<std::uint64_t>(std::chrono::duration_cast<std::chrono::milliseconds>(
                                        std::chrono::steady_clock::now() - start_time_)
                                        .count());
}

void DebugServer::accept_clients() {
  for (;;) {
    int fd = accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) return;
    if (client_count_.load(std::memory_order_relaxed) >= config_.max_clients) {
      close(fd);
      obs::Registry::global().counter("server.refused").add();
      continue;
    }
    set_nonblocking(fd);
    int one = 1;
    setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));  // no-op on AF_UNIX
    auto c = std::make_unique<Client>();
    c->fd = fd;
    shards_[0]->clients.push_back(std::move(c));
    client_count_.fetch_add(1, std::memory_order_relaxed);
    obs::Registry::global().counter("server.accepts").add();
    obs::Registry::global().gauge("server.clients").set(
        static_cast<std::int64_t>(client_count_.load(std::memory_order_relaxed)));
  }
}

void DebugServer::close_client(int shard, std::size_t i) {
  Shard& sh = *shards_[static_cast<std::size_t>(shard)];
  close(sh.clients[i]->fd);
  // Drop the attachment count on whatever this client was attached to (the
  // session usually lives on this shard, but a refused post-migration attach
  // can leave a cross-shard attachment behind; drop_attachment is safe for
  // both, and the find() pin for stale ones racing a destroy).
  if (sh.clients[i]->attached != 0) {
    if (auto hs = manager_.find(sh.clients[i]->attached)) drop_attachment(*hs, shard);
  }
  sh.clients.erase(sh.clients.begin() + static_cast<std::ptrdiff_t>(i));
  client_count_.fetch_sub(1, std::memory_order_relaxed);
  obs::Registry::global().gauge("server.clients").set(
      static_cast<std::int64_t>(client_count_.load(std::memory_order_relaxed)));
}

void DebugServer::enqueue(Client& c, std::string frame) {
  // server.bytes_out is counted at the actual send (flush_output / the
  // graceful final flush), so short writes and dropped clients never
  // over- or double-count.
  c.out += frame;
  c.out += '\n';
}

void DebugServer::migrate_client(std::unique_ptr<Client> c, int target) {
  Shard& t = *shards_[static_cast<std::size_t>(target)];
  {
    std::lock_guard<std::mutex> lk(t.mu);
    t.intake.push_back(std::move(c));
  }
  char b = 1;
  if (t.wake_pipe[1] >= 0) {
    ssize_t n = write(t.wake_pipe[1], &b, 1);
    (void)n;
  }
  obs::Registry::global().counter("server.session.migrations").add();
}

void DebugServer::adopt_intake(int shard) {
  Shard& sh = *shards_[static_cast<std::size_t>(shard)];
  std::vector<std::unique_ptr<Client>> fresh;
  {
    std::lock_guard<std::mutex> lk(sh.mu);
    if (sh.intake.empty()) return;
    fresh.swap(sh.intake);
  }
  for (auto& moved : fresh) {
    sh.clients.push_back(std::move(moved));
    std::size_t i = sh.clients.size() - 1;
    Client& c = *sh.clients[i];
    // Execute the carried frame (and anything else buffered) immediately:
    // the client is mid-request and is not readable again until it gets
    // this response.
    if (!process_buffered(shard, c)) {
      std::unique_ptr<Client> again = std::move(sh.clients[i]);
      sh.clients.erase(sh.clients.begin() + static_cast<std::ptrdiff_t>(i));
      int target = again->migrate_to;
      again->migrate_to = -1;
      migrate_client(std::move(again), target);
      continue;
    }
    if (!c.out.empty()) flush_output(shard, i);
  }
}

obs::Journal::LinkNamer DebugServer::link_namer(HostedSession& hs) {
  dbg::Session* session = hs.session;
  return [session](std::uint32_t link) {
    pedf::Link* l = session->app().link_by_id(pedf::LinkId(link));
    return l != nullptr ? l->name() : strformat("link#%u", link);
  };
}

void DebugServer::push_notification(Client& c, const std::string& method,
                                    std::string params_json, std::uint64_t sid) {
  // Tag the params object with the originating session so a client
  // multiplexing streams over several sessions can demux them.
  std::string tag = strformat("{\"session\":%llu", static_cast<unsigned long long>(sid));
  if (params_json.size() >= 2 && params_json.front() == '{') {
    if (params_json == "{}") {
      params_json = tag + "}";
    } else {
      params_json = tag + "," + params_json.substr(1);
    }
  }
  enqueue(c, make_notification_frame(method, params_json));
  SubMetrics::get().notifications.add();
}

void DebugServer::pump_client(Client& c, int shard, bool tick_due) {
  // A binding whose session vanished (destroyed/evicted) clears silently:
  // the stream simply ends. Sessions on other shards never bind (subscribe
  // refuses them), so every lookup below resolves to this shard or to null.
  auto bound = [&](std::uint64_t& sid) -> std::shared_ptr<HostedSession> {
    if (sid == 0) return nullptr;
    std::shared_ptr<HostedSession> hs = manager_.find(sid);
    if (hs == nullptr || hs->shard != shard) {
      sid = 0;
      return nullptr;
    }
    return hs;
  };

  // Journal deltas first: they are the stream with real history behind it,
  // and pausing them (rather than dropping) is what makes the cursor/gap
  // contract work — the ring only laps a reader that stays slow.
  if (auto hs = bound(c.sub_journal); hs != nullptr) {
    obs::Journal& j = *hs->journal;
    while (c.out.size() < config_.max_outbound_bytes && c.journal_cursor < j.cursor()) {
      JsonWriter w;
      obs::Journal::Slice s =
          j.write_delta_json(w, c.journal_cursor, config_.journal_batch, link_namer(*hs));
      c.journal_cursor = s.next;
      if (s.gap > 0) SubMetrics::get().dropped.add(s.gap);
      if (s.count == 0 && s.gap == 0) break;
      push_notification(c, "journal.delta", w.take(), hs->id);
    }
  }
  // Shard rounds pump like the journal: cursor-driven, not tick-gated — the
  // ring only grows while a `run` verb executes, so draining after each
  // request round keeps the stream current with no periodic wakeups. Round
  // ids are monotonic, so a paused reader resumes where it left off (evicted
  // records are simply skipped; the ring is a bounded window, not a log).
  if (auto hs = bound(c.sub_shard_rounds); hs != nullptr) {
    const sim::Kernel& k = hs->session->app().kernel();
    while (c.out.size() < config_.max_outbound_bytes) {
      std::vector<sim::BarrierRoundRecord> recs =
          k.round_records_after(c.shard_cursor, config_.journal_batch);
      if (recs.empty()) break;
      JsonWriter w;
      w.begin_object();
      w.kv("time", k.now());
      w.key("rounds").begin_array();
      for (const sim::BarrierRoundRecord& r : recs) dbg::to_json(w, r);
      w.end_array().end_object();
      c.shard_cursor = recs.back().round;
      push_notification(c, "shard.rounds", w.take(), hs->id);
    }
  }
  if (!tick_due) return;
  // Periodic snapshots: coalesce (skip whole ticks) while the client is
  // over its outbound bound — a snapshot is a *current state*, so skipping
  // loses nothing a later tick does not re-deliver.
  if (auto hs = bound(c.sub_flow); hs != nullptr) {
    if (c.out.size() >= config_.max_outbound_bytes) {
      SubMetrics::get().coalesced.add();
    } else {
      dbg::Session& session = *hs->session;
      JsonWriter w;
      w.begin_object();
      w.kv("time", session.app().kernel().now());
      w.key("links").begin_array();
      for (const dbg::LinkRow& l : session.links_view().links) {
        auto& prev = c.flow_prev[l.name];
        w.begin_object()
            .kv("name", l.name)
            .kv("occupancy", static_cast<std::uint64_t>(l.occupancy))
            .kv("pushes", l.pushes)
            .kv("pops", l.pops)
            .kv("d_pushes", l.pushes - prev.first)
            .kv("d_pops", l.pops - prev.second)
            .end_object();
        prev = {l.pushes, l.pops};
      }
      w.end_array();
      w.key("filters").begin_array();
      for (const dbg::ProfileRow& r : session.profile_snapshot().rows) {
        w.begin_object()
            .kv("path", r.path)
            .kv("firings", r.firings)
            .kv("cycles", r.cycles)
            .end_object();
      }
      w.end_array();
      w.end_object();
      push_notification(c, "flow.snapshot", w.take(), hs->id);
    }
  }
  if (auto hs = bound(c.sub_stats); hs != nullptr) {
    if (c.out.size() >= config_.max_outbound_bytes) {
      SubMetrics::get().coalesced.add();
    } else {
      std::size_t changed = 0;
      std::string delta = obs::Registry::global().snapshot_delta(c.stats_prev, &changed);
      // An all-empty delta carries no information; skip the frame entirely.
      if (changed > 0) push_notification(c, "stats.delta", std::move(delta), hs->id);
    }
  }
}

void DebugServer::install_stop_observer(HostedSession& hs) {
  HostedSession* p = &hs;
  hs.session->set_stop_observer(
      [this, p](const dbg::StopEvent& ev) { on_stop_event(*p, ev); });
}

void DebugServer::on_stop_event(HostedSession& hs, const dbg::StopEvent& ev) {
  // Stops fire on the owning shard's thread (inside the run/exec verb that
  // triggered them), so walking that shard's clients is race-free.
  Shard& sh = *shards_[static_cast<std::size_t>(hs.shard)];
  bool any = false;
  for (const auto& c : sh.clients)
    if (c->sub_run_events == hs.id) any = true;
  if (!any) return;
  JsonWriter w;
  dbg::to_json(w, ev);
  std::string params = w.take();
  for (auto& cp : sh.clients) {
    Client& c = *cp;
    if (c.sub_run_events != hs.id) continue;
    push_notification(c, "run.event", params, hs.id);
    // Best-effort immediate delivery: the poll loop is parked inside the
    // dispatch that triggered this stop, so without this send the event
    // would sit buffered until the response completes. Never closes the
    // client here — on a hard error the data stays queued and the poll
    // loop's next flush_output() sees the same error and owns the close.
    while (!c.out.empty()) {
      ssize_t n = send(c.fd, c.out.data(), c.out.size(), MSG_NOSIGNAL);
      if (n <= 0) break;
      obs::Registry::global().counter("server.bytes_out").add(static_cast<std::uint64_t>(n));
      c.out.erase(0, static_cast<std::size_t>(n));
    }
  }
}

bool DebugServer::process_buffered(int shard, Client& c) {
  if (!c.pending.empty()) {
    std::string frame = std::move(c.pending);
    c.pending.clear();
    std::string resp = handle_frame_for(frame, &c, shard, /*replay=*/true);
    if (c.migrate_to >= 0) {
      c.pending = std::move(frame);
      return false;
    }
    enqueue(c, resp);
  }
  std::size_t start = 0;
  for (;;) {
    std::size_t nl = c.in.find('\n', start);
    if (nl == std::string::npos) break;
    std::string_view line(c.in.data() + start, nl - start);
    if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
    start = nl + 1;
    if (line.empty()) continue;
    if (line.size() > config_.max_frame_bytes) {
      enqueue(c, make_error_frame("null", kErrInvalidRequest, "frame too large",
                                  ErrCode::kInvalidArgument));
      c.close_after_flush = true;
      break;
    }
    std::string resp = handle_frame_for(line, &c, shard);
    if (c.migrate_to >= 0) {
      // Carry the triggering frame and the rest of the buffer to the new
      // shard; it re-executes the frame there.
      c.pending.assign(line.data(), line.size());
      c.in.erase(0, start);
      return false;
    }
    enqueue(c, resp);
    if (shutdown_.load(std::memory_order_relaxed)) break;
  }
  c.in.erase(0, start);
  if (c.in.size() > config_.max_frame_bytes) {
    // The peer is streaming an unterminated frame; cut it off.
    enqueue(c, make_error_frame("null", kErrInvalidRequest, "frame too large",
                                ErrCode::kInvalidArgument));
    c.close_after_flush = true;
    c.in.clear();
  }
  return true;
}

bool DebugServer::service_input(int shard, std::size_t i) {
  Shard& sh = *shards_[static_cast<std::size_t>(shard)];
  Client& c = *sh.clients[i];
  char buf[65536];
  bool eof = false;
  for (;;) {
    ssize_t n = recv(c.fd, buf, sizeof(buf), 0);
    if (n > 0) {
      obs::Registry::global().counter("server.bytes_in").add(static_cast<std::uint64_t>(n));
      c.in.append(buf, static_cast<std::size_t>(n));
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    // 0 = orderly disconnect, <0 = error. Complete frames already received
    // are still executed below (shutdown(SHUT_WR)-then-read clients, and
    // fire-and-forget requests whose effects must land); then we close.
    eof = true;
    break;
  }
  if (!process_buffered(shard, c)) {
    // The client migrated: hand it (including its buffers) to the target
    // shard's intake. An EOF seen here still flushes there.
    std::unique_ptr<Client> moved = std::move(sh.clients[i]);
    sh.clients.erase(sh.clients.begin() + static_cast<std::ptrdiff_t>(i));
    if (eof) moved->close_after_flush = true;
    int target = moved->migrate_to;
    moved->migrate_to = -1;
    migrate_client(std::move(moved), target);
    return false;
  }
  if (eof) {
    if (c.out.empty()) {
      close_client(shard, i);
      return false;
    }
    c.close_after_flush = true;
  }
  return true;
}

bool DebugServer::flush_output(int shard, std::size_t i) {
  Shard& sh = *shards_[static_cast<std::size_t>(shard)];
  Client& c = *sh.clients[i];
  while (!c.out.empty()) {
    ssize_t n = send(c.fd, c.out.data(), c.out.size(), MSG_NOSIGNAL);
    if (n > 0) {
      obs::Registry::global().counter("server.bytes_out").add(static_cast<std::uint64_t>(n));
      c.out.erase(0, static_cast<std::size_t>(n));
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return true;
    close_client(shard, i);
    return false;
  }
  if (c.close_after_flush) {
    close_client(shard, i);
    return false;
  }
  return true;
}

std::size_t DebugServer::evict_idle(int shard, std::uint64_t now) {
  std::vector<std::uint64_t> ids = manager_.idle_candidates(shard, now);
  if (ids.empty()) return 0;
  Shard& sh = *shards_[static_cast<std::size_t>(shard)];
  std::size_t evicted = 0;
  for (std::uint64_t id : ids) {
    // An active stream binding counts as use even without an attachment.
    bool referenced = false;
    for (const auto& c : sh.clients)
      if (c->references(id)) {
        referenced = true;
        break;
      }
    if (referenced) continue;
    if (manager_.destroy(id, /*evicted=*/true).ok()) ++evicted;
  }
  return evicted;
}

std::size_t DebugServer::evict_idle_for_test(std::uint64_t now) {
  return evict_idle(0, now);
}

Status DebugServer::serve() {
  if (listen_fd_ < 0)
    return Status::error(ErrCode::kFailedPrecondition, "serve: not listening (call listen_* first)");
  shutdown_.store(false, std::memory_order_relaxed);
  auto now = std::chrono::steady_clock::now();
  for (auto& sh : shards_) sh->last_tick = now;
  for (int k = 1; k < config_.shards; ++k) {
    Shard* sh = shards_[static_cast<std::size_t>(k)].get();
    sh->thread = std::thread([this, k] { run_shard(k); });
  }
  Status s = run_shard(0);
  // run_shard only returns once shutdown_ is set (or on a poll error, in
  // which case the other shards must be told to stop too).
  request_shutdown();
  for (int k = 1; k < config_.shards; ++k) {
    Shard& sh = *shards_[static_cast<std::size_t>(k)];
    if (sh.thread.joinable()) sh.thread.join();
  }
  return s;
}

Status DebugServer::run_shard(int shard) {
  Shard& sh = *shards_[static_cast<std::size_t>(shard)];
  const bool accepts = shard == 0 && listen_fd_ >= 0;
  Status status;
  while (!shutdown_.load(std::memory_order_relaxed)) {
    adopt_intake(shard);
    std::vector<pollfd> fds;
    fds.push_back({sh.wake_pipe[0], POLLIN, 0});
    if (accepts) fds.push_back({listen_fd_, POLLIN, 0});
    const std::size_t base = fds.size();
    bool periodic = false;
    for (const auto& c : sh.clients) {
      fds.push_back({c->fd, static_cast<short>(POLLIN | (c->out.empty() ? 0 : POLLOUT)), 0});
      if (c->wants_tick()) periodic = true;
    }
    // Periodic subscribers turn the poll into a ticking one; armed idle
    // timeouts bound it so eviction runs without traffic; otherwise the
    // loop stays fully event-driven (no idle wakeups).
    int timeout = periodic ? config_.tick_ms : -1;
    if (manager_.has_armed_timeout(shard)) timeout = timeout < 0 ? 100 : std::min(timeout, 100);
    int rc = poll(fds.data(), fds.size(), timeout);
    if (rc < 0) {
      if (errno == EINTR) continue;
      status = errno_status("poll");
      shutdown_.store(true, std::memory_order_relaxed);
      break;
    }
    if ((fds[0].revents & POLLIN) != 0) {
      char drain[64];
      while (read(sh.wake_pipe[0], drain, sizeof(drain)) > 0) {
      }
    }
    // Service only the clients that were polled (fds built before adopt/
    // accept of this round's newcomers: they are polled next round). Walk
    // back to front: close_client erases by index, leaving lower indexes
    // stable.
    std::size_t polled = fds.size() - base;
    if (accepts && (fds[1].revents & POLLIN) != 0) accept_clients();
    for (std::size_t i = polled; i > 0; --i) {
      std::size_t idx = i - 1;
      short re = fds[base + idx].revents;
      if (re == 0) continue;
      if ((re & (POLLERR | POLLNVAL)) != 0) {
        close_client(shard, idx);
        continue;
      }
      if ((re & POLLIN) != 0 && !service_input(shard, idx)) continue;
      // POLLHUP without readable data: the peer is gone and writes cannot
      // succeed; anything still queued is undeliverable.
      if ((re & POLLHUP) != 0 && (re & POLLIN) == 0) {
        close_client(shard, idx);
        continue;
      }
      // A POLLOUT-only wakeup (no POLLIN this round) must still drain the
      // pending out buffer, or a paused reader would deadlock the stream.
      if ((re & POLLOUT) != 0) flush_output(shard, idx);
    }
    // Push-stream pump: now that requests ran (the journal may have grown)
    // and sockets drained (buffers may have room), produce what each
    // subscriber is owed, then flush eagerly. Reverse walk: flush_output
    // may close (erase) the client.
    auto tick_now = std::chrono::steady_clock::now();
    bool tick_due =
        periodic && tick_now - sh.last_tick >= std::chrono::milliseconds(config_.tick_ms);
    if (tick_due) sh.last_tick = tick_now;
    for (std::size_t i = sh.clients.size(); i > 0; --i) {
      Client& c = *sh.clients[i - 1];
      if (c.subscribed()) pump_client(c, shard, tick_due);
      if (!c.out.empty()) flush_output(shard, i - 1);
    }
    evict_idle(shard, now_ms());
  }
  // Graceful exit: flush what clients are owed (briefly, blocking), then
  // close, then tear down this shard's sessions on this thread (fiber
  // stacks unwind where they were created).
  for (std::size_t i = sh.clients.size(); i > 0; --i) {
    Client& c = *sh.clients[i - 1];
    if (!c.out.empty()) {
      int flags = fcntl(c.fd, F_GETFL, 0);
      if (flags >= 0) fcntl(c.fd, F_SETFL, flags & ~O_NONBLOCK);
      ssize_t n = send(c.fd, c.out.data(), c.out.size(), MSG_NOSIGNAL);
      if (n > 0)
        obs::Registry::global().counter("server.bytes_out").add(static_cast<std::uint64_t>(n));
    }
    close_client(shard, i - 1);
  }
  manager_.destroy_all_on_shard(shard);
  return status;
}

std::string DebugServer::handle_frame(std::string_view frame) {
  return handle_frame_for(frame, nullptr, 0);
}

std::string DebugServer::handle_frame_for(std::string_view frame, Client* client, int shard,
                                          bool replay) {
  if (!replay) obs::Registry::global().counter("server.requests").add();
  obs::ScopedTimer timer(obs::Registry::global().histogram("server.request_ns"));
  auto parsed = JsonValue::parse(frame);
  if (!parsed.ok()) {
    obs::Registry::global().counter("server.errors").add();
    return make_error_frame("null", kErrParse, parsed.status().message(), ErrCode::kParseError);
  }
  if (!parsed->is_object()) {
    obs::Registry::global().counter("server.errors").add();
    return make_error_frame("null", kErrInvalidRequest, "request is not a JSON object",
                            ErrCode::kInvalidArgument);
  }
  const JsonValue* id = parsed->find("id");
  std::string id_json = id != nullptr ? id->dump() : "null";
  std::string method = parsed->str_or("method");
  if (method.empty()) {
    obs::Registry::global().counter("server.errors").add();
    return make_error_frame(id_json, kErrInvalidRequest, "missing method",
                            ErrCode::kInvalidArgument);
  }
  if (!replay) obs::Registry::global().counter(std::string("server.req.") + method).add();
  static const JsonValue kNoParams;
  const JsonValue* params = parsed->find("params");
  std::string response =
      dispatch(method, params != nullptr ? *params : kNoParams, id_json, client, shard);
  // Every error frame carries this exact unescaped marker (protocol.cpp);
  // inside result payloads the quotes would be \"-escaped.
  if (response.find(",\"error\":{\"code\":") != std::string::npos)
    obs::Registry::global().counter("server.errors").add();
  return response;
}

Result<std::shared_ptr<HostedSession>> DebugServer::resolve(const JsonValue& p, Client* client,
                                                            int shard, bool pin_to_shard) {
  std::shared_ptr<HostedSession> hs;
  const JsonValue* sp = p.find("session");
  if (sp != nullptr) {
    hs = sp->is_string() ? manager_.find(sp->as_string()) : manager_.find(sp->as_u64());
    if (hs == nullptr)
      return Status::error(ErrCode::kNotFound, "no such session: " + sp->dump());
  } else if (client != nullptr && client->attached != 0) {
    hs = manager_.find(client->attached);
    if (hs == nullptr) {
      client->attached = 0;
      return Status::error(ErrCode::kNotFound, "attached session no longer exists");
    }
  } else {
    hs = default_;
    if (hs == nullptr)
      return Status::error(ErrCode::kFailedPrecondition,
                           "no session attached and this server has no default session "
                           "(session_create or session_attach first)");
  }
  if (pin_to_shard && hs->shard != shard)
    return Status::error(
        ErrCode::kFailedPrecondition,
        strformat("session '%s' is pinned to shard %d; session_attach to it first",
                  hs->name.c_str(), hs->shard));
  return hs;
}

std::string DebugServer::dispatch(const std::string& method, const JsonValue& p,
                                  const std::string& id_json, Client* client, int shard) {
  auto missing = [&](const char* param) {
    return make_error_frame(id_json, kErrInvalidParams,
                            strformat("missing required param: %s", param),
                            ErrCode::kInvalidArgument);
  };

  if (method == "ping") return make_result_frame(id_json, "{\"pong\":true}");

  // --- session lifecycle (the fleet surface; session-independent) ----------

  if (method == "session_list") {
    std::uint64_t now = now_ms();
    std::vector<SessionManager::ListEntry> entries = manager_.list();
    JsonWriter w;
    w.begin_object();
    w.kv("count", static_cast<std::uint64_t>(entries.size()));
    w.key("sessions").begin_array();
    for (const auto& e : entries) {
      w.begin_object()
          .kv("id", e.id)
          .kv("name", e.name)
          .kv("rig", e.rig)
          .kv("shard", static_cast<std::uint64_t>(e.shard))
          .kv("default", e.is_default)
          .kv("clients", e.clients)
          .kv("requests", e.requests)
          .kv("journal_events", e.journal_events)
          .kv("last_token", e.last_token)
          .kv("idle_ms", now > e.last_used_ms ? now - e.last_used_ms : 0);
      w.key("quota")
          .begin_object()
          .kv("journal_capacity", static_cast<std::uint64_t>(e.quota.journal_capacity))
          .kv("max_clients", static_cast<std::uint64_t>(e.quota.max_clients))
          .kv("token_budget", e.quota.token_budget)
          .kv("idle_timeout_ms", e.quota.idle_timeout_ms)
          .end_object();
      w.end_object();
    }
    w.end_array().end_object();
    return make_result_frame(id_json, w.take());
  }

  if (method == "session_create") {
    if (!config_.allow_session_create || manager_.factory() == nullptr)
      return make_error_frame(id_json,
                              Status::error(ErrCode::kFailedPrecondition,
                                            "session_create is disabled on this server"));
    int target = static_cast<int>(p.u64_or("shard", static_cast<std::uint64_t>(shard)));
    if (target < 0 || target >= config_.shards)
      return make_error_frame(
          id_json, Status::error(ErrCode::kInvalidArgument,
                                 strformat("shard %d out of range (0..%d)", target,
                                           config_.shards - 1)));
    if (target != shard) {
      if (client == nullptr)
        return make_error_frame(
            id_json, Status::error(ErrCode::kFailedPrecondition,
                                   "in-process session_create is pinned to shard 0"));
      client->migrate_to = target;  // re-executes on the owning shard
      return std::string();
    }
    dbg::SessionSpec spec = parse_spec(p, config_);
    auto created = manager_.create(spec, target, now_ms());
    if (!created.ok()) return make_error_frame(id_json, created.status());
    HostedSession& s = **created;
    install_stop_observer(s);
    bool attach = client != nullptr && p.bool_or("attach", true);
    if (attach) {
      if (client->attached != 0) {
        // The previous session may live on the shard the client migrated
        // away from; drop_attachment stays off its world in that case.
        if (auto prev = manager_.find(client->attached)) drop_attachment(*prev, shard);
      }
      client->attached = s.id;
      s.attached_clients.fetch_add(1, std::memory_order_relaxed);
      s.sync_stats();
    }
    JsonWriter w;
    w.begin_object().kv("ok", true).kv("attached", attach).key("session");
    write_session_brief(w, s);
    w.end_object();
    return make_result_frame(id_json, w.take());
  }

  if (method == "session_attach") {
    if (client == nullptr)
      return make_error_frame(id_json,
                              Status::error(ErrCode::kFailedPrecondition,
                                            "session_attach requires a socket connection"));
    auto target = resolve(p, client, shard, /*pin_to_shard=*/false);
    if (!target.ok()) return make_error_frame(id_json, target.status());
    HostedSession& s = **target;
    auto quota_refused = [&]() {
      obs::Registry::global().counter("server.session.attach_refused").add();
      return make_error_frame(
          id_json, Status::error(ErrCode::kFailedPrecondition,
                                 strformat("session '%s' is at its client quota (%d)",
                                           s.name.c_str(), s.quota.max_clients)));
    };
    bool over_quota = client->attached != s.id && s.quota.max_clients > 0 &&
                      s.attached_clients.load(std::memory_order_relaxed) >= s.quota.max_clients;
    if (s.shard != shard) {
      // Refuse before migrating (best-effort: the count is a cross-shard
      // atomic read). Migrating first and failing the quota there would
      // strand the client on a shard where its previous attachment — and
      // every implicit verb against it — is unusable.
      if (over_quota) return quota_refused();
      client->migrate_to = s.shard;  // re-executes on the owning shard
      return std::string();
    }
    if (client->attached != s.id) {
      if (over_quota) {
        // Authoritative check (owning shard). If the pre-migration check
        // passed but this one fails — the quota filled during the move —
        // the client must not be left here with its working session
        // elsewhere: send it back to that anchor shard, where the
        // re-executed frame hits the pre-migration refusal above and
        // becomes a plain error with the old attachment intact.
        int anchor = shard;
        if (client->attached != 0) {
          if (auto prev = manager_.find(client->attached)) anchor = prev->shard;
        } else if (default_ != nullptr) {
          anchor = default_->shard;
        }
        if (anchor != shard) {
          client->migrate_to = anchor;
          return std::string();
        }
        return quota_refused();
      }
      if (client->attached != 0) {
        // The previous session may live on the shard the client migrated
        // away from; drop_attachment stays off its world in that case.
        if (auto prev = manager_.find(client->attached)) drop_attachment(*prev, shard);
      }
      client->attached = s.id;
      s.attached_clients.fetch_add(1, std::memory_order_relaxed);
    }
    s.last_used_ms.store(now_ms(), std::memory_order_relaxed);
    s.sync_stats();
    JsonWriter w;
    w.begin_object().kv("ok", true).key("session");
    write_session_brief(w, s);
    w.end_object();
    return make_result_frame(id_json, w.take());
  }

  if (method == "session_detach") {
    if (client == nullptr)
      return make_error_frame(id_json,
                              Status::error(ErrCode::kFailedPrecondition,
                                            "session_detach requires a socket connection"));
    if (client->attached == 0)
      return make_error_frame(id_json, Status::error(ErrCode::kFailedPrecondition,
                                                     "not attached to a session"));
    std::uint64_t prev_id = client->attached;
    client->drop_session(prev_id);
    // A refused post-migration attach can leave the attachment pointing at
    // another shard's session; drop_attachment stays off its world then.
    if (auto prev = manager_.find(prev_id)) drop_attachment(*prev, shard);
    JsonWriter w;
    w.begin_object().kv("ok", true).kv("detached", prev_id).end_object();
    return make_result_frame(id_json, w.take());
  }

  if (method == "session_destroy") {
    auto target = resolve(p, client, shard, /*pin_to_shard=*/false);
    if (!target.ok()) return make_error_frame(id_json, target.status());
    HostedSession& s = **target;
    if (s.is_default)
      return make_error_frame(id_json,
                              Status::error(ErrCode::kFailedPrecondition,
                                            "the default session cannot be destroyed"));
    if (s.shard != shard) {
      if (client == nullptr)
        return make_error_frame(
            id_json,
            Status::error(ErrCode::kFailedPrecondition,
                          strformat("session '%s' is pinned to shard %d; in-process "
                                    "destroy only reaches shard 0",
                                    s.name.c_str(), s.shard)));
      client->migrate_to = s.shard;  // re-executes on the owning shard
      return std::string();
    }
    std::uint64_t id = s.id;
    // Detach every client of this shard that references the session (other
    // shards cannot: bindings are same-shard and cross-shard attachments
    // resolve to errors afterwards).
    for (auto& cp : shards_[static_cast<std::size_t>(shard)]->clients) {
      if (cp->attached == id) s.attached_clients.fetch_sub(1, std::memory_order_relaxed);
      cp->drop_session(id);
    }
    Status st = manager_.destroy(id);
    if (!st.ok()) return make_error_frame(id_json, st);
    JsonWriter w;
    w.begin_object().kv("ok", true).kv("destroyed", id).end_object();
    return make_result_frame(id_json, w.take());
  }

  // --- global (session-independent) verbs -----------------------------------

  if (method == "capabilities") {
    auto soft = resolve(p, client, shard, /*pin_to_shard=*/false);
    std::shared_ptr<HostedSession> s = soft.ok() ? *soft : nullptr;
    JsonWriter w;
    w.begin_object();
    w.kv("protocol", 2);
    w.kv("exec", config_.allow_exec);
    w.kv("max_frame_bytes", static_cast<std::uint64_t>(config_.max_frame_bytes));
    if (s != nullptr) {
      // Identity snapshots, not kernel reads: `s` may live on another shard.
      w.kv("backend", s->backend);
      w.kv("workers", static_cast<std::uint64_t>(s->workers));
    }
    w.kv("shards", static_cast<std::uint64_t>(config_.shards));
    w.kv("sessions", static_cast<std::uint64_t>(manager_.count()));
    w.kv("max_sessions", static_cast<std::uint64_t>(manager_.max_sessions()));
    w.kv("session_create",
         config_.allow_session_create && manager_.factory() != nullptr);
    if (s != nullptr) {
      w.key("session");
      write_session_brief(w, *s);
    }
    w.key("rigs").begin_array();
    if (manager_.factory() != nullptr)
      for (const std::string& r : manager_.factory()->rigs()) w.value(r);
    w.end_array();
    w.key("methods").begin_array();
    for (const char* m : kMethods) w.value(m);
    w.end_array();
    w.key("streams").begin_array();
    for (const char* st : {kStreamJournal, kStreamFlow, kStreamStats, kStreamRunEvents,
                           kStreamShardRounds})
      w.value(st);
    w.end_array();
    w.end_object();
    return make_result_frame(id_json, w.take());
  }

  if (method == "stats" || method == "info_stats") {
    // `format: "prom"` wraps the Prometheus exposition text as a JSON
    // string (the frame itself must stay JSON); anything else gets
    // Registry::to_json(), one compact object with histogram entries
    // carrying p50/p90/p99 estimates from the log2 buckets. The registry is
    // process-wide (hot paths intern instruments once), so this surface is
    // global, not per-session.
    if (p.str_or("format") == "prom") {
      JsonWriter w;
      w.begin_object()
          .kv("format", "prom")
          .kv("body", obs::Registry::global().to_prometheus())
          .end_object();
      return make_result_frame(id_json, w.take());
    }
    return make_result_frame(id_json, obs::Registry::global().to_json());
  }

  if (method == "shutdown") {
    request_shutdown();
    return make_result_frame(id_json, "{\"ok\":true,\"shutdown\":true}");
  }

  if (method == "unsubscribe") {
    if (client == nullptr)
      return make_error_frame(
          id_json, Status::error(ErrCode::kFailedPrecondition,
                                 "unsubscribe requires a socket connection to push to"));
    std::string stream = p.str_or("stream");
    JsonWriter w;
    w.begin_object().kv("ok", true);
    if (stream == kStreamJournal) {
      client->sub_journal = 0;
    } else if (stream == kStreamFlow) {
      client->sub_flow = 0;
    } else if (stream == kStreamStats) {
      client->sub_stats = 0;
    } else if (stream == kStreamRunEvents) {
      client->sub_run_events = 0;
    } else if (stream == kStreamShardRounds) {
      client->sub_shard_rounds = 0;
    } else if (stream.empty() || stream == "all") {
      // `unsubscribe` with no stream (or "all") clears everything.
      client->sub_journal = client->sub_flow = client->sub_stats = client->sub_run_events =
          client->sub_shard_rounds = 0;
    } else {
      return make_error_frame(
          id_json, Status::error(ErrCode::kInvalidArgument, "unknown stream: " + stream));
    }
    w.end_object();
    return make_result_frame(id_json, w.take());
  }

  // --- session-scoped verbs -------------------------------------------------

  auto resolved = resolve(p, client, shard);
  if (!resolved.ok()) return make_error_frame(id_json, resolved.status());
  HostedSession& hs = **resolved;
  hs.last_used_ms.store(now_ms(), std::memory_order_relaxed);
  hs.stat_requests.fetch_add(1, std::memory_order_relaxed);
  // Owned sessions record into their private ring for the whole verb (the
  // default/external session keeps the process-wide ring: v1 behaviour,
  // byte-identical). Refresh the cross-shard stat mirrors on every exit.
  dbg::ThreadJournalScope journal_scope(hs.world != nullptr ? hs.journal : nullptr);
  struct SyncOnExit {
    HostedSession& s;
    ~SyncOnExit() { s.sync_stats(); }
  } sync_guard{hs};
  dbg::Session& session = *hs.session;

  if (is_mutating(method) && hs.over_token_budget()) {
    obs::Registry::global().counter("server.session.budget_refused").add();
    return make_error_frame(
        id_json,
        Status::error(ErrCode::kFailedPrecondition,
                      strformat("session '%s' exhausted its token budget (%llu)",
                                hs.name.c_str(),
                                static_cast<unsigned long long>(hs.quota.token_budget))));
  }

  if (method == "subscribe") {
    if (client == nullptr)
      return make_error_frame(
          id_json, Status::error(ErrCode::kFailedPrecondition,
                                 "subscribe requires a socket connection to push to"));
    std::string stream = p.str_or("stream");
    if (stream.empty()) return missing("stream");
    JsonWriter w;
    w.begin_object().kv("ok", true);
    if (stream == kStreamJournal) {
      client->sub_journal = hs.id;
      // Default: tail from "now". An explicit cursor resumes an earlier
      // read (0 replays the whole retained window, reporting the gap).
      client->journal_cursor =
          p.find("cursor") != nullptr ? p.u64_or("cursor", 0) : hs.journal->cursor();
      w.kv("stream", stream).kv("cursor", client->journal_cursor).kv("session", hs.id);
    } else if (stream == kStreamFlow) {
      client->sub_flow = hs.id;
      client->flow_prev.clear();
      w.kv("stream", stream).kv("session", hs.id);
    } else if (stream == kStreamStats) {
      client->sub_stats = hs.id;
      // A fresh snapshot makes the first delta carry the full registry.
      client->stats_prev = obs::StatsSnapshot{};
      w.kv("stream", stream).kv("session", hs.id);
    } else if (stream == kStreamRunEvents) {
      client->sub_run_events = hs.id;
      w.kv("stream", stream).kv("session", hs.id);
    } else if (stream == kStreamShardRounds) {
      client->sub_shard_rounds = hs.id;
      // Default: tail from the current round. An explicit cursor resumes
      // an earlier read (0 replays the whole retained ring).
      client->shard_cursor = p.find("cursor") != nullptr
                                 ? p.u64_or("cursor", 0)
                                 : session.app().kernel().round_count();
      w.kv("stream", stream).kv("cursor", client->shard_cursor).kv("session", hs.id);
    } else {
      return make_error_frame(
          id_json, Status::error(ErrCode::kInvalidArgument, "unknown stream: " + stream));
    }
    w.end_object();
    return make_result_frame(id_json, w.take());
  }

  if (method == "run") {
    sim::SimTime until = p.u64_or("until", sim::kMaxSimTime);
    dbg::RunOutcome outcome = session.run(until);
    JsonWriter w;
    dbg::to_json(w, outcome);
    // Fold in async insertion notes so clients see what stepping armed.
    std::string doc = w.take();
    std::vector<std::string> notes = session.take_notes();
    if (!notes.empty()) {
      JsonWriter nw;
      nw.begin_array();
      for (const std::string& n : notes) nw.value(n);
      nw.end_array();
      doc.back() = ',';
      doc += "\"notes\":" + nw.take() + "}";
    }
    return make_result_frame(id_json, doc);
  }

  if (method == "info_links") return view_frame(id_json, session.links_view());
  if (method == "info_profile") return view_frame(id_json, session.profile_snapshot());
  if (method == "info_shards") return view_frame(id_json, session.shard_profile());
  if (method == "info_filter") {
    std::string name = p.str_or("name");
    if (name.empty()) return missing("name");
    return result_frame(id_json, session.filter_view(name));
  }
  if (method == "info_sched") {
    std::string module = p.str_or("module");
    if (module.empty()) return missing("module");
    return result_frame(id_json, session.sched_view(module));
  }
  if (method == "info_last_token") {
    std::string filter = p.str_or("filter");
    if (filter.empty()) return missing("filter");
    return result_frame(id_json, session.last_token_view(filter, p.u64_or("depth", 8)));
  }
  if (method == "link_tokens") {
    std::string iface = p.str_or("iface");
    if (iface.empty()) return missing("iface");
    return result_frame(id_json, session.link_tokens_view(iface));
  }
  if (method == "whence") {
    std::string iface = p.str_or("iface");
    if (iface.empty()) return missing("iface");
    return result_frame(id_json,
                        session.whence_chain(iface, p.u64_or("slot", 0), p.u64_or("depth", 8)));
  }

  if (method == "breakpoints") {
    JsonWriter w;
    w.begin_object().key("breakpoints").begin_array();
    for (const dbg::BreakpointInfo& bp : session.breakpoints()) dbg::to_json(w, bp);
    w.end_array().end_object();
    return make_result_frame(id_json, w.take());
  }
  if (method == "catch_work") {
    std::string filter = p.str_or("filter");
    if (filter.empty()) return missing("filter");
    return bp_frame(id_json, session.catch_work(filter));
  }
  if (method == "catch_tokens") {
    std::string filter = p.str_or("filter");
    if (filter.empty()) return missing("filter");
    const JsonValue* counts = p.find("counts");
    if (counts == nullptr || !counts->is_object() || counts->size() == 0)
      return missing("counts");
    std::vector<std::pair<std::string, std::uint64_t>> pairs;
    for (std::size_t i = 0; i < counts->size(); ++i)
      pairs.emplace_back(counts->key_at(i), counts->at(i).as_u64());
    return bp_frame(id_json, session.catch_tokens(filter, std::move(pairs)));
  }
  if (method == "catch_all_inputs") {
    std::string filter = p.str_or("filter");
    if (filter.empty()) return missing("filter");
    return bp_frame(id_json, session.catch_all_inputs(filter, p.u64_or("count", 1)));
  }
  if (method == "break_receive") {
    std::string iface = p.str_or("iface");
    if (iface.empty()) return missing("iface");
    return bp_frame(id_json, session.break_on_receive(iface));
  }
  if (method == "break_send") {
    std::string iface = p.str_or("iface");
    if (iface.empty()) return missing("iface");
    return bp_frame(id_json, session.break_on_send(iface));
  }
  if (method == "break_occupancy") {
    std::string iface = p.str_or("iface");
    if (iface.empty()) return missing("iface");
    return bp_frame(id_json,
                    session.break_on_occupancy(iface, p.u64_or("threshold", 1)));
  }
  if (method == "break_schedule") {
    std::string filter = p.str_or("filter");
    if (filter.empty()) return missing("filter");
    return bp_frame(id_json, session.break_on_schedule(filter));
  }
  if (method == "delete_breakpoint") {
    const JsonValue* bid = p.find("id");
    if (bid == nullptr) return missing("id");
    return status_frame(id_json, session.delete_breakpoint(
                                     dbg::BpId(static_cast<std::uint32_t>(bid->as_u64()))));
  }
  if (method == "enable_breakpoint") {
    const JsonValue* bid = p.find("id");
    if (bid == nullptr) return missing("id");
    return status_frame(
        id_json, session.set_breakpoint_enabled(
                     dbg::BpId(static_cast<std::uint32_t>(bid->as_u64())),
                     p.bool_or("enabled", true)));
  }
  if (method == "step_both") {
    std::string iface = p.str_or("iface");
    Status s = iface.empty() ? session.step_both() : session.step_both_iface(iface);
    return status_frame(id_json, s);
  }

  if (method == "inject" || method == "replace") {
    std::string iface = p.str_or("iface");
    if (iface.empty()) return missing("iface");
    const JsonValue* value = p.find("value");
    if (value == nullptr || !value->is_string()) return missing("value");
    const dbg::DLink* dl = session.graph().link_by_iface(iface);
    if (dl == nullptr)
      return make_error_frame(
          id_json, Status::error(ErrCode::kNotFound, "no link on interface: " + iface));
    pedf::Link* fl = session.app().link_by_id(pedf::LinkId(dl->id));
    // The same value grammar the CLI accepts: "5", "0x1f", "Field=1,Other=2".
    auto v = cli::Interpreter::parse_value(fl->type(), value->as_string());
    if (!v.ok()) return make_error_frame(id_json, v.status());
    Status s = method == "inject"
                   ? session.inject_token(iface, std::move(*v))
                   : session.replace_token(iface, p.u64_or("slot", 0), std::move(*v));
    return status_frame(id_json, s);
  }
  if (method == "remove") {
    std::string iface = p.str_or("iface");
    if (iface.empty()) return missing("iface");
    return status_frame(id_json, session.remove_token(iface, p.u64_or("slot", 0)));
  }

  if (method == "exec") {
    if (!config_.allow_exec)
      return make_error_frame(id_json,
                              Status::error(ErrCode::kFailedPrecondition,
                                            "exec is disabled on this server"));
    const JsonValue* line = p.find("line");
    if (line == nullptr || !line->is_string()) return missing("line");
    // One interpreter per session, created on first use on the owning shard.
    if (hs.interp == nullptr) hs.interp = std::make_unique<cli::Interpreter>(session);
    Status s = hs.interp->execute(line->as_string());
    std::string output = hs.interp->console().take();
    JsonWriter w;
    w.begin_object();
    w.kv("ok", s.ok());
    w.kv("output", output);
    if (!s.ok()) {
      w.kv("error", s.message());
      w.kv("err", to_string(s.code()));
    }
    w.end_object();
    return make_result_frame(id_json, w.take());
  }

  if (method == "journal") {
    JsonWriter w;
    hs.journal->write_json(w, link_namer(hs));
    return make_result_frame(id_json, w.take());
  }

  return make_error_frame(id_json, kErrMethodNotFound, "unknown method: " + method,
                          ErrCode::kUnimplemented);
}

}  // namespace dfdbg::server

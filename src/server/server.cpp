#include "dfdbg/server/server.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "dfdbg/common/json.hpp"
#include "dfdbg/common/strings.hpp"
#include "dfdbg/obs/journal.hpp"
#include "dfdbg/obs/metrics.hpp"
#include "dfdbg/server/protocol.hpp"
#include "dfdbg/sim/kernel.hpp"

namespace dfdbg::server {

namespace {

Status errno_status(const char* what) {
  return Status::error(ErrCode::kIo, strformat("%s: %s", what, std::strerror(errno)));
}

void set_nonblocking(int fd) {
  int flags = fcntl(fd, F_GETFL, 0);
  if (flags >= 0) fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

/// Serializes one structured view as a full result frame.
template <typename V>
std::string view_frame(const std::string& id_json, const V& v) {
  JsonWriter w;
  dbg::to_json(w, v);
  return make_result_frame(id_json, w.take());
}

/// Result<View> -> result frame or mapped error frame.
template <typename V>
std::string result_frame(const std::string& id_json, const Result<V>& r) {
  if (!r.ok()) return make_error_frame(id_json, r.status());
  return view_frame(id_json, *r);
}

/// Result<BpId> -> {"breakpoint":<id>}.
std::string bp_frame(const std::string& id_json, const Result<dbg::BpId>& r) {
  if (!r.ok()) return make_error_frame(id_json, r.status());
  JsonWriter w;
  w.begin_object().kv("breakpoint", r->value()).end_object();
  return make_result_frame(id_json, w.take());
}

/// Status -> {"ok":true} or error frame.
std::string status_frame(const std::string& id_json, const Status& s) {
  if (!s.ok()) return make_error_frame(id_json, s);
  return make_result_frame(id_json, "{\"ok\":true}");
}

constexpr const char* kMethods[] = {
    "ping",           "capabilities",      "run",
    "info_links",     "info_filter",       "info_sched",
    "info_profile",   "info_last_token",   "link_tokens",
    "whence",         "breakpoints",       "catch_work",
    "catch_tokens",   "catch_all_inputs",  "break_receive",
    "break_send",     "break_occupancy",   "break_schedule",
    "delete_breakpoint", "enable_breakpoint", "step_both",
    "inject",         "remove",            "replace",
    "exec",           "journal",           "stats",
    "info_stats",     "info_shards",       "subscribe",
    "unsubscribe",    "shutdown",
};

/// The subscribable stream names (the protocol's spelling).
constexpr const char* kStreamJournal = "journal";
constexpr const char* kStreamFlow = "info_flow";
constexpr const char* kStreamStats = "stats";
constexpr const char* kStreamRunEvents = "run_events";
constexpr const char* kStreamShardRounds = "shard_rounds";

/// Subscription-layer instruments, interned once.
struct SubMetrics {
  obs::Counter& notifications;  ///< push frames enqueued, any stream
  obs::Counter& dropped;        ///< journal events lost to ring laps (gap total)
  obs::Counter& coalesced;      ///< periodic snapshots skipped on a full buffer
  static SubMetrics& get() {
    auto& r = obs::Registry::global();
    static SubMetrics m{r.counter("server.sub.notifications"),
                        r.counter("server.sub.dropped"),
                        r.counter("server.sub.coalesced")};
    return m;
  }
};

}  // namespace

DebugServer::DebugServer(dbg::Session& session, ServerConfig config)
    : session_(session),
      config_(config),
      interp_(std::make_unique<cli::Interpreter>(session)) {
  if (pipe(wake_pipe_) == 0) {
    set_nonblocking(wake_pipe_[0]);
    set_nonblocking(wake_pipe_[1]);
  }
  // Stops fire while a `run`/`exec` verb is still executing; the observer
  // pushes them to run_events subscribers ahead of the pending response.
  session_.set_stop_observer([this](const dbg::StopEvent& ev) { on_stop_event(ev); });
}

DebugServer::~DebugServer() {
  session_.set_stop_observer(nullptr);
  for (std::size_t i = clients_.size(); i > 0; --i) close_client(i - 1);
  if (listen_fd_ >= 0) close(listen_fd_);
  if (!unix_path_.empty()) unlink(unix_path_.c_str());
  if (wake_pipe_[0] >= 0) close(wake_pipe_[0]);
  if (wake_pipe_[1] >= 0) close(wake_pipe_[1]);
}

Result<int> DebugServer::listen_tcp(const std::string& host, int port) {
  int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return errno_status("socket");
  int one = 1;
  setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    close(fd);
    return Status::error(ErrCode::kInvalidArgument, "bad listen address: " + host);
  }
  if (bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    Status s = errno_status("bind");
    close(fd);
    return s;
  }
  if (listen(fd, 16) != 0) {
    Status s = errno_status("listen");
    close(fd);
    return s;
  }
  socklen_t len = sizeof(addr);
  getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len);
  set_nonblocking(fd);
  listen_fd_ = fd;
  port_ = ntohs(addr.sin_port);
  return port_;
}

Status DebugServer::listen_unix(const std::string& path) {
  sockaddr_un addr{};
  if (path.size() >= sizeof(addr.sun_path))
    return Status::error(ErrCode::kInvalidArgument, "socket path too long: " + path);
  int fd = socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return errno_status("socket");
  unlink(path.c_str());
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  if (bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    Status s = errno_status("bind");
    close(fd);
    return s;
  }
  if (listen(fd, 16) != 0) {
    Status s = errno_status("listen");
    close(fd);
    return s;
  }
  set_nonblocking(fd);
  listen_fd_ = fd;
  unix_path_ = path;
  return Status{};
}

void DebugServer::request_shutdown() {
  char b = 1;
  if (wake_pipe_[1] >= 0) {
    ssize_t n = write(wake_pipe_[1], &b, 1);
    (void)n;
  }
}

void DebugServer::accept_clients() {
  for (;;) {
    int fd = accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) return;
    if (clients_.size() >= config_.max_clients) {
      close(fd);
      obs::Registry::global().counter("server.refused").add();
      continue;
    }
    set_nonblocking(fd);
    int one = 1;
    setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));  // no-op on AF_UNIX
    Client c;
    c.fd = fd;
    clients_.push_back(std::move(c));
    obs::Registry::global().counter("server.accepts").add();
    obs::Registry::global().gauge("server.clients").set(static_cast<std::int64_t>(clients_.size()));
  }
}

void DebugServer::close_client(std::size_t i) {
  close(clients_[i].fd);
  clients_.erase(clients_.begin() + static_cast<std::ptrdiff_t>(i));
  obs::Registry::global().gauge("server.clients").set(static_cast<std::int64_t>(clients_.size()));
}

void DebugServer::enqueue(Client& c, std::string frame) {
  // server.bytes_out is counted at the actual send (flush_output / the
  // graceful final flush), so short writes and dropped clients never
  // over- or double-count.
  c.out += frame;
  c.out += '\n';
}

obs::Journal::LinkNamer DebugServer::link_namer() {
  return [this](std::uint32_t link) {
    pedf::Link* l = session_.app().link_by_id(pedf::LinkId(link));
    return l != nullptr ? l->name() : strformat("link#%u", link);
  };
}

void DebugServer::push_notification(Client& c, const std::string& method,
                                    std::string params_json) {
  enqueue(c, make_notification_frame(method, params_json));
  SubMetrics::get().notifications.add();
}

void DebugServer::pump_client(Client& c, bool tick_due) {
  // Journal deltas first: they are the stream with real history behind it,
  // and pausing them (rather than dropping) is what makes the cursor/gap
  // contract work — the ring only laps a reader that stays slow.
  if (c.sub_journal) {
    obs::Journal& j = obs::Journal::global();
    while (c.out.size() < config_.max_outbound_bytes && c.journal_cursor < j.cursor()) {
      JsonWriter w;
      obs::Journal::Slice s =
          j.write_delta_json(w, c.journal_cursor, config_.journal_batch, link_namer());
      c.journal_cursor = s.next;
      if (s.gap > 0) SubMetrics::get().dropped.add(s.gap);
      if (s.count == 0 && s.gap == 0) break;
      push_notification(c, "journal.delta", w.take());
    }
  }
  // Shard rounds pump like the journal: cursor-driven, not tick-gated — the
  // ring only grows while a `run` verb executes, so draining after each
  // request round keeps the stream current with no periodic wakeups. Round
  // ids are monotonic, so a paused reader resumes where it left off (evicted
  // records are simply skipped; the ring is a bounded window, not a log).
  if (c.sub_shard_rounds) {
    const sim::Kernel& k = session_.app().kernel();
    while (c.out.size() < config_.max_outbound_bytes) {
      std::vector<sim::BarrierRoundRecord> recs =
          k.round_records_after(c.shard_cursor, config_.journal_batch);
      if (recs.empty()) break;
      JsonWriter w;
      w.begin_object();
      w.kv("time", k.now());
      w.key("rounds").begin_array();
      for (const sim::BarrierRoundRecord& r : recs) dbg::to_json(w, r);
      w.end_array().end_object();
      c.shard_cursor = recs.back().round;
      push_notification(c, "shard.rounds", w.take());
    }
  }
  if (!tick_due) return;
  // Periodic snapshots: coalesce (skip whole ticks) while the client is
  // over its outbound bound — a snapshot is a *current state*, so skipping
  // loses nothing a later tick does not re-deliver.
  if (c.sub_flow) {
    if (c.out.size() >= config_.max_outbound_bytes) {
      SubMetrics::get().coalesced.add();
    } else {
      JsonWriter w;
      w.begin_object();
      w.kv("time", session_.app().kernel().now());
      w.key("links").begin_array();
      for (const dbg::LinkRow& l : session_.links_view().links) {
        auto& prev = c.flow_prev[l.name];
        w.begin_object()
            .kv("name", l.name)
            .kv("occupancy", static_cast<std::uint64_t>(l.occupancy))
            .kv("pushes", l.pushes)
            .kv("pops", l.pops)
            .kv("d_pushes", l.pushes - prev.first)
            .kv("d_pops", l.pops - prev.second)
            .end_object();
        prev = {l.pushes, l.pops};
      }
      w.end_array();
      w.key("filters").begin_array();
      for (const dbg::ProfileRow& r : session_.profile_snapshot().rows) {
        w.begin_object()
            .kv("path", r.path)
            .kv("firings", r.firings)
            .kv("cycles", r.cycles)
            .end_object();
      }
      w.end_array();
      w.end_object();
      push_notification(c, "flow.snapshot", w.take());
    }
  }
  if (c.sub_stats) {
    if (c.out.size() >= config_.max_outbound_bytes) {
      SubMetrics::get().coalesced.add();
    } else {
      std::size_t changed = 0;
      std::string delta = obs::Registry::global().snapshot_delta(c.stats_prev, &changed);
      // An all-empty delta carries no information; skip the frame entirely.
      if (changed > 0) push_notification(c, "stats.delta", std::move(delta));
    }
  }
}

void DebugServer::on_stop_event(const dbg::StopEvent& ev) {
  bool any = false;
  for (Client& c : clients_)
    if (c.sub_run_events) any = true;
  if (!any) return;
  JsonWriter w;
  dbg::to_json(w, ev);
  std::string params = w.take();
  for (Client& c : clients_) {
    if (!c.sub_run_events) continue;
    push_notification(c, "run.event", params);
    // Best-effort immediate delivery: the poll loop is parked inside the
    // dispatch that triggered this stop, so without this send the event
    // would sit buffered until the response completes. Never closes the
    // client here — on a hard error the data stays queued and the poll
    // loop's next flush_output() sees the same error and owns the close.
    while (!c.out.empty()) {
      ssize_t n = send(c.fd, c.out.data(), c.out.size(), MSG_NOSIGNAL);
      if (n <= 0) break;
      obs::Registry::global().counter("server.bytes_out").add(static_cast<std::uint64_t>(n));
      c.out.erase(0, static_cast<std::size_t>(n));
    }
  }
}

bool DebugServer::service_input(std::size_t i) {
  Client& c = clients_[i];
  char buf[65536];
  bool eof = false;
  for (;;) {
    ssize_t n = recv(c.fd, buf, sizeof(buf), 0);
    if (n > 0) {
      obs::Registry::global().counter("server.bytes_in").add(static_cast<std::uint64_t>(n));
      c.in.append(buf, static_cast<std::size_t>(n));
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    // 0 = orderly disconnect, <0 = error. Complete frames already received
    // are still executed below (shutdown(SHUT_WR)-then-read clients, and
    // fire-and-forget requests whose effects must land); then we close.
    eof = true;
    break;
  }
  std::size_t start = 0;
  for (;;) {
    std::size_t nl = c.in.find('\n', start);
    if (nl == std::string::npos) break;
    std::string_view line(c.in.data() + start, nl - start);
    if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
    start = nl + 1;
    if (line.empty()) continue;
    if (line.size() > config_.max_frame_bytes) {
      enqueue(c, make_error_frame("null", kErrInvalidRequest, "frame too large",
                                  ErrCode::kInvalidArgument));
      c.close_after_flush = true;
      break;
    }
    enqueue(c, handle_frame_for(line, &c));
    if (shutdown_) break;
  }
  c.in.erase(0, start);
  if (c.in.size() > config_.max_frame_bytes) {
    // The peer is streaming an unterminated frame; cut it off.
    enqueue(c, make_error_frame("null", kErrInvalidRequest, "frame too large",
                                ErrCode::kInvalidArgument));
    c.close_after_flush = true;
    c.in.clear();
  }
  if (eof) {
    if (c.out.empty()) {
      close_client(i);
      return false;
    }
    c.close_after_flush = true;
  }
  return true;
}

bool DebugServer::flush_output(std::size_t i) {
  Client& c = clients_[i];
  while (!c.out.empty()) {
    ssize_t n = send(c.fd, c.out.data(), c.out.size(), MSG_NOSIGNAL);
    if (n > 0) {
      obs::Registry::global().counter("server.bytes_out").add(static_cast<std::uint64_t>(n));
      c.out.erase(0, static_cast<std::size_t>(n));
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return true;
    close_client(i);
    return false;
  }
  if (c.close_after_flush) {
    close_client(i);
    return false;
  }
  return true;
}

Status DebugServer::serve() {
  if (listen_fd_ < 0)
    return Status::error(ErrCode::kFailedPrecondition, "serve: not listening (call listen_* first)");
  shutdown_ = false;
  last_tick_ = std::chrono::steady_clock::now();
  while (!shutdown_) {
    std::vector<pollfd> fds;
    fds.push_back({wake_pipe_[0], POLLIN, 0});
    fds.push_back({listen_fd_, POLLIN, 0});
    bool periodic = false;
    for (const Client& c : clients_) {
      fds.push_back({c.fd, static_cast<short>(POLLIN | (c.out.empty() ? 0 : POLLOUT)), 0});
      if (c.wants_tick()) periodic = true;
    }
    // Periodic subscribers turn the poll into a ticking one; otherwise the
    // loop stays fully event-driven (no idle wakeups).
    int rc = poll(fds.data(), fds.size(), periodic ? config_.tick_ms : -1);
    if (rc < 0) {
      if (errno == EINTR) continue;
      return errno_status("poll");
    }
    if ((fds[0].revents & POLLIN) != 0) {
      char drain[64];
      while (read(wake_pipe_[0], drain, sizeof(drain)) > 0) {
      }
      shutdown_ = true;
    }
    // Service only the clients that were polled (fds built before accept:
    // connections accepted this round are polled next round). Walk back to
    // front: close_client erases by index, leaving lower indexes stable.
    std::size_t polled = fds.size() - 2;
    if ((fds[1].revents & POLLIN) != 0) accept_clients();
    for (std::size_t i = polled; i > 0; --i) {
      std::size_t idx = i - 1;
      short re = fds[2 + idx].revents;
      if (re == 0) continue;
      if ((re & (POLLERR | POLLNVAL)) != 0) {
        close_client(idx);
        continue;
      }
      if ((re & POLLIN) != 0 && !service_input(idx)) continue;
      // POLLHUP without readable data: the peer is gone and writes cannot
      // succeed; anything still queued is undeliverable.
      if ((re & POLLHUP) != 0 && (re & POLLIN) == 0) {
        close_client(idx);
        continue;
      }
      // A POLLOUT-only wakeup (no POLLIN this round) must still drain the
      // pending out buffer, or a paused reader would deadlock the stream.
      if ((re & POLLOUT) != 0) flush_output(idx);
    }
    // Push-stream pump: now that requests ran (the journal may have grown)
    // and sockets drained (buffers may have room), produce what each
    // subscriber is owed, then flush eagerly. Reverse walk: flush_output
    // may close (erase) the client.
    auto now = std::chrono::steady_clock::now();
    bool tick_due =
        periodic && now - last_tick_ >= std::chrono::milliseconds(config_.tick_ms);
    if (tick_due) last_tick_ = now;
    for (std::size_t i = clients_.size(); i > 0; --i) {
      Client& c = clients_[i - 1];
      if (c.subscribed()) pump_client(c, tick_due);
      if (!c.out.empty()) flush_output(i - 1);
    }
  }
  // Graceful exit: flush what clients are owed (briefly, blocking), then close.
  for (std::size_t i = clients_.size(); i > 0; --i) {
    Client& c = clients_[i - 1];
    if (!c.out.empty()) {
      int flags = fcntl(c.fd, F_GETFL, 0);
      if (flags >= 0) fcntl(c.fd, F_SETFL, flags & ~O_NONBLOCK);
      ssize_t n = send(c.fd, c.out.data(), c.out.size(), MSG_NOSIGNAL);
      if (n > 0)
        obs::Registry::global().counter("server.bytes_out").add(static_cast<std::uint64_t>(n));
    }
    close_client(i - 1);
  }
  return Status{};
}

std::string DebugServer::handle_frame(std::string_view frame) {
  return handle_frame_for(frame, nullptr);
}

std::string DebugServer::handle_frame_for(std::string_view frame, Client* client) {
  obs::Registry::global().counter("server.requests").add();
  obs::ScopedTimer timer(obs::Registry::global().histogram("server.request_ns"));
  auto parsed = JsonValue::parse(frame);
  if (!parsed.ok()) {
    obs::Registry::global().counter("server.errors").add();
    return make_error_frame("null", kErrParse, parsed.status().message(), ErrCode::kParseError);
  }
  if (!parsed->is_object()) {
    obs::Registry::global().counter("server.errors").add();
    return make_error_frame("null", kErrInvalidRequest, "request is not a JSON object",
                            ErrCode::kInvalidArgument);
  }
  const JsonValue* id = parsed->find("id");
  std::string id_json = id != nullptr ? id->dump() : "null";
  std::string method = parsed->str_or("method");
  if (method.empty()) {
    obs::Registry::global().counter("server.errors").add();
    return make_error_frame(id_json, kErrInvalidRequest, "missing method",
                            ErrCode::kInvalidArgument);
  }
  obs::Registry::global().counter(std::string("server.req.") + method).add();
  static const JsonValue kNoParams;
  const JsonValue* params = parsed->find("params");
  std::string response =
      dispatch(method, params != nullptr ? *params : kNoParams, id_json, client);
  // Every error frame carries this exact unescaped marker (protocol.cpp);
  // inside result payloads the quotes would be \"-escaped.
  if (response.find(",\"error\":{\"code\":") != std::string::npos)
    obs::Registry::global().counter("server.errors").add();
  return response;
}

std::string DebugServer::dispatch(const std::string& method, const JsonValue& p,
                                  const std::string& id_json, Client* client) {
  auto missing = [&](const char* param) {
    return make_error_frame(id_json, kErrInvalidParams,
                            strformat("missing required param: %s", param),
                            ErrCode::kInvalidArgument);
  };

  if (method == "ping") return make_result_frame(id_json, "{\"pong\":true}");

  if (method == "capabilities") {
    JsonWriter w;
    w.begin_object();
    w.kv("protocol", 1);
    w.kv("exec", config_.allow_exec);
    w.kv("max_frame_bytes", static_cast<std::uint64_t>(config_.max_frame_bytes));
    w.kv("backend", sim::to_string(session_.app().kernel().backend()));
    w.kv("workers", static_cast<std::uint64_t>(session_.app().kernel().partition_count()));
    w.key("methods").begin_array();
    for (const char* m : kMethods) w.value(m);
    w.end_array();
    w.key("streams").begin_array();
    for (const char* s : {kStreamJournal, kStreamFlow, kStreamStats, kStreamRunEvents,
                          kStreamShardRounds})
      w.value(s);
    w.end_array();
    w.end_object();
    return make_result_frame(id_json, w.take());
  }

  if (method == "run") {
    sim::SimTime until = p.u64_or("until", sim::kMaxSimTime);
    dbg::RunOutcome outcome = session_.run(until);
    JsonWriter w;
    dbg::to_json(w, outcome);
    // Fold in async insertion notes so clients see what stepping armed.
    std::string doc = w.take();
    std::vector<std::string> notes = session_.take_notes();
    if (!notes.empty()) {
      JsonWriter nw;
      nw.begin_array();
      for (const std::string& n : notes) nw.value(n);
      nw.end_array();
      doc.back() = ',';
      doc += "\"notes\":" + nw.take() + "}";
    }
    return make_result_frame(id_json, doc);
  }

  if (method == "info_links") return view_frame(id_json, session_.links_view());
  if (method == "info_profile") return view_frame(id_json, session_.profile_snapshot());
  if (method == "info_shards") return view_frame(id_json, session_.shard_profile());
  if (method == "info_filter") {
    std::string name = p.str_or("name");
    if (name.empty()) return missing("name");
    return result_frame(id_json, session_.filter_view(name));
  }
  if (method == "info_sched") {
    std::string module = p.str_or("module");
    if (module.empty()) return missing("module");
    return result_frame(id_json, session_.sched_view(module));
  }
  if (method == "info_last_token") {
    std::string filter = p.str_or("filter");
    if (filter.empty()) return missing("filter");
    return result_frame(id_json, session_.last_token_view(filter, p.u64_or("depth", 8)));
  }
  if (method == "link_tokens") {
    std::string iface = p.str_or("iface");
    if (iface.empty()) return missing("iface");
    return result_frame(id_json, session_.link_tokens_view(iface));
  }
  if (method == "whence") {
    std::string iface = p.str_or("iface");
    if (iface.empty()) return missing("iface");
    return result_frame(id_json,
                        session_.whence_chain(iface, p.u64_or("slot", 0), p.u64_or("depth", 8)));
  }

  if (method == "breakpoints") {
    JsonWriter w;
    w.begin_object().key("breakpoints").begin_array();
    for (const dbg::BreakpointInfo& bp : session_.breakpoints()) dbg::to_json(w, bp);
    w.end_array().end_object();
    return make_result_frame(id_json, w.take());
  }
  if (method == "catch_work") {
    std::string filter = p.str_or("filter");
    if (filter.empty()) return missing("filter");
    return bp_frame(id_json, session_.catch_work(filter));
  }
  if (method == "catch_tokens") {
    std::string filter = p.str_or("filter");
    if (filter.empty()) return missing("filter");
    const JsonValue* counts = p.find("counts");
    if (counts == nullptr || !counts->is_object() || counts->size() == 0)
      return missing("counts");
    std::vector<std::pair<std::string, std::uint64_t>> pairs;
    for (std::size_t i = 0; i < counts->size(); ++i)
      pairs.emplace_back(counts->key_at(i), counts->at(i).as_u64());
    return bp_frame(id_json, session_.catch_tokens(filter, std::move(pairs)));
  }
  if (method == "catch_all_inputs") {
    std::string filter = p.str_or("filter");
    if (filter.empty()) return missing("filter");
    return bp_frame(id_json, session_.catch_all_inputs(filter, p.u64_or("count", 1)));
  }
  if (method == "break_receive") {
    std::string iface = p.str_or("iface");
    if (iface.empty()) return missing("iface");
    return bp_frame(id_json, session_.break_on_receive(iface));
  }
  if (method == "break_send") {
    std::string iface = p.str_or("iface");
    if (iface.empty()) return missing("iface");
    return bp_frame(id_json, session_.break_on_send(iface));
  }
  if (method == "break_occupancy") {
    std::string iface = p.str_or("iface");
    if (iface.empty()) return missing("iface");
    return bp_frame(id_json,
                    session_.break_on_occupancy(iface, p.u64_or("threshold", 1)));
  }
  if (method == "break_schedule") {
    std::string filter = p.str_or("filter");
    if (filter.empty()) return missing("filter");
    return bp_frame(id_json, session_.break_on_schedule(filter));
  }
  if (method == "delete_breakpoint") {
    const JsonValue* bid = p.find("id");
    if (bid == nullptr) return missing("id");
    return status_frame(id_json, session_.delete_breakpoint(
                                     dbg::BpId(static_cast<std::uint32_t>(bid->as_u64()))));
  }
  if (method == "enable_breakpoint") {
    const JsonValue* bid = p.find("id");
    if (bid == nullptr) return missing("id");
    return status_frame(
        id_json, session_.set_breakpoint_enabled(
                     dbg::BpId(static_cast<std::uint32_t>(bid->as_u64())),
                     p.bool_or("enabled", true)));
  }
  if (method == "step_both") {
    std::string iface = p.str_or("iface");
    Status s = iface.empty() ? session_.step_both() : session_.step_both_iface(iface);
    return status_frame(id_json, s);
  }

  if (method == "inject" || method == "replace") {
    std::string iface = p.str_or("iface");
    if (iface.empty()) return missing("iface");
    const JsonValue* value = p.find("value");
    if (value == nullptr || !value->is_string()) return missing("value");
    const dbg::DLink* dl = session_.graph().link_by_iface(iface);
    if (dl == nullptr)
      return make_error_frame(
          id_json, Status::error(ErrCode::kNotFound, "no link on interface: " + iface));
    pedf::Link* fl = session_.app().link_by_id(pedf::LinkId(dl->id));
    // The same value grammar the CLI accepts: "5", "0x1f", "Field=1,Other=2".
    auto v = cli::Interpreter::parse_value(fl->type(), value->as_string());
    if (!v.ok()) return make_error_frame(id_json, v.status());
    Status s = method == "inject"
                   ? session_.inject_token(iface, std::move(*v))
                   : session_.replace_token(iface, p.u64_or("slot", 0), std::move(*v));
    return status_frame(id_json, s);
  }
  if (method == "remove") {
    std::string iface = p.str_or("iface");
    if (iface.empty()) return missing("iface");
    return status_frame(id_json, session_.remove_token(iface, p.u64_or("slot", 0)));
  }

  if (method == "exec") {
    if (!config_.allow_exec)
      return make_error_frame(id_json,
                              Status::error(ErrCode::kFailedPrecondition,
                                            "exec is disabled on this server"));
    const JsonValue* line = p.find("line");
    if (line == nullptr || !line->is_string()) return missing("line");
    Status s = interp_->execute(line->as_string());
    std::string output = interp_->console().take();
    JsonWriter w;
    w.begin_object();
    w.kv("ok", s.ok());
    w.kv("output", output);
    if (!s.ok()) {
      w.kv("error", s.message());
      w.kv("err", to_string(s.code()));
    }
    w.end_object();
    return make_result_frame(id_json, w.take());
  }

  if (method == "journal") {
    JsonWriter w;
    obs::Journal::global().write_json(w, link_namer());
    return make_result_frame(id_json, w.take());
  }

  if (method == "stats" || method == "info_stats") {
    // `format: "prom"` wraps the Prometheus exposition text as a JSON
    // string (the frame itself must stay JSON); anything else gets
    // Registry::to_json(), one compact object with histogram entries
    // carrying p50/p90/p99 estimates from the log2 buckets.
    if (p.str_or("format") == "prom") {
      JsonWriter w;
      w.begin_object()
          .kv("format", "prom")
          .kv("body", obs::Registry::global().to_prometheus())
          .end_object();
      return make_result_frame(id_json, w.take());
    }
    return make_result_frame(id_json, obs::Registry::global().to_json());
  }

  if (method == "subscribe" || method == "unsubscribe") {
    if (client == nullptr)
      return make_error_frame(
          id_json, Status::error(ErrCode::kFailedPrecondition,
                                 method + " requires a socket connection to push to"));
    bool on = method == "subscribe";
    std::string stream = p.str_or("stream");
    if (stream.empty() && on) return missing("stream");
    JsonWriter w;
    w.begin_object().kv("ok", true);
    if (stream == kStreamJournal) {
      client->sub_journal = on;
      if (on) {
        // Default: tail from "now". An explicit cursor resumes an earlier
        // read (0 replays the whole retained window, reporting the gap).
        client->journal_cursor = p.find("cursor") != nullptr
                                     ? p.u64_or("cursor", 0)
                                     : obs::Journal::global().cursor();
        w.kv("stream", stream).kv("cursor", client->journal_cursor);
      }
    } else if (stream == kStreamFlow) {
      client->sub_flow = on;
      if (on) {
        client->flow_prev.clear();
        w.kv("stream", stream);
      }
    } else if (stream == kStreamStats) {
      client->sub_stats = on;
      if (on) {
        // A fresh snapshot makes the first delta carry the full registry.
        client->stats_prev = obs::StatsSnapshot{};
        w.kv("stream", stream);
      }
    } else if (stream == kStreamRunEvents) {
      client->sub_run_events = on;
      if (on) w.kv("stream", stream);
    } else if (stream == kStreamShardRounds) {
      client->sub_shard_rounds = on;
      if (on) {
        // Default: tail from the current round. An explicit cursor resumes
        // an earlier read (0 replays the whole retained ring).
        client->shard_cursor = p.find("cursor") != nullptr
                                   ? p.u64_or("cursor", 0)
                                   : session_.app().kernel().round_count();
        w.kv("stream", stream).kv("cursor", client->shard_cursor);
      }
    } else if (!on && (stream.empty() || stream == "all")) {
      // `unsubscribe` with no stream (or "all") clears everything.
      client->sub_journal = client->sub_flow = client->sub_stats = client->sub_run_events =
          client->sub_shard_rounds = false;
    } else {
      return make_error_frame(
          id_json, Status::error(ErrCode::kInvalidArgument, "unknown stream: " + stream));
    }
    w.end_object();
    return make_result_frame(id_json, w.take());
  }

  if (method == "shutdown") {
    shutdown_ = true;
    return make_result_frame(id_json, "{\"ok\":true,\"shutdown\":true}");
  }

  return make_error_frame(id_json, kErrMethodNotFound, "unknown method: " + method,
                          ErrCode::kUnimplemented);
}

}  // namespace dfdbg::server

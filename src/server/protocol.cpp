#include "dfdbg/server/protocol.hpp"

namespace dfdbg::server {

int jsonrpc_code(ErrCode code) {
  switch (code) {
    case ErrCode::kOk:
      return 0;
    case ErrCode::kInvalidArgument:
      return kErrInvalidParams;
    case ErrCode::kNotFound:
      return kErrNotFound;
    case ErrCode::kFailedPrecondition:
      return kErrFailedPrecondition;
    case ErrCode::kOutOfRange:
      return kErrOutOfRange;
    case ErrCode::kParseError:
      return kErrParse;
    case ErrCode::kIo:
      return kErrIo;
    case ErrCode::kUnimplemented:
      return kErrMethodNotFound;
    case ErrCode::kInternal:
    case ErrCode::kUnknown:
      return kErrInternal;
  }
  return kErrInternal;
}

std::string make_result_frame(const std::string& id_json, const std::string& result_json) {
  std::string out = "{\"jsonrpc\":\"2.0\",\"id\":";
  out += id_json;
  out += ",\"result\":";
  out += result_json;
  out += "}";
  return out;
}

std::string make_error_frame(const std::string& id_json, int code, const std::string& message,
                             ErrCode err) {
  JsonWriter w;
  w.begin_object();
  w.kv("code", static_cast<std::int64_t>(code));
  w.kv("message", message);
  w.key("data");
  w.begin_object();
  w.kv("err", to_string(err));
  w.end_object();
  w.end_object();
  std::string out = "{\"jsonrpc\":\"2.0\",\"id\":";
  out += id_json;
  out += ",\"error\":";
  out += w.take();
  out += "}";
  return out;
}

std::string make_error_frame(const std::string& id_json, const Status& s) {
  return make_error_frame(id_json, jsonrpc_code(s.code()), s.message(), s.code());
}

std::string make_notification_frame(const std::string& method, const std::string& params_json) {
  std::string out = "{\"jsonrpc\":\"2.0\",\"method\":";
  out += json_quote(method);
  out += ",\"params\":";
  out += params_json;
  out += "}";
  return out;
}

}  // namespace dfdbg::server

#include "dfdbg/server/session_manager.hpp"

#include <algorithm>

#include "dfdbg/common/strings.hpp"
#include "dfdbg/obs/metrics.hpp"
#include "dfdbg/sim/kernel.hpp"

namespace dfdbg::server {

namespace {

/// Fleet-layer instruments, interned once (Registry access is mutex-guarded,
/// so this is safe from any shard).
struct FleetMetrics {
  obs::Gauge& count;
  obs::Counter& created;
  obs::Counter& destroyed;
  obs::Counter& evicted;
  obs::Counter& create_failed;
  static FleetMetrics& get() {
    auto& r = obs::Registry::global();
    static FleetMetrics m{r.gauge("server.session.count"),
                          r.counter("server.session.created"),
                          r.counter("server.session.destroyed"),
                          r.counter("server.session.evicted"),
                          r.counter("server.session.create_failed")};
    return m;
  }
};

}  // namespace

SessionManager::SessionManager(dbg::SessionFactory* factory, std::size_t max_sessions)
    : factory_(factory), max_sessions_(max_sessions) {}

SessionManager::~SessionManager() = default;

std::shared_ptr<HostedSession> SessionManager::register_external(
    dbg::Session& session, const std::string& name, const dbg::SessionQuota& quota) {
  std::lock_guard<std::mutex> lk(mu_);
  auto hs = std::make_shared<HostedSession>();
  hs->id = next_id_++;
  hs->name = name;
  hs->rig = "external";
  hs->shard = 0;
  hs->quota = quota;
  hs->is_default = true;
  hs->session = &session;
  hs->journal = &obs::Journal::global_base();
  const sim::Kernel& k = session.app().kernel();
  hs->backend = sim::to_string(k.backend());
  hs->workers = static_cast<int>(k.partition_count());
  sessions_.push_back(hs);
  FleetMetrics::get().count.set(static_cast<std::int64_t>(sessions_.size()));
  return hs;
}

Result<std::shared_ptr<HostedSession>> SessionManager::create(const dbg::SessionSpec& spec,
                                                              int shard,
                                                              std::uint64_t now_ms) {
  auto limit_error = [this]() {
    FleetMetrics::get().create_failed.add();
    return Status::error(ErrCode::kFailedPrecondition,
                         strformat("session limit reached (%zu)", max_sessions_));
  };
  auto name_error = [&spec]() {
    FleetMetrics::get().create_failed.add();
    return Status::error(ErrCode::kInvalidArgument,
                         "session name already in use: " + spec.name);
  };
  auto name_in_use = [this](const std::string& name) {
    for (const auto& s : sessions_)
      if (s->name == name) return true;
    return false;
  };
  // Pre-check so an over-limit/duplicate request fails before paying for a
  // rig build. Not authoritative: the lock drops across the build.
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (sessions_.size() >= max_sessions_) return limit_error();
    if (!spec.name.empty() && name_in_use(spec.name)) return name_error();
  }
  if (factory_ == nullptr) {
    FleetMetrics::get().create_failed.add();
    return Status::error(ErrCode::kFailedPrecondition,
                         "this server has no session factory (session_create disabled)");
  }
  // Build outside the table lock: rig construction is the expensive part and
  // the factory serializes itself.
  auto world = factory_->build(spec);
  if (!world.ok()) {
    FleetMetrics::get().create_failed.add();
    return world.status();
  }
  // On the failure paths below, `built` unwinds on this thread — the owning
  // shard's, where the factory just created its fibers.
  std::unique_ptr<dbg::SessionWorld> built = std::move(*world);

  std::lock_guard<std::mutex> lk(mu_);
  // Re-validate: a concurrent create on another shard may have consumed the
  // last slot or claimed the name while the factory was building.
  if (sessions_.size() >= max_sessions_) return limit_error();
  if (!spec.name.empty() && name_in_use(spec.name)) return name_error();
  auto hs = std::make_shared<HostedSession>();
  hs->id = next_id_++;
  if (spec.name.empty()) {
    // Auto-name ("s<id>"): could collide with an explicitly chosen name;
    // disambiguate. Explicit duplicates were rejected above instead.
    hs->name = strformat("s%llu", static_cast<unsigned long long>(hs->id));
    if (name_in_use(hs->name))
      hs->name += strformat("-%llu", static_cast<unsigned long long>(hs->id));
  } else {
    hs->name = spec.name;
  }
  hs->rig = spec.rig;
  hs->shard = shard;
  hs->quota = spec.quota;
  hs->world = std::move(built);
  hs->session = hs->world->session.get();
  hs->journal = hs->world->journal.get();
  const sim::Kernel& k = hs->session->app().kernel();
  hs->backend = sim::to_string(k.backend());
  hs->workers = static_cast<int>(k.partition_count());
  hs->last_used_ms.store(now_ms, std::memory_order_relaxed);
  hs->sync_stats();
  sessions_.push_back(hs);
  FleetMetrics::get().created.add();
  FleetMetrics::get().count.set(static_cast<std::int64_t>(sessions_.size()));
  return hs;
}

Status SessionManager::destroy(std::uint64_t id, bool evicted) {
  std::shared_ptr<HostedSession> doomed;
  {
    std::lock_guard<std::mutex> lk(mu_);
    auto it = std::find_if(sessions_.begin(), sessions_.end(),
                           [&](const auto& s) { return s->id == id; });
    if (it == sessions_.end())
      return Status::error(ErrCode::kNotFound,
                           strformat("no session %llu", static_cast<unsigned long long>(id)));
    if ((*it)->is_default)
      return Status::error(ErrCode::kFailedPrecondition,
                           "the default session cannot be destroyed");
    doomed = std::move(*it);
    sessions_.erase(it);
    FleetMetrics::get().count.set(static_cast<std::int64_t>(sessions_.size()));
  }
  // World teardown outside the lock, on the owning shard's thread (the
  // caller's): fiber stacks unwind where they were created. The struct
  // itself may outlive this call — a cross-shard find() pin keeps it alive,
  // reading only identity fields and atomic mirrors — so only the world is
  // released here; the pointers into it are owning-shard-only state.
  if (doomed->session != nullptr) doomed->session->set_stop_observer(nullptr);
  doomed->interp.reset();
  doomed->session = nullptr;
  doomed->journal = nullptr;
  doomed->world.reset();
  doomed.reset();
  FleetMetrics::get().destroyed.add();
  if (evicted) FleetMetrics::get().evicted.add();
  return Status{};
}

void SessionManager::destroy_all_on_shard(int shard) {
  for (;;) {
    std::uint64_t id = 0;
    {
      std::lock_guard<std::mutex> lk(mu_);
      for (const auto& s : sessions_)
        if (s->shard == shard && s->world != nullptr) {
          id = s->id;
          break;
        }
    }
    if (id == 0) return;
    destroy(id);
  }
}

std::shared_ptr<HostedSession> SessionManager::find(std::uint64_t id) {
  std::lock_guard<std::mutex> lk(mu_);
  for (const auto& s : sessions_)
    if (s->id == id) return s;
  return nullptr;
}

std::shared_ptr<HostedSession> SessionManager::find(const std::string& name) {
  std::lock_guard<std::mutex> lk(mu_);
  for (const auto& s : sessions_)
    if (s->name == name) return s;
  return nullptr;
}

std::vector<std::uint64_t> SessionManager::idle_candidates(int shard, std::uint64_t now_ms) {
  std::vector<std::uint64_t> out;
  std::lock_guard<std::mutex> lk(mu_);
  for (const auto& s : sessions_) {
    if (s->shard != shard || s->world == nullptr || s->is_default) continue;
    if (s->quota.idle_timeout_ms == 0) continue;
    if (s->stat_clients.load(std::memory_order_relaxed) > 0) continue;
    std::uint64_t last = s->last_used_ms.load(std::memory_order_relaxed);
    if (now_ms - last >= s->quota.idle_timeout_ms) out.push_back(s->id);
  }
  return out;
}

bool SessionManager::has_armed_timeout(int shard) {
  std::lock_guard<std::mutex> lk(mu_);
  for (const auto& s : sessions_)
    if (s->shard == shard && s->world != nullptr && !s->is_default &&
        s->quota.idle_timeout_ms != 0)
      return true;
  return false;
}

std::vector<SessionManager::ListEntry> SessionManager::list() {
  std::vector<ListEntry> out;
  std::lock_guard<std::mutex> lk(mu_);
  out.reserve(sessions_.size());
  for (const auto& s : sessions_) {
    ListEntry e;
    e.id = s->id;
    e.name = s->name;
    e.rig = s->rig;
    e.shard = s->shard;
    e.is_default = s->is_default;
    e.owned = s->world != nullptr;
    e.quota = s->quota;
    e.requests = s->stat_requests.load(std::memory_order_relaxed);
    e.journal_events = s->stat_journal_events.load(std::memory_order_relaxed);
    e.last_token = s->stat_last_token.load(std::memory_order_relaxed);
    e.clients = s->stat_clients.load(std::memory_order_relaxed);
    e.last_used_ms = s->last_used_ms.load(std::memory_order_relaxed);
    out.push_back(std::move(e));
  }
  return out;
}

std::size_t SessionManager::count() {
  std::lock_guard<std::mutex> lk(mu_);
  return sessions_.size();
}

}  // namespace dfdbg::server

#include "dfdbg/h264/refcodec.hpp"

#include <algorithm>
#include <cmath>

#include "dfdbg/common/assert.hpp"

namespace dfdbg::h264 {

void write_header(BitWriter& bw, const CodecParams& p) {
  bw.put_bits('D', 8);
  bw.put_bits('F', 8);
  bw.put_ue(static_cast<std::uint32_t>(p.width / 16));
  bw.put_ue(static_cast<std::uint32_t>(p.height / 16));
  bw.put_ue(static_cast<std::uint32_t>(p.frame_count));
  bw.put_ue(static_cast<std::uint32_t>(p.qp));
  bw.put_bits(p.deblock ? 1 : 0, 1);
}

void write_frame_marker(BitWriter& bw, bool intra_only) {
  bw.put_bits(intra_only ? 1 : 0, 1);
}

void write_mb(BitWriter& bw, const MbSyntax& mb) {
  bw.put_ue(static_cast<std::uint32_t>(mb.mode));
  if (mb.mode == MbMode::kSkip) return;  // P_Skip: no mv, no residual bits
  if (mb.mode == MbMode::kInter) {
    bw.put_se(mb.mv.dx);
    bw.put_se(mb.mv.dy);
  }
  for (int b = 0; b < CodecParams::kBlocksPerMb; ++b) {
    const auto& q = mb.qcoef[static_cast<std::size_t>(b)];
    int ncoef = 16;
    while (ncoef > 0 && q[static_cast<std::size_t>(ncoef - 1)] == 0) ncoef--;
    bw.put_ue(static_cast<std::uint32_t>(ncoef));
    for (int i = 0; i < ncoef; ++i) bw.put_se(q[static_cast<std::size_t>(i)]);
  }
}

std::uint32_t reconstruct_mb(Frame& work, const Frame* ref, int mbx, int mby,
                             const MbSyntax& mb, int qp) {
  std::uint32_t izz = 0;
  for (int b = 0; b < CodecParams::kBlocksPerMb; ++b) {
    BlockGeom g = block_geom(mbx, mby, b);
    izz += reconstruct_block(work, ref, g.plane, g.x, g.y, mb.mode, mb.mv,
                             mb.qcoef[static_cast<std::size_t>(b)], qp);
  }
  return izz;
}

// ---------------------------------------------------------------------------
// Encoder
// ---------------------------------------------------------------------------

namespace {

/// Extracts the source 4x4 block at (x,y) of plane p.
void load_block(const Frame& f, Plane p, int x, int y, std::array<int, 16>& out) {
  const std::uint8_t* d = plane_data(f, p);
  int w = plane_width(f, p);
  for (int r = 0; r < 4; ++r)
    for (int c = 0; c < 4; ++c) out[static_cast<std::size_t>(r * 4 + c)] = d[(y + r) * w + (x + c)];
}

/// Sum of squared differences of the MB region between two frames.
long mb_ssd(const Frame& a, const Frame& b, int mbx, int mby) {
  long ssd = 0;
  for (int blk = 0; blk < CodecParams::kBlocksPerMb; ++blk) {
    BlockGeom g = block_geom(mbx, mby, blk);
    const std::uint8_t* da = plane_data(a, g.plane);
    const std::uint8_t* db = plane_data(b, g.plane);
    int w = plane_width(a, g.plane);
    for (int r = 0; r < 4; ++r)
      for (int c = 0; c < 4; ++c) {
        int d = static_cast<int>(da[(g.y + r) * w + g.x + c]) -
                static_cast<int>(db[(g.y + r) * w + g.x + c]);
        ssd += static_cast<long>(d) * d;
      }
  }
  return ssd;
}

/// Encodes one block in place on `work`: computes the prediction from the
/// current `work` state, transforms and quantizes the residual, then
/// reconstructs exactly like a decoder. Returns the scanned coefficients.
/// P_Skip blocks code no residual at all.
void encode_block(Frame& work, const Frame& src, const Frame* ref, Plane p, int x, int y,
                  MbMode mode, MotionVector mv, int qp, std::array<int, 16>* qcoef_out) {
  std::array<int, 16> q_scan{};
  if (mode != MbMode::kSkip) {
    std::array<int, 16> pred;
    if (is_inter_mode(mode))
      inter_predict4x4(*ref, p, x, y, mv, pred);
    else
      intra_predict4x4(work, p, x, y, mode, pred);
    std::array<int, 16> srcblk, resid, coef, q_raster;
    load_block(src, p, x, y, srcblk);
    for (int i = 0; i < 16; ++i)
      resid[static_cast<std::size_t>(i)] =
          srcblk[static_cast<std::size_t>(i)] - pred[static_cast<std::size_t>(i)];
    fwd4x4(resid, coef);
    for (int i = 0; i < 16; ++i)
      q_raster[static_cast<std::size_t>(i)] = quantize(coef[static_cast<std::size_t>(i)], i, qp);
    zigzag_scan(q_raster, q_scan);
  }
  *qcoef_out = q_scan;
  // Decoder-identical reconstruction (intra neighbors for later blocks must
  // see reconstructed, not source, pixels).
  reconstruct_block(work, ref, p, x, y, mode, mv, q_scan, qp);
}

/// Exp-Golomb code lengths (the exact bits write_mb will spend).
int ue_bits(std::uint32_t v) {
  int len = 0;
  for (std::uint64_t t = static_cast<std::uint64_t>(v) + 1; t != 0; t >>= 1) len++;
  return 2 * len - 1;
}
int se_bits(std::int32_t v) {
  std::uint32_t u = v > 0 ? static_cast<std::uint32_t>(2 * v - 1)
                          : static_cast<std::uint32_t>(-2 * static_cast<std::int64_t>(v));
  return ue_bits(u);
}

/// Exact coded size of one macroblock in bits.
long mb_rate_bits(const MbSyntax& mb) {
  long bits = ue_bits(static_cast<std::uint32_t>(mb.mode));
  if (mb.mode == MbMode::kSkip) return bits;
  if (mb.mode == MbMode::kInter) bits += se_bits(mb.mv.dx) + se_bits(mb.mv.dy);
  for (int b = 0; b < CodecParams::kBlocksPerMb; ++b) {
    const auto& q = mb.qcoef[static_cast<std::size_t>(b)];
    int ncoef = 16;
    while (ncoef > 0 && q[static_cast<std::size_t>(ncoef - 1)] == 0) ncoef--;
    bits += ue_bits(static_cast<std::uint32_t>(ncoef));
    for (int i = 0; i < ncoef; ++i) bits += se_bits(q[static_cast<std::size_t>(i)]);
  }
  return bits;
}

}  // namespace

long Encoder::trial_mode(const Frame& src, const Frame& work, const Frame* ref, int mbx,
                         int mby, MbMode mode, MotionVector mv, MbSyntax* out) const {
  Frame scratch = work;
  out->mode = mode;
  out->mv = mv;
  for (int b = 0; b < CodecParams::kBlocksPerMb; ++b) {
    BlockGeom g = block_geom(mbx, mby, b);
    encode_block(scratch, src, ref, g.plane, g.x, g.y, mode, mv, params_.qp,
                 &out->qcoef[static_cast<std::size_t>(b)]);
  }
  // Rate-distortion: J = SSD + lambda * bits, with H.264's classic
  // lambda_mode = 0.85 * 2^((QP-12)/3) and the exact Exp-Golomb bit count.
  long ssd = mb_ssd(src, scratch, mbx, mby);
  long lambda =
      std::max<long>(1, std::lround(0.85 * std::pow(2.0, (params_.qp - 12) / 3.0)));
  return ssd + lambda * mb_rate_bits(*out);
}

std::vector<std::uint8_t> Encoder::encode(const std::vector<Frame>& video) {
  DFDBG_CHECK(static_cast<int>(video.size()) == params_.frame_count);
  DFDBG_CHECK(params_.width % 16 == 0 && params_.height % 16 == 0);
  recon_.clear();
  syntax_.clear();
  BitWriter bw;
  write_header(bw, params_);

  for (int f = 0; f < params_.frame_count; ++f) {
    const Frame& src = video[static_cast<std::size_t>(f)];
    bool intra_only = f == 0;
    write_frame_marker(bw, intra_only);
    Frame work(params_.width, params_.height);
    const Frame* ref = intra_only ? nullptr : &recon_.back();

    for (int mby = 0; mby < params_.mbs_y(); ++mby) {
      for (int mbx = 0; mbx < params_.mbs_x(); ++mbx) {
        MbSyntax best;
        long best_cost = -1;
        std::vector<std::pair<MbMode, MotionVector>> candidates = {
            {MbMode::kIntraDC, {}}, {MbMode::kIntraH, {}}, {MbMode::kIntraV, {}}};
        if (!intra_only) {
          candidates.push_back({MbMode::kSkip, MotionVector{0, 0}});
          for (int dy = -2; dy <= 2; ++dy)
            for (int dx = -2; dx <= 2; ++dx)
              candidates.push_back({MbMode::kInter, MotionVector{dx, dy}});
        }
        for (auto& [mode, mv] : candidates) {
          MbSyntax cand;
          long cost = trial_mode(src, work, ref, mbx, mby, mode, mv, &cand);
          if (best_cost < 0 || cost < best_cost) {
            best_cost = cost;
            best = cand;
          }
        }
        // Apply the chosen mode for real.
        for (int b = 0; b < CodecParams::kBlocksPerMb; ++b) {
          BlockGeom g = block_geom(mbx, mby, b);
          encode_block(work, src, ref, g.plane, g.x, g.y, best.mode, best.mv, params_.qp,
                       &best.qcoef[static_cast<std::size_t>(b)]);
        }
        write_mb(bw, best);
        syntax_.push_back(best);
      }
    }
    recon_.push_back(params_.deblock ? deblock_frame(work) : work);
  }
  return bw.finish();
}

// ---------------------------------------------------------------------------
// Golden decoder
// ---------------------------------------------------------------------------

Result<std::vector<Frame>> GoldenDecoder::decode(const std::vector<std::uint8_t>& bytes) {
  BitReader br(bytes);
  StreamHeader h = parse_header(br);
  if (!h.valid) return Status::error("malformed stream header");
  const CodecParams& p = h.params;
  std::vector<Frame> out;
  for (int f = 0; f < p.frame_count; ++f) {
    bool intra_only = parse_frame_marker(br);
    if (f == 0 && !intra_only) return Status::error("first frame must be intra-only");
    Frame work(p.width, p.height);
    const Frame* ref = f == 0 ? nullptr : &out.back();
    for (int mby = 0; mby < p.mbs_y(); ++mby) {
      for (int mbx = 0; mbx < p.mbs_x(); ++mbx) {
        MbSyntax mb = parse_mb(br);
        if (br.overrun()) return Status::error("bitstream truncated");
        if (f == 0 && is_inter_mode(mb.mode))
          return Status::error("inter MB in intra-only frame");
        reconstruct_mb(work, ref, mbx, mby, mb, p.qp);
      }
    }
    out.push_back(p.deblock ? deblock_frame(work) : work);
  }
  return out;
}

}  // namespace dfdbg::h264

#include "dfdbg/h264/app.hpp"

#include "dfdbg/common/assert.hpp"
#include "dfdbg/mind/analyze.hpp"
#include "dfdbg/mind/parser.hpp"

namespace dfdbg::h264 {

Result<std::unique_ptr<H264App>> H264App::build(const H264AppConfig& config) {
  auto out = std::unique_ptr<H264App>(new H264App());
  out->config_ = config;
  const CodecParams& p = config.params;
  DFDBG_CHECK_MSG(p.width % 16 == 0 && p.height % 16 == 0, "frame size must be MB-aligned");

  if (config.forced_modes.empty()) {
    // Encode the synthetic source video; the encoder's reconstruction loop
    // is the decoder ground truth.
    out->video_ = make_test_video(p.width, p.height, p.frame_count, config.seed);
    Encoder encoder(p);
    out->bitstream_ = encoder.encode(out->video_);
    out->golden_ = encoder.reconstructed();
    out->syntax_ = encoder.syntax();
  } else {
    // Hand-crafted stream: forced per-MB modes, zero residuals. Ground
    // truth comes from the golden decoder.
    DFDBG_CHECK_MSG(static_cast<int>(config.forced_modes.size()) == p.total_mbs(),
                    "forced_modes must list one mode per macroblock");
    BitWriter bw;
    write_header(bw, p);
    int mb = 0;
    for (int f = 0; f < p.frame_count; ++f) {
      write_frame_marker(bw, f == 0);
      for (int i = 0; i < p.mbs_per_frame(); ++i, ++mb) {
        MbSyntax syn;
        syn.mode = config.forced_modes[static_cast<std::size_t>(mb)];
        DFDBG_CHECK_MSG(!(f == 0 && is_inter_mode(syn.mode)),
                        "frame 0 cannot contain inter/skip MBs");
        if (syn.mode == MbMode::kInter) syn.mv = MotionVector{1, 0};
        write_mb(bw, syn);
        out->syntax_.push_back(syn);
      }
    }
    out->bitstream_ = bw.finish();
    GoldenDecoder dec;
    auto frames = dec.decode(out->bitstream_);
    DFDBG_CHECK_MSG(frames.ok(), frames.status().message());
    out->golden_ = std::move(*frames);
  }

  // Platform + application shell.
  out->kernel_ = std::make_unique<sim::Kernel>();
  out->platform_ = std::make_unique<sim::Platform>(*out->kernel_, config.platform);
  out->store_ = std::make_unique<SharedStore>();
  out->store_->fault = config.fault;
  out->app_ = std::make_unique<pedf::Application>(*out->platform_, "h264");
  out->app_->set_model_latencies(config.model_latencies);

  // Architecture: parse + check + instantiate the MIND description.
  auto doc = mind::parse(kH264Adl);
  if (!doc.ok()) return doc.status();
  auto report = mind::analyze(*doc, "H264Decoder");
  if (!report.ok()) return report.status();
  mind::FilterRegistry registry;
  register_h264_behaviors(registry, out->store_.get());
  auto root = mind::instantiate(*doc, "H264Decoder", "h264", out->app_->types(), registry);
  if (!root.ok()) return root.status();
  pedf::Module& root_mod = out->app_->set_root(std::move(*root));

  // Module predicates used by the controllers.
  SharedStore* store = out->store_.get();
  pedf::Module* front = nullptr;
  pedf::Module* pred = nullptr;
  for (const auto& m : root_mod.modules()) {
    if (m->name() == "front") front = m.get();
    if (m->name() == "pred") pred = m.get();
  }
  DFDBG_CHECK(front != nullptr && pred != nullptr);
  front->define_predicate("more_input", [store](pedf::Module&) {
    return !store->info.header_parsed ||
           store->info.parsed_mbs < store->info.params.total_mbs();
  });
  pred->define_predicate("more_mbs", [store](pedf::Module&) {
    return !store->info.header_parsed || store->info.done_mbs < store->info.params.total_mbs();
  });
  pred->define_predicate("mb_is_intra", [](pedf::Module& m) {
    pedf::Filter* pipe = m.filter("pipe");
    DFDBG_CHECK(pipe != nullptr);
    return pipe->attribute("last_mb_intra")->as_u64() == 1;
  });

  // Host I/O: the bitstream enters through DMA from L3, decoded-MB reports
  // drain back to the host.
  std::vector<pedf::Value> stream;
  stream.reserve(out->bitstream_.size());
  for (std::uint8_t byte : out->bitstream_) stream.push_back(pedf::Value::u8(byte));
  out->app_->add_host_source("bitstream_src", "h264.bitstream_in", std::move(stream),
                             /*period=*/2);
  out->sink_ = &out->app_->add_host_sink("decoded_sink", "h264.decoded_out",
                                         static_cast<std::size_t>(p.total_mbs()));

  if (Status s = out->app_->elaborate(); !s.ok()) return s;

  if (config.pipe_ipf_capacity != SIZE_MAX) {
    pedf::Link* l = out->app_->link_by_iface("ipf::pipe_in");
    DFDBG_CHECK(l != nullptr);
    l->set_capacity(config.pipe_ipf_capacity);
  }
  return out;
}

bool H264App::decoded_matches_golden() const { return first_mismatch_frame() < 0; }

int H264App::first_mismatch_frame() const {
  if (store_->decoded.size() != golden_.size()) {
    return static_cast<int>(std::min(store_->decoded.size(), golden_.size()));
  }
  for (std::size_t i = 0; i < golden_.size(); ++i) {
    if (!(store_->decoded[i] == golden_[i])) return static_cast<int>(i);
  }
  return -1;
}

}  // namespace dfdbg::h264

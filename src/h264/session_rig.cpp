#include "dfdbg/h264/session_rig.hpp"

#include <memory>
#include <utility>

#include "dfdbg/h264/app.hpp"
#include "dfdbg/sim/context.hpp"

namespace dfdbg::h264 {
namespace {

Result<FaultPlan::Kind> parse_fault(const std::string& name) {
  if (name.empty() || name == "none") return FaultPlan::Kind::kNone;
  if (name == "rate-mismatch") return FaultPlan::Kind::kRateMismatch;
  if (name == "corrupt-splitter") return FaultPlan::Kind::kCorruptSplitter;
  if (name == "drop-config") return FaultPlan::Kind::kDropConfig;
  if (name == "skip-ipf") return FaultPlan::Kind::kSkipIpf;
  return Status::error(ErrCode::kInvalidArgument, "unknown fault '" + name + "'");
}

/// The default backend is flipped around H264App::build (which constructs
/// its own kernel); SessionFactory::build serializes rig builders process-
/// wide, so the override cannot leak into a concurrent create.
struct BackendOverride {
  sim::ProcessBackend prev = sim::default_process_backend();
  explicit BackendOverride(sim::ProcessBackend b) { sim::set_default_process_backend(b); }
  ~BackendOverride() { sim::set_default_process_backend(prev); }
};

Result<dbg::SessionFactory::RigParts> build_h264(const dbg::SessionSpec& spec) {
  if (spec.width < 16 || spec.height < 16 || spec.width % 16 != 0 || spec.height % 16 != 0)
    return Status::error(ErrCode::kInvalidArgument, "h264 rig needs 16-aligned width/height");
  if (spec.frames < 1) return Status::error(ErrCode::kInvalidArgument, "h264 rig needs frames >= 1");
  auto fault = parse_fault(spec.fault);
  if (!fault.ok()) return fault.status();
  auto backend = dbg::parse_backend(spec.backend);
  if (!backend.ok()) return backend.status();

  H264AppConfig cfg;
  cfg.params.width = spec.width;
  cfg.params.height = spec.height;
  cfg.params.frame_count = spec.frames;
  cfg.seed = spec.seed;
  cfg.fault.kind = *fault;
  cfg.fault.trigger_mb = spec.trigger_mb;

  BackendOverride guard(*backend);
  auto app = H264App::build(cfg);
  if (!app.ok()) return app.status();
  auto rig = std::shared_ptr<H264App>(std::move(*app));
  dbg::SessionFactory::RigParts parts;
  parts.app = &rig->app();
  parts.kernel = &rig->kernel();
  parts.holder = std::move(rig);
  return parts;
}

}  // namespace

void register_session_rig(dbg::SessionFactory& factory) {
  factory.register_rig("h264", build_h264);
}

}  // namespace dfdbg::h264

// Reference (sequential, host-side) encoder and golden decoder, plus the
// per-macroblock syntax shared with the dataflow decoder's VLD filter.
//
// Bitstream syntax:
//   header:  u(16)="DF" magic, ue(mbs_x), ue(mbs_y), ue(frame_count),
//            ue(qp), u(1) deblock
//   frame:   u(1) is_intra_only (frame 0 must be 1)
//   mb:      ue(mode)   0=intra-DC 1=intra-H 2=intra-V 3=inter 4=P_Skip
//            if P_Skip: nothing else (zero mv, zero residual)
//            if inter: se(dx), se(dy)
//            per 4x4 block (24 of them): ue(ncoef) then ncoef * se(level)
//            where ncoef counts zig-zag coefficients up to the last nonzero.
//
// The encoder performs rate-distortion optimization: J = SSD + lambda*bits
// with lambda_mode = 0.85 * 2^((QP-12)/3) and exact Exp-Golomb bit counts.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "dfdbg/common/status.hpp"
#include "dfdbg/h264/bitstream.hpp"
#include "dfdbg/h264/codec.hpp"

namespace dfdbg::h264 {

/// Parsed syntax of one macroblock.
struct MbSyntax {
  MbMode mode = MbMode::kIntraDC;
  MotionVector mv;
  /// Zig-zag-scanned quantized coefficients, one array per 4x4 block.
  std::array<std::array<int, 16>, CodecParams::kBlocksPerMb> qcoef{};
};

/// Parsed stream header.
struct StreamHeader {
  CodecParams params;
  bool valid = false;
};

// --- shared parse/serialize (used by the golden decoder AND the VLD filter) --

void write_header(BitWriter& bw, const CodecParams& p);
void write_frame_marker(BitWriter& bw, bool intra_only);
void write_mb(BitWriter& bw, const MbSyntax& mb);

/// Stream limits (a level definition of sorts): reject absurd headers from
/// corrupted input before they turn into unbounded work or allocation.
inline constexpr int kMaxDimension = 4096;
inline constexpr int kMaxFrames = 100000;

/// Header parse over any reader with get_bits/get_ue/get_se.
template <typename BR>
StreamHeader parse_header(BR& br) {
  StreamHeader h;
  if (br.get_bits(8) != 'D' || br.get_bits(8) != 'F') return h;
  h.params.width = static_cast<int>(br.get_ue()) * 16;
  h.params.height = static_cast<int>(br.get_ue()) * 16;
  h.params.frame_count = static_cast<int>(br.get_ue());
  h.params.qp = static_cast<int>(br.get_ue());
  h.params.deblock = br.get_bits(1) != 0;
  h.valid = !br.overrun() && h.params.width > 0 && h.params.height > 0 &&
            h.params.width <= kMaxDimension && h.params.height <= kMaxDimension &&
            h.params.frame_count > 0 && h.params.frame_count <= kMaxFrames &&
            h.params.qp >= 0 && h.params.qp <= 51;
  return h;
}

/// Frame marker parse.
template <typename BR>
bool parse_frame_marker(BR& br) {
  return br.get_bits(1) != 0;  // is_intra_only
}

/// Macroblock parse.
template <typename BR>
MbSyntax parse_mb(BR& br) {
  MbSyntax mb;
  std::uint32_t mode = br.get_ue();
  mb.mode = static_cast<MbMode>(mode <= 4 ? mode : 0);
  if (mb.mode == MbMode::kSkip) return mb;  // no mv, no residual bits
  if (mb.mode == MbMode::kInter) {
    mb.mv.dx = br.get_se();
    mb.mv.dy = br.get_se();
  }
  for (int b = 0; b < CodecParams::kBlocksPerMb; ++b) {
    std::uint32_t ncoef = br.get_ue();
    if (ncoef > 16) ncoef = 16;
    for (std::uint32_t i = 0; i < ncoef; ++i)
      mb.qcoef[static_cast<std::size_t>(b)][i] = br.get_se();
  }
  return mb;
}

/// Reconstructs one whole macroblock into `work` (all 24 blocks, raster 4x4
/// order, exactly the order every decoder must follow). Returns the summed
/// Izz checksum of the MB.
std::uint32_t reconstruct_mb(Frame& work, const Frame* ref, int mbx, int mby,
                             const MbSyntax& mb, int qp);

// --- encoder -----------------------------------------------------------------

/// Deterministic encoder with full reconstruction loop (its reconstructed
/// frames are the ground truth every decoder must match bit-exactly).
class Encoder {
 public:
  explicit Encoder(const CodecParams& params) : params_(params) {}

  /// Encodes `video` (must match params dimensions/count). Returns the
  /// bitstream bytes.
  std::vector<std::uint8_t> encode(const std::vector<Frame>& video);

  /// Decoded-loop reconstruction (post-deblock), one frame per input frame.
  [[nodiscard]] const std::vector<Frame>& reconstructed() const { return recon_; }
  /// Per-MB syntax in decode order (for tests and workload generators).
  [[nodiscard]] const std::vector<MbSyntax>& syntax() const { return syntax_; }

 private:
  /// Trial-encodes MB (mbx,mby) of `src` with `mode` on a scratch copy of
  /// `work`; returns distortion and fills `out`.
  long trial_mode(const Frame& src, const Frame& work, const Frame* ref, int mbx, int mby,
                  MbMode mode, MotionVector mv, MbSyntax* out) const;

  CodecParams params_;
  std::vector<Frame> recon_;
  std::vector<MbSyntax> syntax_;
};

/// Sequential reference decoder.
class GoldenDecoder {
 public:
  /// Decodes a full stream; empty result on malformed input.
  Result<std::vector<Frame>> decode(const std::vector<std::uint8_t>& bytes);
};

}  // namespace dfdbg::h264

// The PEDF H.264 decoder application (paper §VI, Fig. 4).
//
// Graph topology (filter short names as in the paper):
//
//   host-src ──bytes──► [front: vld ─► bh ─► hwcfg]   (front_controller)
//        vld ──Blk_t───────────────────────────► pipe
//        bh  ──U32──────────────────────────────► red
//        hwcfg ─U16 MbType─► pipe    hwcfg ─U32 cfg─► ipred
//   [pred: red, pipe, ipred, mc, ipf]               (pred_controller)
//        red ─CbCrMB_t─► pipe        red ─U32─► mc (inter MBs)
//        pipe ─Blk_t─► ipred (intra) pipe ─Blk_t─► mc (inter)
//        pipe ─U32 ctl─► ipf
//        ipred ─MbDone_t─► ipf  ipred ─U32─► ipf   mc ─MbDone_t─► ipf
//        ipf ─U32/MB─► host-sink
//
// The architecture is declared in the MIND ADL (kH264Adl) and instantiated
// through the df_mind tool-chain; filter/controller behaviour is bound via a
// FilterRegistry. Reconstructed pixels live in a shared frame store
// (modelling the platform's L2/L3 picture buffers); causality is guaranteed
// by pred_controller sequencing one macroblock per PEDF step.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "dfdbg/common/status.hpp"
#include "dfdbg/h264/codec.hpp"
#include "dfdbg/h264/refcodec.hpp"
#include "dfdbg/mind/instantiate.hpp"
#include "dfdbg/pedf/application.hpp"
#include "dfdbg/sim/platform.hpp"

namespace dfdbg::h264 {

/// Seeded, reproducible decoder faults for the case-study experiments.
struct FaultPlan {
  enum class Kind : std::uint8_t {
    kNone,
    /// pipe emits one ipf control token per *block* instead of per MB:
    /// the pipe->ipf link accumulates tokens (Fig. 4's 20-token stall).
    kRateMismatch,
    /// red corrupts CbCrMB_t.InterNotIntra from `trigger_mb` on: intra MBs
    /// get routed to mc and are reconstructed with the wrong predictor
    /// (observable wrong output; the §VI-D token-provenance hunt).
    kCorruptSplitter,
    /// hwcfg silently drops ipred's config token for `trigger_mb`: ipred
    /// blocks forever on Hwcfg_in (deadlock; untied by token injection).
    kDropConfig,
    /// pred_controller forgets to fire ipf for `trigger_mb` (scheduling
    /// bug: done-tokens accumulate, final MB count short by one).
    kSkipIpf,
  };

  Kind kind = Kind::kNone;
  int trigger_mb = 2;  ///< global MB index where the fault manifests
  int period = 0;      ///< if > 0, re-trigger every `period` MBs afterwards

  [[nodiscard]] bool triggers(int mb_index) const {
    if (kind == Kind::kNone) return false;
    if (period > 0) return mb_index >= trigger_mb && (mb_index - trigger_mb) % period == 0;
    return mb_index == trigger_mb;
  }
};

const char* to_string(FaultPlan::Kind k);

/// Stream-level progress shared between the filters (the decoder's
/// control-plane state living in platform shared memory).
struct StreamInfo {
  bool header_parsed = false;
  CodecParams params;
  int parsed_mbs = 0;  ///< macroblocks parsed by vld
  int done_mbs = 0;    ///< macroblocks finished by ipf
  int frame_mbs_done = 0;
  int cur_frame = 0;
  bool cur_frame_intra_only = true;
};

/// Shared pixel store: the frame under construction plus the decoded
/// picture buffer (published, deblocked frames).
struct SharedStore {
  StreamInfo info;
  Frame work;
  std::vector<Frame> decoded;
  FaultPlan fault;

  /// Reference frame for inter prediction (nullptr in the first frame).
  [[nodiscard]] const Frame* ref() const {
    return decoded.empty() ? nullptr : &decoded.back();
  }
};

/// The MIND architecture description of the decoder (parsed at build time).
extern const char* kH264Adl;

/// MbType codes hwcfg emits on pipe_MbType_out (paper transcript shows the
/// recorded values 5, 10, 15).
std::uint16_t mbtype_code(MbMode mode);

/// Registers the decoder's filter and controller implementations (bound to
/// `store`) into `registry`. Exposed so tests can instantiate pieces.
void register_h264_behaviors(mind::FilterRegistry& registry, SharedStore* store);

/// Build configuration.
struct H264AppConfig {
  CodecParams params;
  std::uint64_t seed = 42;
  FaultPlan fault;
  sim::PlatformConfig platform;
  bool model_latencies = true;
  /// Bounded capacity for the pipe->ipf control link (SIZE_MAX = unbounded);
  /// bounding it turns the rate-mismatch fault into a hard stall.
  std::size_t pipe_ipf_capacity = SIZE_MAX;

  /// If non-empty (length = total_mbs), the bitstream is hand-crafted with
  /// exactly these per-MB modes and zero residuals instead of running the
  /// encoder — used to script deterministic debugger transcripts (e.g. the
  /// paper's recorded MbType sequence 5, 10, 15).
  std::vector<MbMode> forced_modes;

  H264AppConfig() {
    platform.clusters = 2;
    platform.pes_per_cluster = 8;
    platform.host_cores = 2;
  }
};

/// A fully assembled decoder instance: synthetic video, encoded bitstream,
/// golden reconstruction, platform, PEDF application, host I/O.
class H264App {
 public:
  /// Builds and elaborates the application (ADL parse -> analyze ->
  /// instantiate -> elaborate). Attach a debugger Session before start()
  /// or rely on its late-attach registration replay.
  static Result<std::unique_ptr<H264App>> build(const H264AppConfig& config);

  /// Spawns the simulated processes. Call once; then drive kernel().run()
  /// or a Session.
  void start() { app_->start(); }

  [[nodiscard]] sim::Kernel& kernel() { return *kernel_; }
  [[nodiscard]] sim::Platform& platform() { return *platform_; }
  [[nodiscard]] pedf::Application& app() { return *app_; }
  [[nodiscard]] SharedStore& store() { return *store_; }
  [[nodiscard]] const H264AppConfig& config() const { return config_; }

  [[nodiscard]] const std::vector<Frame>& source_video() const { return video_; }
  [[nodiscard]] const std::vector<uint8_t>& bitstream() const { return bitstream_; }
  /// Encoder-loop reconstruction == what a correct decoder must output.
  [[nodiscard]] const std::vector<Frame>& golden() const { return golden_; }
  /// Per-MB syntax in decode order (workload metadata for benches).
  [[nodiscard]] const std::vector<MbSyntax>& syntax() const { return syntax_; }

  [[nodiscard]] pedf::HostSink& sink() { return *sink_; }

  /// True when every decoded frame equals the golden reconstruction.
  [[nodiscard]] bool decoded_matches_golden() const;
  /// Index of the first mismatching frame (-1 if none).
  [[nodiscard]] int first_mismatch_frame() const;

 private:
  H264App() = default;

  H264AppConfig config_;
  std::unique_ptr<sim::Kernel> kernel_;
  std::unique_ptr<sim::Platform> platform_;
  std::unique_ptr<SharedStore> store_;
  std::unique_ptr<pedf::Application> app_;
  std::vector<Frame> video_;
  std::vector<uint8_t> bitstream_;
  std::vector<Frame> golden_;
  std::vector<MbSyntax> syntax_;
  pedf::HostSink* sink_ = nullptr;
};

}  // namespace dfdbg::h264

// Functional core of the toy H.264-style codec used by the case study.
//
// The paper debugs ST's PEDF H.264 decoder; we cannot reproduce that
// proprietary code, so this is a genuine but simplified block codec sharing
// H.264's structure: 16x16 macroblocks in raster order, 4:2:0 chroma,
// per-MB intra prediction (DC/Horizontal/Vertical) or inter prediction
// (motion-compensated from the previous decoded frame), H.264's exact 4x4
// integer transform on residuals, linear quantization, zig-zag coefficient
// scan and Exp-Golomb entropy coding, plus an optional end-of-frame
// deblocking pass. Encoder and both decoders (golden sequential decoder and
// the PEDF dataflow decoder) are bit-exact against each other.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

namespace dfdbg::h264 {

/// One 4:2:0 picture.
struct Frame {
  int width = 0;
  int height = 0;
  std::vector<std::uint8_t> y;   ///< width*height
  std::vector<std::uint8_t> cb;  ///< (width/2)*(height/2)
  std::vector<std::uint8_t> cr;

  Frame() = default;
  Frame(int w, int h)
      : width(w), height(h), y(static_cast<std::size_t>(w) * h, 128),
        cb(static_cast<std::size_t>(w / 2) * (h / 2), 128),
        cr(static_cast<std::size_t>(w / 2) * (h / 2), 128) {}

  bool operator==(const Frame& o) const = default;
};

/// Macroblock prediction mode. kSkip is H.264's P_Skip: motion-compensated
/// copy with zero motion vector and no residual (zero coded bits beyond the
/// mode itself).
enum class MbMode : std::uint8_t {
  kIntraDC = 0,
  kIntraH = 1,
  kIntraV = 2,
  kInter = 3,
  kSkip = 4,
};

const char* to_string(MbMode m);

/// True for the motion-compensated modes (kInter, kSkip).
inline bool is_inter_mode(MbMode m) { return m == MbMode::kInter || m == MbMode::kSkip; }

/// Plane selector inside a macroblock.
enum class Plane : std::uint8_t { kY = 0, kCb = 1, kCr = 2 };

/// Stream-level parameters.
struct CodecParams {
  int width = 48;        ///< multiple of 16
  int height = 32;       ///< multiple of 16
  int frame_count = 3;
  int qp = 20;           ///< H.264 quantization parameter (0..51)
  bool deblock = true;   ///< end-of-frame smoothing pass

  [[nodiscard]] int mbs_x() const { return width / 16; }
  [[nodiscard]] int mbs_y() const { return height / 16; }
  [[nodiscard]] int mbs_per_frame() const { return mbs_x() * mbs_y(); }
  [[nodiscard]] int total_mbs() const { return mbs_per_frame() * frame_count; }
  /// 16 luma + 4 Cb + 4 Cr 4x4 blocks per macroblock.
  static constexpr int kBlocksPerMb = 24;
};

/// Motion vector (quarter-pel free; we use integer pel).
struct MotionVector {
  int dx = 0;
  int dy = 0;
  bool operator==(const MotionVector&) const = default;
};

// --- 4x4 integer transform (H.264 core transform) ---------------------------

/// Forward 4x4 transform of residuals (input/output row-major int[16]).
void fwd4x4(const std::array<int, 16>& in, std::array<int, 16>& out);
/// Inverse 4x4 transform with H.264's (x+32)>>6 rounding.
void inv4x4(const std::array<int, 16>& in, std::array<int, 16>& out);

/// H.264 quantization of the forward-transform coefficient at raster
/// position `pos` (0..15) with quantization parameter `qp` (0..51), using
/// the standard MF multiplier tables (absorbs the transform gain).
int quantize(int coef, int pos, int qp);
/// H.264 dequantization with the standard V tables; the result feeds
/// inv4x4's (x+32)>>6 scaling.
int dequantize(int q, int pos, int qp);

/// Zig-zag scan order of a 4x4 block (index table).
extern const std::array<int, 16> kZigzag4x4;

/// Scans `coefs` (row-major) into zig-zag order.
void zigzag_scan(const std::array<int, 16>& coefs, std::array<int, 16>& out);
/// Inverse zig-zag.
void zigzag_unscan(const std::array<int, 16>& scanned, std::array<int, 16>& out);

// --- block geometry ----------------------------------------------------------

/// Describes 4x4 block `blk` (0..23) of a macroblock: which plane and its
/// top-left pixel position inside that plane.
struct BlockGeom {
  Plane plane;
  int x;  ///< plane-relative pixel x of the block's top-left corner
  int y;
};

/// Geometry of block `blk` of the MB at (mbx, mby). Blocks 0-15: luma in
/// raster order of 4x4 tiles; 16-19: Cb; 20-23: Cr.
BlockGeom block_geom(int mbx, int mby, int blk);

/// Plane accessor helpers.
std::uint8_t* plane_data(Frame& f, Plane p);
const std::uint8_t* plane_data(const Frame& f, Plane p);
int plane_width(const Frame& f, Plane p);
int plane_height(const Frame& f, Plane p);

// --- prediction ----------------------------------------------------------------

/// Computes the 4x4 intra prediction of the block at (x,y) in plane `p` of
/// `work` (the partially reconstructed current frame) using `mode`
/// (kIntraDC/H/V; kInter is invalid here). Borders fall back per H.264
/// conventions (missing neighbors -> 128 / available side).
void intra_predict4x4(const Frame& work, Plane p, int x, int y, MbMode mode,
                      std::array<int, 16>& pred);

/// Computes the 4x4 inter prediction at (x,y) in plane `p` from reference
/// frame `ref`, motion vector `mv` (halved for chroma), clamped at edges.
void inter_predict4x4(const Frame& ref, Plane p, int x, int y, MotionVector mv,
                      std::array<int, 16>& pred);

/// Reconstructs one 4x4 block into `work`: prediction + dequantized
/// inverse-transformed residual, clamped to [0,255]. `qcoef` is the
/// zig-zag-scanned quantized residual. Returns the sum of absolute
/// dequantized coefficients (the "Izz" checksum carried by debug tokens).
std::uint32_t reconstruct_block(Frame& work, const Frame* ref, Plane p, int x, int y,
                                MbMode mode, MotionVector mv,
                                const std::array<int, 16>& qcoef, int qp);

// --- deblocking ------------------------------------------------------------------

/// End-of-frame smoothing pass across 4x4 block edges (both directions,
/// all planes). Deterministic and purely in-place on a copy semantics:
/// returns the deblocked frame, leaving `work` untouched.
Frame deblock_frame(const Frame& work);

// --- test material ---------------------------------------------------------------

/// Deterministic synthetic video: moving gradients plus seeded noise, so
/// both intra and inter MBs appear.
std::vector<Frame> make_test_video(int width, int height, int frames, std::uint64_t seed);

/// Sum of absolute differences between two pixel blocks (for the encoder).
int sad16(const std::array<int, 16>& a, const std::array<int, 16>& b);

}  // namespace dfdbg::h264

// Registers the H.264 decoder as a fleet-host session rig ("h264").
//
// Lives here rather than in src/debug because the decoder links against the
// debug layer (df_h264 depends on df_debug), not under it: the factory's
// built-in rigs must not pull the codec into every debug consumer.
#pragma once

#include "dfdbg/debug/session_host.hpp"

namespace dfdbg::h264 {

/// Adds the "h264" rig to `factory`. SessionSpec knobs consumed: width,
/// height, frames, fault ("" | "rate-mismatch" | "corrupt-splitter" |
/// "drop-config" | "skip-ipf"), trigger_mb, seed, backend, workers.
void register_session_rig(dbg::SessionFactory& factory);

}  // namespace dfdbg::h264

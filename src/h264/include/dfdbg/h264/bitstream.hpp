// Bit-level I/O with Exp-Golomb codes (H.264's ue(v)/se(v)).
#pragma once

#include <cstdint>
#include <vector>

namespace dfdbg::h264 {

/// MSB-first bit writer.
class BitWriter {
 public:
  /// Appends the low `n` bits of `bits` (MSB of the field first).
  void put_bits(std::uint32_t bits, int n);
  /// Unsigned Exp-Golomb.
  void put_ue(std::uint32_t v);
  /// Signed Exp-Golomb.
  void put_se(std::int32_t v);
  /// Pads with zero bits to a byte boundary and returns the stream.
  std::vector<std::uint8_t> finish();

  [[nodiscard]] std::size_t bit_count() const { return bytes_.size() * 8 - (8 - static_cast<std::size_t>(fill_)) % 8; }

 private:
  std::vector<std::uint8_t> bytes_;
  int fill_ = 8;  ///< free bits in the last byte (8 = none open)
};

/// MSB-first bit reader. Out-of-data reads return zeros and set overrun().
class BitReader {
 public:
  explicit BitReader(std::vector<std::uint8_t> bytes) : bytes_(std::move(bytes)) {}

  std::uint32_t get_bits(int n);
  std::uint32_t get_ue();
  std::int32_t get_se();
  [[nodiscard]] bool overrun() const { return overrun_; }
  [[nodiscard]] std::size_t byte_pos() const { return pos_ >> 3; }

 private:
  int get_bit();
  std::vector<std::uint8_t> bytes_;
  std::size_t pos_ = 0;  ///< bit position
  bool overrun_ = false;
};

/// Abstract byte source for a streaming BitReader (the dataflow VLD pulls
/// bytes from its inbound token link instead of a memory buffer).
class ByteSource {
 public:
  virtual ~ByteSource() = default;
  /// Next byte; return false at end of stream.
  virtual bool next(std::uint8_t* out) = 0;
};

/// Streaming variant of BitReader over a ByteSource.
class StreamBitReader {
 public:
  explicit StreamBitReader(ByteSource& src) : src_(src) {}

  std::uint32_t get_bits(int n);
  std::uint32_t get_ue();
  std::int32_t get_se();
  [[nodiscard]] bool overrun() const { return overrun_; }

 private:
  int get_bit();
  ByteSource& src_;
  std::uint8_t cur_ = 0;
  int avail_ = 0;
  bool overrun_ = false;
};

}  // namespace dfdbg::h264

#include "dfdbg/h264/codec.hpp"

#include <algorithm>
#include <cstdlib>

#include "dfdbg/common/assert.hpp"
#include "dfdbg/common/prng.hpp"

namespace dfdbg::h264 {

const char* to_string(MbMode m) {
  switch (m) {
    case MbMode::kIntraDC: return "intra-dc";
    case MbMode::kIntraH: return "intra-h";
    case MbMode::kIntraV: return "intra-v";
    case MbMode::kInter: return "inter";
    case MbMode::kSkip: return "p-skip";
  }
  return "?";
}

// ---------------------------------------------------------------------------
// Transform / quantization / scan
// ---------------------------------------------------------------------------

void fwd4x4(const std::array<int, 16>& in, std::array<int, 16>& out) {
  // H.264 core transform: Y = C X C^T with
  // C = [1 1 1 1; 2 1 -1 -2; 1 -1 -1 1; 1 -2 2 -1].
  std::array<int, 16> tmp;
  for (int i = 0; i < 4; ++i) {  // columns first: tmp = C * X
    int a = in[0 * 4 + i], b = in[1 * 4 + i], c = in[2 * 4 + i], d = in[3 * 4 + i];
    tmp[0 * 4 + i] = a + b + c + d;
    tmp[1 * 4 + i] = 2 * a + b - c - 2 * d;
    tmp[2 * 4 + i] = a - b - c + d;
    tmp[3 * 4 + i] = a - 2 * b + 2 * c - d;
  }
  for (int i = 0; i < 4; ++i) {  // columns: out = tmp * C^T
    int a = tmp[i * 4 + 0], b = tmp[i * 4 + 1], c = tmp[i * 4 + 2], d = tmp[i * 4 + 3];
    out[i * 4 + 0] = a + b + c + d;
    out[i * 4 + 1] = 2 * a + b - c - 2 * d;
    out[i * 4 + 2] = a - b - c + d;
    out[i * 4 + 3] = a - 2 * b + 2 * c - d;
  }
}

void inv4x4(const std::array<int, 16>& in, std::array<int, 16>& out) {
  // Inverse core transform with 1/2-weighted odd basis and (x+32)>>6 scaling.
  std::array<int, 16> tmp;
  for (int i = 0; i < 4; ++i) {
    int a = in[0 * 4 + i], b = in[1 * 4 + i], c = in[2 * 4 + i], d = in[3 * 4 + i];
    tmp[0 * 4 + i] = a + b + c + d / 2;
    tmp[1 * 4 + i] = a + b / 2 - c - d;
    tmp[2 * 4 + i] = a - b / 2 - c + d;
    tmp[3 * 4 + i] = a - b + c - d / 2;
  }
  for (int i = 0; i < 4; ++i) {
    int a = tmp[i * 4 + 0], b = tmp[i * 4 + 1], c = tmp[i * 4 + 2], d = tmp[i * 4 + 3];
    out[i * 4 + 0] = (a + b + c + d / 2 + 32) >> 6;
    out[i * 4 + 1] = (a + b / 2 - c - d + 32) >> 6;
    out[i * 4 + 2] = (a - b / 2 - c + d + 32) >> 6;
    out[i * 4 + 3] = (a - b + c - d / 2 + 32) >> 6;
  }
}

namespace {
// H.264 quantization tables. Position classes over the 4x4 raster grid:
// A = even/even, B = odd/odd, C = mixed.
enum { kClassA = 0, kClassB = 1, kClassC = 2 };

int pos_class(int pos) {
  int r = pos / 4, c = pos % 4;
  bool re = (r % 2) == 0, ce = (c % 2) == 0;
  if (re && ce) return kClassA;
  if (!re && !ce) return kClassB;
  return kClassC;
}

constexpr int kMF[6][3] = {
    {13107, 5243, 8066}, {11916, 4660, 7490}, {10082, 4194, 6554},
    {9362, 3647, 5825},  {8192, 3355, 5243},  {7282, 2893, 4559},
};
constexpr int kV[6][3] = {
    {10, 16, 13}, {11, 18, 14}, {13, 20, 16}, {14, 23, 18}, {16, 25, 20}, {18, 29, 23},
};
}  // namespace

int quantize(int coef, int pos, int qp) {
  DFDBG_DCHECK(qp >= 0 && qp <= 51);
  int qbits = 15 + qp / 6;
  std::int64_t f = (std::int64_t{1} << qbits) / 3;
  int mf = kMF[qp % 6][pos_class(pos)];
  std::int64_t mag = (std::int64_t{std::abs(coef)} * mf + f) >> qbits;
  return coef >= 0 ? static_cast<int>(mag) : -static_cast<int>(mag);
}

int dequantize(int q, int pos, int qp) {
  int v = kV[qp % 6][pos_class(pos)];
  return (q * v) << (qp / 6);
}

const std::array<int, 16> kZigzag4x4 = {0, 1, 4, 8, 5, 2, 3, 6, 9, 12, 13, 10, 7, 11, 14, 15};

void zigzag_scan(const std::array<int, 16>& coefs, std::array<int, 16>& out) {
  for (int i = 0; i < 16; ++i) out[static_cast<std::size_t>(i)] = coefs[static_cast<std::size_t>(kZigzag4x4[static_cast<std::size_t>(i)])];
}

void zigzag_unscan(const std::array<int, 16>& scanned, std::array<int, 16>& out) {
  for (int i = 0; i < 16; ++i) out[static_cast<std::size_t>(kZigzag4x4[static_cast<std::size_t>(i)])] = scanned[static_cast<std::size_t>(i)];
}

// ---------------------------------------------------------------------------
// Geometry
// ---------------------------------------------------------------------------

BlockGeom block_geom(int mbx, int mby, int blk) {
  DFDBG_DCHECK(blk >= 0 && blk < CodecParams::kBlocksPerMb);
  if (blk < 16) {
    return BlockGeom{Plane::kY, mbx * 16 + (blk % 4) * 4, mby * 16 + (blk / 4) * 4};
  }
  int c = blk - 16;
  Plane p = c < 4 ? Plane::kCb : Plane::kCr;
  c %= 4;
  return BlockGeom{p, mbx * 8 + (c % 2) * 4, mby * 8 + (c / 2) * 4};
}

std::uint8_t* plane_data(Frame& f, Plane p) {
  switch (p) {
    case Plane::kY: return f.y.data();
    case Plane::kCb: return f.cb.data();
    case Plane::kCr: return f.cr.data();
  }
  return nullptr;
}

const std::uint8_t* plane_data(const Frame& f, Plane p) {
  switch (p) {
    case Plane::kY: return f.y.data();
    case Plane::kCb: return f.cb.data();
    case Plane::kCr: return f.cr.data();
  }
  return nullptr;
}

int plane_width(const Frame& f, Plane p) { return p == Plane::kY ? f.width : f.width / 2; }
int plane_height(const Frame& f, Plane p) { return p == Plane::kY ? f.height : f.height / 2; }

// ---------------------------------------------------------------------------
// Prediction
// ---------------------------------------------------------------------------

namespace {
std::uint8_t clamp_pel(int v) { return static_cast<std::uint8_t>(std::clamp(v, 0, 255)); }
}  // namespace

void intra_predict4x4(const Frame& work, Plane p, int x, int y, MbMode mode,
                      std::array<int, 16>& pred) {
  const std::uint8_t* d = plane_data(work, p);
  int w = plane_width(work, p);
  int h = plane_height(work, p);
  (void)h;
  bool has_left = x > 0;
  bool has_top = y > 0;
  auto at = [&](int px, int py) { return static_cast<int>(d[py * w + px]); };

  switch (mode) {
    case MbMode::kIntraH: {
      for (int r = 0; r < 4; ++r) {
        int v = has_left ? at(x - 1, y + r) : 128;
        for (int c = 0; c < 4; ++c) pred[static_cast<std::size_t>(r * 4 + c)] = v;
      }
      return;
    }
    case MbMode::kIntraV: {
      for (int c = 0; c < 4; ++c) {
        int v = has_top ? at(x + c, y - 1) : 128;
        for (int r = 0; r < 4; ++r) pred[static_cast<std::size_t>(r * 4 + c)] = v;
      }
      return;
    }
    case MbMode::kIntraDC: {
      int sum = 0, n = 0;
      if (has_top)
        for (int c = 0; c < 4; ++c) { sum += at(x + c, y - 1); ++n; }
      if (has_left)
        for (int r = 0; r < 4; ++r) { sum += at(x - 1, y + r); ++n; }
      int dc = n > 0 ? (sum + n / 2) / n : 128;
      pred.fill(dc);
      return;
    }
    case MbMode::kInter:
    case MbMode::kSkip:
      DFDBG_UNREACHABLE("intra_predict4x4 called with an inter mode");
  }
}

void inter_predict4x4(const Frame& ref, Plane p, int x, int y, MotionVector mv,
                      std::array<int, 16>& pred) {
  const std::uint8_t* d = plane_data(ref, p);
  int w = plane_width(ref, p);
  int h = plane_height(ref, p);
  int dx = p == Plane::kY ? mv.dx : mv.dx / 2;
  int dy = p == Plane::kY ? mv.dy : mv.dy / 2;
  for (int r = 0; r < 4; ++r) {
    for (int c = 0; c < 4; ++c) {
      int px = std::clamp(x + c + dx, 0, w - 1);
      int py = std::clamp(y + r + dy, 0, h - 1);
      pred[static_cast<std::size_t>(r * 4 + c)] = d[py * w + px];
    }
  }
}

std::uint32_t reconstruct_block(Frame& work, const Frame* ref, Plane p, int x, int y,
                                MbMode mode, MotionVector mv,
                                const std::array<int, 16>& qcoef, int qp) {
  std::array<int, 16> pred;
  if (is_inter_mode(mode)) {
    DFDBG_CHECK_MSG(ref != nullptr, "inter block without reference frame");
    inter_predict4x4(*ref, p, x, y, mv, pred);
  } else {
    intra_predict4x4(work, p, x, y, mode, pred);
  }
  std::array<int, 16> q_raster, deq, residual;
  zigzag_unscan(qcoef, q_raster);
  std::uint32_t izz = 0;
  for (int i = 0; i < 16; ++i) {
    deq[static_cast<std::size_t>(i)] = dequantize(q_raster[static_cast<std::size_t>(i)], i, qp);
    izz += static_cast<std::uint32_t>(std::abs(deq[static_cast<std::size_t>(i)]));
  }
  inv4x4(deq, residual);
  std::uint8_t* d = plane_data(work, p);
  int w = plane_width(work, p);
  for (int r = 0; r < 4; ++r)
    for (int c = 0; c < 4; ++c)
      d[(y + r) * w + (x + c)] =
          clamp_pel(pred[static_cast<std::size_t>(r * 4 + c)] + residual[static_cast<std::size_t>(r * 4 + c)]);
  return izz;
}

// ---------------------------------------------------------------------------
// Deblocking
// ---------------------------------------------------------------------------

Frame deblock_frame(const Frame& work) {
  Frame out = work;
  for (Plane p : {Plane::kY, Plane::kCb, Plane::kCr}) {
    const std::uint8_t* src = plane_data(work, p);
    std::uint8_t* dst = plane_data(out, p);
    int w = plane_width(work, p);
    int h = plane_height(work, p);
    // Vertical 4x4 edges: smooth the two pixels flanking each edge.
    for (int x = 4; x < w; x += 4) {
      for (int y = 0; y < h; ++y) {
        int a = src[y * w + x - 2], b = src[y * w + x - 1];
        int c = src[y * w + x];
        int dpix = x + 1 < w ? src[y * w + x + 1] : c;
        dst[y * w + x - 1] = clamp_pel((a + 2 * b + c + 2) >> 2);
        dst[y * w + x] = clamp_pel((b + 2 * c + dpix + 2) >> 2);
      }
    }
    // Horizontal edges operate on the vertically-filtered result.
    std::vector<std::uint8_t> tmp(dst, dst + static_cast<std::size_t>(w) * h);
    for (int y = 4; y < h; y += 4) {
      for (int x = 0; x < w; ++x) {
        int a = tmp[static_cast<std::size_t>((y - 2) * w + x)];
        int b = tmp[static_cast<std::size_t>((y - 1) * w + x)];
        int c = tmp[static_cast<std::size_t>(y * w + x)];
        int dpix = y + 1 < h ? tmp[static_cast<std::size_t>((y + 1) * w + x)] : c;
        dst[(y - 1) * w + x] = clamp_pel((a + 2 * b + c + 2) >> 2);
        dst[y * w + x] = clamp_pel((b + 2 * c + dpix + 2) >> 2);
      }
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// Test material
// ---------------------------------------------------------------------------

std::vector<Frame> make_test_video(int width, int height, int frames, std::uint64_t seed) {
  DFDBG_CHECK(width % 16 == 0 && height % 16 == 0 && frames >= 1);
  Prng prng(seed);
  std::vector<Frame> out;
  // A diagonal gradient panning right plus a moving bright square and a
  // sprinkle of noise: yields a mix of flat (DC), horizontal/vertical
  // structure and genuine motion for inter prediction.
  int noise = 6;
  for (int f = 0; f < frames; ++f) {
    Frame fr(width, height);
    int pan = f * 2;
    for (int y = 0; y < height; ++y) {
      for (int x = 0; x < width; ++x) {
        int v = ((x + pan) * 3 + y * 2) % 200 + 20;
        fr.y[static_cast<std::size_t>(y * width + x)] =
            static_cast<std::uint8_t>(std::clamp(v + static_cast<int>(prng.next_below(static_cast<std::uint64_t>(noise))) - noise / 2, 0, 255));
      }
    }
    // Moving square.
    int sq = 12, sx = (8 + f * 2) % (width - sq), sy = (6 + f) % (height - sq);
    for (int y = sy; y < sy + sq; ++y)
      for (int x = sx; x < sx + sq; ++x) fr.y[static_cast<std::size_t>(y * width + x)] = 230;
    for (int y = 0; y < height / 2; ++y) {
      for (int x = 0; x < width / 2; ++x) {
        fr.cb[static_cast<std::size_t>(y * (width / 2) + x)] =
            static_cast<std::uint8_t>(100 + ((x + f) * 5) % 80);
        fr.cr[static_cast<std::size_t>(y * (width / 2) + x)] =
            static_cast<std::uint8_t>(90 + (y * 4) % 90);
      }
    }
    out.push_back(std::move(fr));
  }
  return out;
}

int sad16(const std::array<int, 16>& a, const std::array<int, 16>& b) {
  int s = 0;
  for (int i = 0; i < 16; ++i) s += std::abs(a[static_cast<std::size_t>(i)] - b[static_cast<std::size_t>(i)]);
  return s;
}

}  // namespace dfdbg::h264

#include "dfdbg/h264/bitstream.hpp"

#include "dfdbg/common/assert.hpp"

namespace dfdbg::h264 {

void BitWriter::put_bits(std::uint32_t bits, int n) {
  DFDBG_DCHECK(n >= 0 && n <= 32);
  for (int i = n - 1; i >= 0; --i) {
    if (fill_ == 8) {
      bytes_.push_back(0);
      fill_ = 0;
    }
    int bit = static_cast<int>((bits >> i) & 1u);
    bytes_.back() = static_cast<std::uint8_t>(bytes_.back() | (bit << (7 - fill_)));
    fill_++;
  }
}

void BitWriter::put_ue(std::uint32_t v) {
  // code = v+1 written with 2*len-1 bits (len-1 leading zeros).
  std::uint64_t code = static_cast<std::uint64_t>(v) + 1;
  int len = 0;
  for (std::uint64_t t = code; t != 0; t >>= 1) len++;
  put_bits(0, len - 1);
  put_bits(static_cast<std::uint32_t>(code), len);
}

void BitWriter::put_se(std::int32_t v) {
  // Mapping: 0 -> 0, 1 -> 1, -1 -> 2, 2 -> 3, -2 -> 4, ...
  std::uint32_t u = v > 0 ? static_cast<std::uint32_t>(2 * v - 1)
                          : static_cast<std::uint32_t>(-2 * static_cast<std::int64_t>(v));
  put_ue(u);
}

std::vector<std::uint8_t> BitWriter::finish() {
  fill_ = 8;
  return std::move(bytes_);
}

int BitReader::get_bit() {
  std::size_t byte = pos_ >> 3;
  if (byte >= bytes_.size()) {
    overrun_ = true;
    return 0;
  }
  int bit = (bytes_[byte] >> (7 - (pos_ & 7))) & 1;
  pos_++;
  return bit;
}

std::uint32_t BitReader::get_bits(int n) {
  std::uint32_t v = 0;
  for (int i = 0; i < n; ++i) v = (v << 1) | static_cast<std::uint32_t>(get_bit());
  return v;
}

std::uint32_t BitReader::get_ue() {
  int zeros = 0;
  while (get_bit() == 0) {
    if (overrun_ || zeros > 32) {
      overrun_ = true;
      return 0;
    }
    zeros++;
  }
  std::uint32_t v = 1;
  for (int i = 0; i < zeros; ++i) v = (v << 1) | static_cast<std::uint32_t>(get_bit());
  return v - 1;
}

std::int32_t BitReader::get_se() {
  std::uint32_t u = get_ue();
  if (u == 0) return 0;
  if (u & 1u) return static_cast<std::int32_t>((u + 1) / 2);
  return -static_cast<std::int32_t>(u / 2);
}

int StreamBitReader::get_bit() {
  if (avail_ == 0) {
    if (!src_.next(&cur_)) {
      overrun_ = true;
      return 0;
    }
    avail_ = 8;
  }
  int bit = (cur_ >> (avail_ - 1)) & 1;
  avail_--;
  return bit;
}

std::uint32_t StreamBitReader::get_bits(int n) {
  std::uint32_t v = 0;
  for (int i = 0; i < n; ++i) v = (v << 1) | static_cast<std::uint32_t>(get_bit());
  return v;
}

std::uint32_t StreamBitReader::get_ue() {
  int zeros = 0;
  while (get_bit() == 0) {
    if (overrun_ || zeros > 32) {
      overrun_ = true;
      return 0;
    }
    zeros++;
  }
  std::uint32_t v = 1;
  for (int i = 0; i < zeros; ++i) v = (v << 1) | static_cast<std::uint32_t>(get_bit());
  return v - 1;
}

std::int32_t StreamBitReader::get_se() {
  std::uint32_t u = get_ue();
  if (u == 0) return 0;
  if (u & 1u) return static_cast<std::int32_t>((u + 1) / 2);
  return -static_cast<std::int32_t>(u / 2);
}

}  // namespace dfdbg::h264

// Filter and controller implementations of the PEDF H.264 decoder, plus the
// MIND architecture description they plug into.
#include <memory>

#include "dfdbg/common/assert.hpp"
#include "dfdbg/h264/app.hpp"
#include "dfdbg/h264/bitstream.hpp"

namespace dfdbg::h264 {

using pedf::FilterContext;
using pedf::Value;

const char* to_string(FaultPlan::Kind k) {
  switch (k) {
    case FaultPlan::Kind::kNone: return "none";
    case FaultPlan::Kind::kRateMismatch: return "rate-mismatch";
    case FaultPlan::Kind::kCorruptSplitter: return "corrupt-splitter";
    case FaultPlan::Kind::kDropConfig: return "drop-config";
    case FaultPlan::Kind::kSkipIpf: return "skip-ipf";
  }
  return "?";
}

std::uint16_t mbtype_code(MbMode mode) {
  return static_cast<std::uint16_t>(5 * (static_cast<int>(mode) + 1));
}

// ---------------------------------------------------------------------------
// The architecture description (paper §IV-A / Fig. 4)
// ---------------------------------------------------------------------------

const char* kH264Adl = R"adl(
// Token payload types (paper's C structs, declared with the @Type extension).
@Type struct MbHdr_t  { U32 Addr hex; U32 Mode; U32 Dx; U32 Dy; }
@Type struct Blk_t    { U32 Addr hex; U32 Plane; U32 BlkIdx; U32 Mode;
                        U32 Dx; U32 Dy; U32 N;
                        U32 C0; U32 C1; U32 C2; U32 C3; U32 C4; U32 C5;
                        U32 C6; U32 C7; U32 C8; U32 C9; U32 C10; U32 C11;
                        U32 C12; U32 C13; U32 C14; U32 C15; }
@Type struct CbCrMB_t { U32 Addr hex; U32 InterNotIntra; U32 Izz; }
@Type struct MbDone_t { U32 Addr hex; U32 Izz; }

@Filter
primitive Vld {
  data      stddefs.h:U32 mbs_parsed;
  source    vld.c;
  input  stddefs.h:U8 as bits_in;
  output MbHdr_t as mbhdr_out;
  output Blk_t as coeff_out;
}

@Filter
primitive Bh {
  source    bh.c;
  input  MbHdr_t as mbhdr_in;
  output stddefs.h:U32 as bh2red_out;
  output stddefs.h:U32 as bh2hwcfg_out;
}

@Filter
primitive Hwcfg {
  source    hwcfg.c;
  input  stddefs.h:U32 as bh_in;
  output stddefs.h:U16 as pipe_MbType_out;
  output stddefs.h:U32 as ipred_cfg_out;
}

@Module
composite Front {
  contains as controller { source front_ctrl.c; }
  input  stddefs.h:U8 as module_in;
  output Blk_t as coeff_out;
  output stddefs.h:U32 as red_out;
  output stddefs.h:U16 as mbtype_out;
  output stddefs.h:U32 as ipredcfg_out;
  contains Vld as vld;
  contains Bh as bh;
  contains Hwcfg as hwcfg;
  binds this.module_in to vld.bits_in;
  binds vld.mbhdr_out to bh.mbhdr_in;
  binds vld.coeff_out to this.coeff_out;
  binds bh.bh2red_out to this.red_out;
  binds bh.bh2hwcfg_out to hwcfg.bh_in;
  binds hwcfg.pipe_MbType_out to this.mbtype_out;
  binds hwcfg.ipred_cfg_out to this.ipredcfg_out;
}

@Filter
primitive Pipe {
  attribute stddefs.h:U32 last_mb_intra;
  attribute stddefs.h:U32 last_addr;
  source    pipe.c;
  input  Blk_t as coeff_in;
  input  stddefs.h:U16 as MbType_in;
  input  CbCrMB_t as Red2PipeCbMB_in;
  output Blk_t as Pipe_out;
  output Blk_t as pipe_mc_out;
  output stddefs.h:U32 as pipe_ipf_out;
}

@Filter
primitive Red {
  source    red.c;
  input  stddefs.h:U32 as bh_in;
  output CbCrMB_t as Red2PipeCbMB_out;
  output stddefs.h:U32 as red_mc_out;
}

@Filter
primitive Ipred {
  source    ipred.c;
  input  Blk_t as Pipe_in;
  input  stddefs.h:U32 as Hwcfg_in;
  output MbDone_t as Add2Dblock_ipf_out;
  output stddefs.h:U32 as Add2Dblock_MB_out;
}

@Filter
primitive Mc {
  source    mc.c;
  input  Blk_t as pipe_in;
  input  stddefs.h:U32 as red_in;
  output MbDone_t as mc_ipf_out;
}

@Filter
primitive Ipf {
  data      stddefs.h:U32 mbs_done;
  source    ipf.c;
  input  MbDone_t as Add2Dblock_ipred_in;
  input  stddefs.h:U32 as Add2Dblock_MB_in;
  input  MbDone_t as Add2Dblock_mc_in;
  input  stddefs.h:U32 as pipe_in;
  output stddefs.h:U32 as ipf_out;
}

@Module
composite Pred {
  contains as controller { source pred_ctrl.c; }
  input  Blk_t as coeff_in;
  input  stddefs.h:U32 as red_in;
  input  stddefs.h:U16 as mbtype_in;
  input  stddefs.h:U32 as ipredcfg_in;
  output stddefs.h:U32 as module_out;
  contains Pipe as pipe;
  contains Red as red;
  contains Ipred as ipred;
  contains Mc as mc;
  contains Ipf as ipf;
  binds this.coeff_in to pipe.coeff_in;
  binds this.mbtype_in to pipe.MbType_in;
  binds this.red_in to red.bh_in;
  binds this.ipredcfg_in to ipred.Hwcfg_in;
  binds red.Red2PipeCbMB_out to pipe.Red2PipeCbMB_in;
  binds red.red_mc_out to mc.red_in;
  binds pipe.Pipe_out to ipred.Pipe_in;
  binds pipe.pipe_mc_out to mc.pipe_in;
  binds pipe.pipe_ipf_out to ipf.pipe_in;
  binds ipred.Add2Dblock_ipf_out to ipf.Add2Dblock_ipred_in;
  binds ipred.Add2Dblock_MB_out to ipf.Add2Dblock_MB_in;
  binds mc.mc_ipf_out to ipf.Add2Dblock_mc_in;
  binds ipf.ipf_out to this.module_out;
}

@Module
composite H264Decoder {
  input  stddefs.h:U8 as bitstream_in;
  output stddefs.h:U32 as decoded_out;
  contains Front as front;
  contains Pred as pred;
  binds this.bitstream_in to front.module_in;
  binds front.coeff_out to pred.coeff_in;
  binds front.red_out to pred.red_in;
  binds front.mbtype_out to pred.mbtype_in;
  binds front.ipredcfg_out to pred.ipredcfg_in;
  binds pred.module_out to this.decoded_out;
}
)adl";

// ---------------------------------------------------------------------------
// Helpers
// ---------------------------------------------------------------------------

namespace {

std::uint64_t pack_i32(int v) { return static_cast<std::uint32_t>(v); }
int unpack_i32(std::uint64_t bits) {
  return static_cast<std::int32_t>(static_cast<std::uint32_t>(bits));
}

constexpr std::uint32_t kMbAddrBase = 0x1000;
constexpr std::uint32_t kMbAddrStride = 0x40;

std::uint32_t mb_addr(int mb_index) {
  return kMbAddrBase + static_cast<std::uint32_t>(mb_index) * kMbAddrStride;
}
int mb_index_of(std::uint64_t addr) {
  return static_cast<int>((addr - kMbAddrBase) / kMbAddrStride);
}

/// Large-but-deterministic checksum for CbCrMB_t.Izz (Fibonacci hashing).
std::uint32_t red_izz(std::uint32_t summary) {
  return (summary * 2654435761u) & 0x0fffffffu;
}

const char* kCoefFieldNames[16] = {"C0", "C1", "C2",  "C3",  "C4",  "C5",  "C6",  "C7",
                                   "C8", "C9", "C10", "C11", "C12", "C13", "C14", "C15"};

/// Reads one Blk_t token into MbSyntax block storage; returns block index.
int read_blk(const Value& blk, MbSyntax* mb, std::uint32_t* addr) {
  *addr = static_cast<std::uint32_t>(blk.field_u64("Addr"));
  mb->mode = static_cast<MbMode>(blk.field_u64("Mode"));
  mb->mv.dx = unpack_i32(blk.field_u64("Dx"));
  mb->mv.dy = unpack_i32(blk.field_u64("Dy"));
  int b = static_cast<int>(blk.field_u64("BlkIdx"));
  auto& q = mb->qcoef[static_cast<std::size_t>(b)];
  int n = static_cast<int>(blk.field_u64("N"));
  for (int i = 0; i < 16; ++i)
    q[static_cast<std::size_t>(i)] = i < n ? unpack_i32(blk.field_u64(kCoefFieldNames[i])) : 0;
  return b;
}

// ---------------------------------------------------------------------------
// Filters
// ---------------------------------------------------------------------------

/// vld: variable-length decoder. Parses the header lazily, then exactly one
/// macroblock per firing, emitting the MB header to bh and 24 Blk_t
/// coefficient tokens to pipe.
class VldFilter : public pedf::Filter {
 public:
  VldFilter(std::string name, SharedStore* store) : Filter(std::move(name)), store_(store) {
    set_source("vld.c", 100,
               {"// vld.c -- variable length decoder (one MB per WORK step)",
                "if (!pedf.data.header_done) parse_header();",
                "MbSyntax mb = parse_mb();",
                "pedf.io.mbhdr_out[n] = mb.header;",
                "for (b = 0; b < 24; b++)",
                "  pedf.io.coeff_out[n] = mb.block[b];"});
  }

  void work(FilterContext& pedf) override {
    if (reader_ == nullptr) {
      src_ = std::make_unique<TokenSource>(&pedf);
      reader_ = std::make_unique<StreamBitReader>(*src_);
    }
    StreamInfo& info = store_->info;
    pedf.line(101);
    if (!info.header_parsed) {
      StreamHeader h = parse_header(*reader_);
      DFDBG_CHECK_MSG(h.valid, "vld: malformed stream header");
      info.params = h.params;
      info.header_parsed = true;
      store_->work = Frame(h.params.width, h.params.height);
    }
    if (info.parsed_mbs >= info.params.total_mbs()) return;
    if (info.parsed_mbs % info.params.mbs_per_frame() == 0)
      parsed_frame_intra_ = parse_frame_marker(*reader_);

    pedf.line(102);
    MbSyntax mb = parse_mb(*reader_);
    DFDBG_CHECK_MSG(!reader_->overrun(), "vld: bitstream truncated");
    int idx = info.parsed_mbs;
    pedf.compute(40);

    pedf.line(103);
    Value hdr = Value::make_struct(port("mbhdr_out")->type().struct_type());
    hdr.set_field("Addr", mb_addr(idx));
    hdr.set_field("Mode", static_cast<std::uint64_t>(mb.mode));
    hdr.set_field("Dx", pack_i32(mb.mv.dx));
    hdr.set_field("Dy", pack_i32(mb.mv.dy));
    pedf.out("mbhdr_out").put(hdr);

    pedf.line(104);
    const pedf::StructType* blk_st = port("coeff_out")->type().struct_type();
    for (int b = 0; b < CodecParams::kBlocksPerMb; ++b) {
      pedf.line(105);
      Value blk = Value::make_struct(blk_st);
      blk.set_field("Addr", mb_addr(idx));
      blk.set_field("Plane", static_cast<std::uint64_t>(block_geom(0, 0, b).plane));
      blk.set_field("BlkIdx", static_cast<std::uint64_t>(b));
      blk.set_field("Mode", static_cast<std::uint64_t>(mb.mode));
      blk.set_field("Dx", pack_i32(mb.mv.dx));
      blk.set_field("Dy", pack_i32(mb.mv.dy));
      const auto& q = mb.qcoef[static_cast<std::size_t>(b)];
      int n = 16;
      while (n > 0 && q[static_cast<std::size_t>(n - 1)] == 0) n--;
      blk.set_field("N", static_cast<std::uint64_t>(n));
      for (int i = 0; i < n; ++i) blk.set_field(kCoefFieldNames[i], pack_i32(q[static_cast<std::size_t>(i)]));
      pedf.out("coeff_out").put(blk);
    }
    info.parsed_mbs++;
    pedf.data("mbs_parsed").set_scalar_u64(static_cast<std::uint64_t>(info.parsed_mbs));
  }

 private:
  class TokenSource : public ByteSource {
   public:
    explicit TokenSource(FilterContext* ctx) : ctx_(ctx) {}
    bool next(std::uint8_t* out) override {
      auto v = ctx_->in("bits_in").get_opt();
      if (!v.has_value()) return false;
      *out = static_cast<std::uint8_t>(v->as_u64() & 0xff);
      return true;
    }

   private:
    FilterContext* ctx_;
  };

  SharedStore* store_;
  std::unique_ptr<TokenSource> src_;
  std::unique_ptr<StreamBitReader> reader_;
  bool parsed_frame_intra_ = true;
};

/// bh: block-header processing. Summarizes each MB header for the reorder
/// (red) and hardware-config (hwcfg) stages.
class BhFilter : public pedf::Filter {
 public:
  BhFilter(std::string name, SharedStore* store) : Filter(std::move(name)), store_(store) {
    set_source("bh.c", 50,
               {"// bh.c -- block header analysis",
                "hdr = pedf.io.mbhdr_in[n];",
                "summary = (mb_index(hdr.Addr) << 8) | hdr.Mode;",
                "pedf.io.bh2red_out[n] = summary;",
                "pedf.io.bh2hwcfg_out[n] = summary;"});
  }

  void work(FilterContext& pedf) override {
    pedf.line(51);
    Value hdr = pedf.in("mbhdr_in").get();
    int idx = mb_index_of(hdr.field_u64("Addr"));
    std::uint32_t mode = static_cast<std::uint32_t>(hdr.field_u64("Mode"));
    pedf.compute(10);
    std::uint32_t summary = (static_cast<std::uint32_t>(idx) << 8) | mode;
    pedf.line(53);
    pedf.out("bh2red_out").put(Value::u32(summary));
    pedf.line(54);
    pedf.out("bh2hwcfg_out").put(Value::u32(summary));
  }

 private:
  SharedStore* store_;
};

/// hwcfg: hardware configuration. Emits the MbType code to pipe and, for
/// intra MBs, the predictor configuration (the quantization parameter) to
/// ipred. Fault kDropConfig silently drops one of the latter.
class HwcfgFilter : public pedf::Filter {
 public:
  HwcfgFilter(std::string name, SharedStore* store) : Filter(std::move(name)), store_(store) {
    set_source("hwcfg.c", 70,
               {"// hwcfg.c -- accelerator configuration",
                "s = pedf.io.bh_in[n];",
                "pedf.io.pipe_MbType_out[n] = mbtype_code(s & 0xff);",
                "if (is_intra(s))",
                "  pedf.io.ipred_cfg_out[n] = qp;"});
  }

  void work(FilterContext& pedf) override {
    pedf.line(71);
    std::uint32_t s = static_cast<std::uint32_t>(pedf.in("bh_in").get().as_u64());
    auto mode = static_cast<MbMode>(s & 0xff);
    int idx = static_cast<int>(s >> 8);
    pedf.compute(5);
    pedf.line(72);
    pedf.out("pipe_MbType_out").put(Value::u16(mbtype_code(mode)));
    if (!is_inter_mode(mode)) {
      if (store_->fault.kind == FaultPlan::Kind::kDropConfig && store_->fault.triggers(idx))
        return;  // the seeded bug: config token silently dropped
      pedf.line(74);
      pedf.out("ipred_cfg_out").put(Value::u32(static_cast<std::uint32_t>(store_->info.params.qp)));
    }
  }

 private:
  SharedStore* store_;
};

/// red: reorder/dispatch stage (a *splitter* in the paper's terms). Expands
/// bh's summary into the chroma-MB descriptor for pipe and, for inter MBs,
/// a work order for mc. Fault kCorruptSplitter flips the routing flag.
class RedFilter : public pedf::Filter {
 public:
  RedFilter(std::string name, SharedStore* store) : Filter(std::move(name)), store_(store) {
    set_source("red.c", 30,
               {"// red.c -- reorder / dispatch (splitter)",
                "s = pedf.io.bh_in[n];",
                "inter = (s & 0xff) == MODE_INTER;",
                "pedf.io.Red2PipeCbMB_out[n] = make_cbcr(s, inter);",
                "if (inter)",
                "  pedf.io.red_mc_out[n] = s;"});
  }

  void work(FilterContext& pedf) override {
    pedf.line(31);
    std::uint32_t s = static_cast<std::uint32_t>(pedf.in("bh_in").get().as_u64());
    int idx = static_cast<int>(s >> 8);
    bool inter = is_inter_mode(static_cast<MbMode>(s & 0xff));
    if (store_->fault.kind == FaultPlan::Kind::kCorruptSplitter && store_->fault.triggers(idx))
      inter = !inter;  // the seeded bug: routing flag corrupted
    pedf.compute(8);
    pedf.line(33);
    Value cb = Value::make_struct(port("Red2PipeCbMB_out")->type().struct_type());
    cb.set_field("Addr", mb_addr(idx));
    cb.set_field("InterNotIntra", inter ? 1 : 0);
    cb.set_field("Izz", red_izz(s));
    pedf.out("Red2PipeCbMB_out").put(cb);
    if (inter) {
      pedf.line(35);
      pedf.out("red_mc_out").put(Value::u32(s));
    }
  }

 private:
  SharedStore* store_;
};

/// pipe: per-MB dispatch pipeline. Consumes the MbType token, the chroma
/// descriptor and the 24 coefficient blocks, routes the blocks to the
/// intra (ipred) or inter (mc) engine based on the descriptor, and issues
/// the in-loop-filter control token. Fault kRateMismatch issues one control
/// token per *block* (24x the correct rate).
class PipeFilter : public pedf::Filter {
 public:
  PipeFilter(std::string name, SharedStore* store) : Filter(std::move(name)), store_(store) {
    set_source("pipe.c", 140,
               {"// pipe.c -- macroblock dispatch pipeline",
                "mbtype = pedf.io.MbType_in[n];",
                "cbcr = pedf.io.Red2PipeCbMB_in[n];",
                "inter = cbcr.InterNotIntra;",
                "for (b = 0; b < 24; b++) {",
                "  blk = pedf.io.coeff_in[n];",
                "  if (inter) pedf.io.pipe_mc_out[n] = blk;",
                "  else       pedf.io.Pipe_out[n] = blk;",
                "}",
                "pedf.io.pipe_ipf_out[n] = ctl(inter, cbcr.Addr);"});
  }

  void work(FilterContext& pedf) override {
    pedf.line(141);
    Value mbtype = pedf.in("MbType_in").get();
    (void)mbtype;
    pedf.line(142);
    Value cb = pedf.in("Red2PipeCbMB_in").get();
    bool inter = cb.field_u64("InterNotIntra") != 0;
    std::uint32_t addr = static_cast<std::uint32_t>(cb.field_u64("Addr"));
    int idx = mb_index_of(addr);
    pedf.attr("last_mb_intra").set_scalar_u64(inter ? 0 : 1);
    pedf.attr("last_addr").set_scalar_u64(addr);
    pedf.compute(15);
    bool rate_bug =
        store_->fault.kind == FaultPlan::Kind::kRateMismatch && store_->fault.triggers(idx);
    std::uint32_t ctl = (inter ? 0x80000000u : 0u) | addr;
    for (int b = 0; b < CodecParams::kBlocksPerMb; ++b) {
      pedf.line(145);
      Value blk = pedf.in("coeff_in").get();
      if (inter)
        pedf.out("pipe_mc_out").put(blk);
      else
        pedf.out("Pipe_out").put(blk);
      if (rate_bug) pedf.out("pipe_ipf_out").put(Value::u32(ctl));  // seeded bug
    }
    if (!rate_bug) {
      pedf.line(149);
      pedf.out("pipe_ipf_out").put(Value::u32(ctl));
    }
  }

 private:
  SharedStore* store_;
};

/// ipred: intra prediction + reconstruction engine. One intra MB per firing.
class IpredFilter : public pedf::Filter {
 public:
  IpredFilter(std::string name, SharedStore* store) : Filter(std::move(name)), store_(store) {
    // Source numbering matches the paper's §VI-C listing (lines 220-221).
    set_source("ipred.c", 214,
               {"// ipred.c -- intra prediction engine",
                "qp = pedf.io.Hwcfg_in[n];",
                "for (b = 0; b < 24; b++)",
                "  mb.block[b] = pedf.io.Pipe_in[n];",
                "izz = reconstruct_mb(work_frame, mb, qp);",
                "",
                "// push add2dBlock to ipf",
                "pedf.io.Add2Dblock_ipf_out[...] = ...;",
                "pedf.io.Add2Dblock_MB_out[n] = izz;"});
  }

  void work(FilterContext& pedf) override {
    pedf.line(215);
    Value cfg = pedf.in("Hwcfg_in").get();
    int qp = static_cast<int>(cfg.as_u64());
    MbSyntax mb;
    std::uint32_t addr = 0;
    pedf.line(216);
    for (int b = 0; b < CodecParams::kBlocksPerMb; ++b) {
      pedf.line(217);
      Value blk = pedf.in("Pipe_in").get();
      read_blk(blk, &mb, &addr);
    }
    const CodecParams& p = store_->info.params;
    int idx = mb_index_of(addr);
    int fidx = idx % p.mbs_per_frame();
    pedf.compute(60);
    pedf.line(218);
    std::uint32_t izz = reconstruct_mb(store_->work, nullptr, fidx % p.mbs_x(),
                                       fidx / p.mbs_x(), mb, qp);
    pedf.line(220);
    pedf.line(221);
    Value done = Value::make_struct(port("Add2Dblock_ipf_out")->type().struct_type());
    done.set_field("Addr", addr);
    done.set_field("Izz", izz);
    pedf.out("Add2Dblock_ipf_out").put(done);
    pedf.line(222);
    pedf.out("Add2Dblock_MB_out").put(Value::u32(izz));
  }

 private:
  SharedStore* store_;
};

/// mc: motion-compensation engine. One inter MB per firing; always applies
/// the inter predictor (so a misrouted intra MB reconstructs wrongly — the
/// observable symptom of the corrupt-splitter fault).
class McFilter : public pedf::Filter {
 public:
  McFilter(std::string name, SharedStore* store) : Filter(std::move(name)), store_(store) {
    set_source("mc.c", 180,
               {"// mc.c -- motion compensation engine",
                "order = pedf.io.red_in[n];",
                "for (b = 0; b < 24; b++)",
                "  mb.block[b] = pedf.io.pipe_in[n];",
                "izz = reconstruct_mb_inter(work_frame, ref_frame, mb);",
                "pedf.io.mc_ipf_out[n] = done(izz);"});
  }

  void work(FilterContext& pedf) override {
    pedf.line(181);
    Value order = pedf.in("red_in").get();
    (void)order;
    MbSyntax mb;
    std::uint32_t addr = 0;
    pedf.line(182);
    for (int b = 0; b < CodecParams::kBlocksPerMb; ++b) {
      pedf.line(183);
      Value blk = pedf.in("pipe_in").get();
      read_blk(blk, &mb, &addr);
    }
    const CodecParams& p = store_->info.params;
    int idx = mb_index_of(addr);
    int fidx = idx % p.mbs_per_frame();
    // Force the motion-compensated predictor regardless of the parsed mode:
    // mc IS the inter engine (P_Skip included; its mv is zero and its
    // residual blocks carry N=0). A frame with no reference predicts gray.
    mb.mode = MbMode::kInter;
    const Frame* ref = store_->ref();
    if (ref == nullptr) {
      if (gray_.width != p.width) gray_ = Frame(p.width, p.height);
      ref = &gray_;
    }
    pedf.compute(50);
    pedf.line(184);
    std::uint32_t izz =
        reconstruct_mb(store_->work, ref, fidx % p.mbs_x(), fidx / p.mbs_x(), mb, p.qp);
    pedf.line(185);
    Value done = Value::make_struct(port("mc_ipf_out")->type().struct_type());
    done.set_field("Addr", addr);
    done.set_field("Izz", izz);
    pedf.out("mc_ipf_out").put(done);
  }

 private:
  SharedStore* store_;
  Frame gray_;
};

/// ipf: in-loop filter and write-back. Consumes one control token per MB,
/// collects the matching reconstruction-done token, publishes frames into
/// the decoded picture buffer and reports each finished MB downstream.
class IpfFilter : public pedf::Filter {
 public:
  IpfFilter(std::string name, SharedStore* store) : Filter(std::move(name)), store_(store) {
    set_source("ipf.c", 240,
               {"// ipf.c -- in-loop filter & write-back",
                "ctl = pedf.io.pipe_in[n];",
                "if (ctl & INTER) done = pedf.io.Add2Dblock_mc_in[n];",
                "else { done = pedf.io.Add2Dblock_ipred_in[n];",
                "       chk  = pedf.io.Add2Dblock_MB_in[n]; }",
                "write_back(done.Addr);",
                "if (frame_complete()) publish_frame();",
                "pedf.io.ipf_out[n] = done.Addr;"});
  }

  void work(FilterContext& pedf) override {
    pedf.line(241);
    std::uint32_t ctl = static_cast<std::uint32_t>(pedf.in("pipe_in").get().as_u64());
    bool inter = (ctl & 0x80000000u) != 0;
    Value done;
    if (inter) {
      pedf.line(242);
      done = pedf.in("Add2Dblock_mc_in").get();
    } else {
      pedf.line(243);
      done = pedf.in("Add2Dblock_ipred_in").get();
      pedf.line(244);
      (void)pedf.in("Add2Dblock_MB_in").get();  // per-MB checksum, consumed
    }
    pedf.compute(25);
    StreamInfo& info = store_->info;
    pedf.line(245);
    info.frame_mbs_done++;
    info.done_mbs++;
    pedf.data("mbs_done").set_scalar_u64(static_cast<std::uint64_t>(info.done_mbs));
    if (info.frame_mbs_done >= info.params.mbs_per_frame()) {
      pedf.line(246);
      store_->decoded.push_back(info.params.deblock ? deblock_frame(store_->work)
                                                    : store_->work);
      store_->work = Frame(info.params.width, info.params.height);
      info.frame_mbs_done = 0;
      info.cur_frame++;
    }
    pedf.line(247);
    pedf.out("ipf_out").put(Value::u32(static_cast<std::uint32_t>(done.field_u64("Addr"))));
  }

 private:
  SharedStore* store_;
};

// ---------------------------------------------------------------------------
// Controllers
// ---------------------------------------------------------------------------

/// front_controller: one parsed macroblock per step (vld -> bh -> hwcfg).
class FrontController : public pedf::Controller {
 public:
  FrontController(std::string name, SharedStore* store)
      : Controller(std::move(name)), store_(store) {}

  void control(pedf::ControllerContext& ctx) override {
    while (ctx.predicate("more_input")) {
      ctx.next_step();
      ctx.actor_fire("vld");
      ctx.wait_for_actor_sync();
      ctx.actor_fire("bh");
      ctx.wait_for_actor_sync();
      ctx.actor_fire("hwcfg");
      ctx.wait_for_actor_sync();
      ctx.compute(12);
    }
  }

 private:
  SharedStore* store_;
};

/// pred_controller: one decoded macroblock per step. Uses the predicated
/// scheduling of PEDF: the mb_is_intra predicate (evaluated on pipe's
/// attribute) selects which engine fires. Fault kSkipIpf models a
/// controller scheduling bug.
class PredController : public pedf::Controller {
 public:
  PredController(std::string name, SharedStore* store)
      : Controller(std::move(name)), store_(store) {}

  void control(pedf::ControllerContext& ctx) override {
    while (ctx.predicate("more_mbs")) {
      ctx.next_step();
      ctx.actor_fire("red");
      ctx.wait_for_actor_sync();
      ctx.actor_fire("pipe");
      ctx.wait_for_actor_sync();
      if (ctx.predicate("mb_is_intra"))
        ctx.actor_fire("ipred");
      else
        ctx.actor_fire("mc");
      ctx.wait_for_actor_sync();
      int idx = store_->info.done_mbs;
      bool skip = store_->fault.kind == FaultPlan::Kind::kSkipIpf && store_->fault.triggers(idx);
      if (!skip) {  // the seeded bug skips the in-loop-filter stage
        ctx.actor_fire("ipf");
        ctx.wait_for_actor_sync();
      }
      ctx.compute(10);
    }
  }

 private:
  SharedStore* store_;
};

}  // namespace

// ---------------------------------------------------------------------------
// Behaviour registry
// ---------------------------------------------------------------------------

void register_h264_behaviors(mind::FilterRegistry& registry, SharedStore* store) {
  registry.register_filter("Vld", [store](const mind::AstPrimitive&, const std::string& n) {
    return std::unique_ptr<pedf::Filter>(new VldFilter(n, store));
  });
  registry.register_filter("Bh", [store](const mind::AstPrimitive&, const std::string& n) {
    return std::unique_ptr<pedf::Filter>(new BhFilter(n, store));
  });
  registry.register_filter("Hwcfg", [store](const mind::AstPrimitive&, const std::string& n) {
    return std::unique_ptr<pedf::Filter>(new HwcfgFilter(n, store));
  });
  registry.register_filter("Red", [store](const mind::AstPrimitive&, const std::string& n) {
    return std::unique_ptr<pedf::Filter>(new RedFilter(n, store));
  });
  registry.register_filter("Pipe", [store](const mind::AstPrimitive&, const std::string& n) {
    return std::unique_ptr<pedf::Filter>(new PipeFilter(n, store));
  });
  registry.register_filter("Ipred", [store](const mind::AstPrimitive&, const std::string& n) {
    return std::unique_ptr<pedf::Filter>(new IpredFilter(n, store));
  });
  registry.register_filter("Mc", [store](const mind::AstPrimitive&, const std::string& n) {
    return std::unique_ptr<pedf::Filter>(new McFilter(n, store));
  });
  registry.register_filter("Ipf", [store](const mind::AstPrimitive&, const std::string& n) {
    return std::unique_ptr<pedf::Filter>(new IpfFilter(n, store));
  });
  registry.register_controller("Front",
                                [store](const mind::AstComposite&, const std::string&) {
    return std::unique_ptr<pedf::Controller>(new FrontController("front_controller", store));
  });
  registry.register_controller("Pred", [store](const mind::AstComposite&, const std::string&) {
    return std::unique_ptr<pedf::Controller>(new PredController("pred_controller", store));
  });
}

}  // namespace dfdbg::h264

// Quickstart: build the paper's `AModule` (Fig. 2) from its architecture
// description, attach the dataflow debugger, and drive a short interactive
// session: catch a WORK firing, inspect the scheduling state, continue.
//
// Build & run:   ./build/examples/quickstart
#include <cstdio>

#include "dfdbg/dbgcli/cli.hpp"
#include "dfdbg/debug/session.hpp"
#include "dfdbg/h264/app.hpp"
#include "dfdbg/mind/analyze.hpp"
#include "dfdbg/mind/dot.hpp"
#include "dfdbg/mind/instantiate.hpp"
#include "dfdbg/mind/parser.hpp"
#include "dfdbg/pedf/application.hpp"
#include "dfdbg/sim/platform.hpp"

// The ADL excerpt from paper §IV-A, verbatim except for one fix the MIND
// semantic checker forces on us: the paper's controller declares
// `output U32 as cmd_out_1` while AFilter declares `input U8 as cmd_in` —
// a type mismatch in the paper's own listing. We use U32 on both ends.
static const char* kAModuleAdl = R"adl(
@Module
composite AModule {
  contains as controller {
    output U32 as cmd_out_1;
    output U32 as cmd_out_2;
    source ctrl_source.c;
  }
  // External connections
  input U32 as module_in;
  output U32 as module_out;
  // Sub-components
  contains AFilter as filter_1;
  contains AFilter as filter_2;
  // Connections
  binds controller.cmd_out_1 to filter_1.cmd_in;
  binds controller.cmd_out_2 to filter_2.cmd_in;
  binds this.module_in to filter_1.an_input;
  binds filter_1.an_output to filter_2.an_input;
  binds filter_2.an_output to this.module_out;
}

@Filter
primitive AFilter {
  data      stddefs.h:U32 a_private_data;
  attribute stddefs.h:U32 an_attribute;
  source    the_source.c;
  input stddefs.h:U32 as an_input;
  input stddefs.h:U32 as cmd_in;
  output stddefs.h:U32 as an_output;
}
)adl";

using namespace dfdbg;

namespace {

/// AFilter behaviour: read the command and the data token, add the private
/// counter, forward. (The ADL declares the ports/data; this adds semantics.)
class AFilterImpl : public pedf::Filter {
 public:
  explicit AFilterImpl(std::string name) : Filter(std::move(name)) {}
  void work(pedf::FilterContext& pedf) override {
    pedf::Value cmd = pedf.in("cmd_in").get();
    pedf::Value v = pedf.in("an_input").get();
    pedf::Value& counter = pedf.data("a_private_data");
    counter.set_scalar_u64(counter.as_u64() + 1);
    pedf.compute(10);
    pedf.out("an_output").put(
        pedf::Value::u32(static_cast<std::uint32_t>(v.as_u64() + cmd.as_u64())));
  }
};

/// AModule controller: each step sends one command to each filter and fires
/// both of them, exactly the §IV-B protocol.
class AModuleController : public pedf::Controller {
 public:
  AModuleController(std::string name, int steps) : Controller(std::move(name)), steps_(steps) {}
  void control(pedf::ControllerContext& ctx) override {
    for (int s = 0; s < steps_; ++s) {
      ctx.next_step();
      ctx.send("cmd_out_1", pedf::Value::u32(1));
      ctx.send("cmd_out_2", pedf::Value::u32(2));
      ctx.actor_start("filter_1");
      ctx.actor_start("filter_2");
      ctx.wait_for_actor_init();
      ctx.actor_sync("filter_1");
      ctx.actor_sync("filter_2");
      ctx.wait_for_actor_sync();
    }
  }

 private:
  int steps_;
};

}  // namespace

int main() {
  constexpr int kSteps = 4;

  // 1. Parse and check the architecture (the MIND tool-chain).
  auto doc = mind::parse(kAModuleAdl);
  if (!doc.ok()) {
    std::fprintf(stderr, "ADL parse error: %s\n", doc.status().message().c_str());
    return 1;
  }
  auto report = mind::analyze(*doc, "AModule");
  if (!report.ok()) {
    std::fprintf(stderr, "ADL semantic error: %s\n", report.status().message().c_str());
    return 1;
  }

  // 2. Instantiate onto the simulated MPSoC platform.
  sim::Kernel kernel;
  sim::PlatformConfig pc;
  pc.clusters = 1;
  pc.pes_per_cluster = 4;
  sim::Platform platform(kernel, pc);
  pedf::Application app(platform, "quickstart");

  mind::FilterRegistry registry;
  registry.register_filter("AFilter", [](const mind::AstPrimitive&, const std::string& n) {
    return std::unique_ptr<pedf::Filter>(new AFilterImpl(n));
  });
  registry.register_controller("AModule", [](const mind::AstComposite&, const std::string&) {
    return std::unique_ptr<pedf::Controller>(new AModuleController("controller", kSteps));
  });
  auto root = mind::instantiate(*doc, "AModule", "amodule", app.types(), registry);
  if (!root.ok()) {
    std::fprintf(stderr, "instantiation error: %s\n", root.status().message().c_str());
    return 1;
  }
  app.set_root(std::move(*root));
  app.add_host_source("src", "amodule.module_in",
                      {pedf::Value::u32(10), pedf::Value::u32(20), pedf::Value::u32(30),
                       pedf::Value::u32(40)});
  app.add_host_sink("sink", "amodule.module_out", kSteps);

  // 3. Attach the dataflow debugger BEFORE elaboration so it observes the
  // framework's init phase (graph reconstruction, paper Contribution #1).
  dbg::Session session(app);
  session.attach();
  if (dfdbg::Status s = app.elaborate(); !s.ok()) {
    std::fprintf(stderr, "elaboration error: %s\n", s.message().c_str());
    return 1;
  }
  app.start();

  // 4. Drive a small GDB-style session.
  cli::Interpreter gdb(session, /*echo=*/true);
  std::printf("=== reconstructed dataflow graph (Fig. 2) ===\n");
  gdb.execute("graph");
  std::printf("=== catch a firing of filter_2, then inspect ===\n");
  gdb.execute("filter filter_2 catch work");
  gdb.execute("run");
  gdb.execute("info sched amodule");
  gdb.execute("print filter_1.data.a_private_data");
  gdb.execute("info links");
  std::printf("=== run to completion ===\n");
  gdb.execute("delete 0");
  gdb.execute("continue");

  std::printf("quickstart finished at t=%llu cycles\n",
              static_cast<unsigned long long>(kernel.now()));
  return 0;
}

// Synchronous dataflow on the same debugger (paper §VII-C vs §VIII).
//
// A StreamIt-flavoured audio chain — upsampler, moving-average FIR,
// downsampler — declared with static rates. The SDF front-end solves the
// balance equations, synthesizes a deadlock-free periodic schedule, compiles
// the graph onto PEDF, and the *unchanged* dataflow debugger inspects it:
// the static rates show up directly in the firing counts and link traffic.
//
// Build & run:   ./build/examples/sdf_streamit
#include <cstdio>

#include "dfdbg/dbgcli/cli.hpp"
#include "dfdbg/debug/session.hpp"
#include "dfdbg/sdf/sdf.hpp"

using namespace dfdbg;
using pedf::PortDir;
using pedf::TypeDesc;
using pedf::Value;

int main() {
  sdf::SdfGraph g;
  // up: 1 -> 2 (zero-order hold)
  Status s = g.add_actor(
      {"up",
       {{"i", PortDir::kIn, 1, TypeDesc()}, {"o", PortDir::kOut, 2, TypeDesc()}},
       [](const std::vector<std::vector<Value>>& in, std::vector<std::vector<Value>>* out) {
         (*out)[0] = {in[0][0], in[0][0]};
       },
       /*compute=*/4});
  if (!s.ok()) return 1;
  // fir: 4 -> 4 (moving average over the window)
  s = g.add_actor(
      {"fir",
       {{"i", PortDir::kIn, 4, TypeDesc()}, {"o", PortDir::kOut, 4, TypeDesc()}},
       [](const std::vector<std::vector<Value>>& in, std::vector<std::vector<Value>>* out) {
         std::uint64_t acc = 0;
         for (const Value& v : in[0]) acc += v.as_u64();
         std::uint32_t mean = static_cast<std::uint32_t>(acc / in[0].size());
         for (std::size_t k = 0; k < in[0].size(); ++k)
           (*out)[0].push_back(Value::u32(
               static_cast<std::uint32_t>((in[0][k].as_u64() + mean) / 2)));
       },
       /*compute=*/16});
  if (!s.ok()) return 1;
  // down: 4 -> 1 (keep the first of each window)
  s = g.add_actor(
      {"down",
       {{"i", PortDir::kIn, 4, TypeDesc()}, {"o", PortDir::kOut, 1, TypeDesc()}},
       [](const std::vector<std::vector<Value>>& in, std::vector<std::vector<Value>>* out) {
         (*out)[0] = {in[0][0]};
       },
       /*compute=*/2});
  if (!s.ok()) return 1;
  if (!g.add_edge({"up", "o", "fir", "i", 0}).ok()) return 1;
  if (!g.add_edge({"fir", "o", "down", "i", 0}).ok()) return 1;

  auto rep = g.repetition_vector();
  if (!rep.ok()) {
    std::fprintf(stderr, "balance equations: %s\n", rep.status().message().c_str());
    return 1;
  }
  std::printf("repetition vector: up=%llu fir=%llu down=%llu (per schedule period)\n",
              static_cast<unsigned long long>((*rep)[0]),
              static_cast<unsigned long long>((*rep)[1]),
              static_cast<unsigned long long>((*rep)[2]));
  auto sched = g.schedule();
  if (!sched.ok()) return 1;
  std::printf("static schedule: ");
  for (const sdf::Firing& f : *sched) std::printf("%s x%u  ", f.actor.c_str(), f.count);
  std::printf("\n\n");

  constexpr std::uint64_t kPeriods = 6;
  sim::Kernel kernel;
  sim::PlatformConfig pc;
  pc.clusters = 1;
  pc.pes_per_cluster = 8;
  sim::Platform platform(kernel, pc);
  pedf::Application app(platform, "audio");
  auto mod = g.instantiate("audio", kPeriods);
  if (!mod.ok()) {
    std::fprintf(stderr, "instantiate: %s\n", mod.status().message().c_str());
    return 1;
  }
  app.set_root(std::move(*mod));
  std::vector<Value> samples;
  for (std::uint64_t i = 0; i < (*rep)[0] * kPeriods; ++i)
    samples.push_back(Value::u32(static_cast<std::uint32_t>(100 + 20 * (i % 5))));
  app.add_host_source("adc", "audio.up_i", std::move(samples));
  auto& dac = app.add_host_sink("dac", "audio.down_o", (*rep)[2] * kPeriods);

  dbg::Session session(app);
  session.attach();
  if (Status st = app.elaborate(); !st.ok()) {
    std::fprintf(stderr, "elaborate: %s\n", st.message().c_str());
    return 1;
  }
  if (Status st = g.apply_initial_tokens(app); !st.ok()) return 1;
  app.start();

  cli::Interpreter gdb(session, /*echo=*/true);
  std::printf("(gdb) filter fir catch work        # fires once per period\n");
  gdb.execute("filter fir catch work");
  gdb.execute("run");
  std::printf("(gdb) info sched audio\n");
  gdb.execute("info sched audio");
  std::printf("(gdb) iface up::o record\n");
  gdb.execute("iface up::o record");
  gdb.execute("delete 0");
  std::printf("(gdb) continue                      # to completion\n");
  gdb.execute("continue");
  std::printf("(gdb) info links                    # static rates in the counters\n");
  gdb.execute("info links");

  std::printf("\noutput samples: %zu (expected %llu)\n", dac.received().size(),
              static_cast<unsigned long long>((*rep)[2] * kPeriods));
  return dac.received().size() == (*rep)[2] * kPeriods ? 0 : 1;
}

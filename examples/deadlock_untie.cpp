// Altering the normal execution (paper §III): a dropped configuration token
// deadlocks the decoder; the debugger diagnoses the blocked actors and
// unties the deadlock by injecting the missing token — after which the
// decode completes bit-exactly.
//
// Build & run:   ./build/examples/deadlock_untie
#include <cstdio>

#include "dfdbg/dbgcli/cli.hpp"
#include "dfdbg/debug/session.hpp"
#include "dfdbg/h264/app.hpp"

using namespace dfdbg;

int main() {
  h264::H264AppConfig cfg;
  cfg.params.width = 32;
  cfg.params.height = 32;
  cfg.params.frame_count = 2;
  cfg.fault.kind = h264::FaultPlan::Kind::kDropConfig;  // hwcfg drops one token
  cfg.fault.trigger_mb = 2;

  auto built = h264::H264App::build(cfg);
  if (!built.ok()) {
    std::fprintf(stderr, "build failed: %s\n", built.status().message().c_str());
    return 1;
  }
  auto& app = **built;
  dbg::Session session(app.app());
  session.attach();
  app.start();
  cli::Interpreter gdb(session, /*echo=*/true);

  std::printf("(gdb) run\n");
  gdb.execute("run");  // reports the deadlock and who is blocked on what

  std::printf("\n(gdb) filter ipred info\n");
  gdb.execute("filter ipred info");

  std::printf("(gdb) info links   # the starved link is visible\n");
  gdb.execute("info links");

  std::printf("\n(gdb) tok insert ipred::Hwcfg_in %d   # the missing config token\n",
              cfg.params.qp);
  gdb.execute("tok insert ipred::Hwcfg_in " + std::to_string(cfg.params.qp));

  std::printf("(gdb) continue\n");
  gdb.execute("continue");

  std::printf("\ndecode completed; bit-exact against golden: %s\n",
              app.decoded_matches_golden() ? "YES" : "no");
  return app.decoded_matches_golden() ? 0 : 1;
}

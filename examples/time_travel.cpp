// Reverse execution on the H.264 decoder: the deterministic simulation
// kernel turns "re-run from scratch" into an exact reverse-continue.
//
// Scenario: the corrupt-splitter bug. You stop on the corrupted token at
// pipe — but the interesting moment was *earlier*, inside red. Travel back
// one stop and look again.
//
// Build & run:   ./build/examples/time_travel
#include <cstdio>

#include "dfdbg/dbgcli/render.hpp"
#include "dfdbg/dbgcli/timetravel.hpp"
#include "dfdbg/h264/app.hpp"

using namespace dfdbg;

namespace {

class H264Replay : public cli::ReplayInstance {
 public:
  H264Replay() {
    h264::H264AppConfig cfg;
    cfg.params.width = 32;
    cfg.params.height = 32;
    cfg.params.frame_count = 1;
    cfg.fault.kind = h264::FaultPlan::Kind::kCorruptSplitter;
    cfg.fault.trigger_mb = 2;
    auto built = h264::H264App::build(cfg);
    DFDBG_CHECK(built.ok());
    app_ = std::move(*built);
  }
  pedf::Application& app() override { return app_->app(); }
  void start() override { app_->start(); }

 private:
  std::unique_ptr<h264::H264App> app_;
};

}  // namespace

int main() {
  cli::TimeTravelDebugger tt(
      [] { return std::unique_ptr<cli::ReplayInstance>(new H264Replay()); });

  std::printf("(gdb) filter red catch work\n");
  if (!tt.execute("filter red catch work").ok()) return 1;
  std::printf("(gdb) filter red configure splitter\n");
  if (!tt.execute("filter red configure splitter").ok()) return 1;

  // Run to red's third firing (the MB the fault corrupts).
  for (int i = 0; i < 3; ++i) {
    auto out = tt.cont();
    if (out.result != sim::RunResult::kStopped) return 1;
    std::printf("%s   (t=%llu)\n", out.stops[0].message.c_str(),
                static_cast<unsigned long long>(out.stops[0].time));
  }
  std::printf("\nwe are at red's 3rd firing — but we wanted to inspect the state\n");
  std::printf("BEFORE it corrupted the token. Reverse-continue:\n\n");
  if (Status s = tt.reverse_continue(); !s.ok()) {
    std::fprintf(stderr, "reverse failed: %s\n", s.message().c_str());
    return 1;
  }
  std::printf("(gdb) reverse-continue\n%s   (t=%llu, stop %zu)\n",
              tt.session().history().back().message.c_str(),
              static_cast<unsigned long long>(tt.session().history().back().time),
              tt.stop_count());
  std::printf("\nred has fired exactly %llu time(s) now; the upstream token is intact:\n",
              static_cast<unsigned long long>(tt.session().graph().actor_by_name("red")->firings));
  std::printf("%s", cli::render_or_error(tt.session().last_token_view("red")).c_str());
  std::printf("\n(gdb) continue           # forward again, deterministically\n");
  auto out = tt.cont();
  std::printf("%s   (t=%llu)\n", out.stops.empty() ? "<end>" : out.stops[0].message.c_str(),
              static_cast<unsigned long long>(out.stops.empty() ? 0 : out.stops[0].time));
  return 0;
}

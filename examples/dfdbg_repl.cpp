// Interactive dataflow debugger REPL over the H.264 case-study decoder.
//
// Usage:
//   ./build/examples/dfdbg_repl [fault]
//     fault: none | rate-mismatch | corrupt-splitter | drop-config | skip-ipf
//
// Then drive it with the paper's commands:
//   (dfdbg) graph
//   (dfdbg) filter pipe catch work
//   (dfdbg) run
//   (dfdbg) filter pipe info last_token
//   (dfdbg) complete filter ip        # completion candidates
//   (dfdbg) quit
#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>

#include "dfdbg/common/strings.hpp"
#include "dfdbg/dbgcli/cli.hpp"
#include "dfdbg/dbgcli/timetravel.hpp"
#include "dfdbg/debug/session.hpp"
#include "dfdbg/h264/app.hpp"

using namespace dfdbg;

namespace {
/// Rebuildable instance for reverse execution.
class ReplInstance : public cli::ReplayInstance {
 public:
  explicit ReplInstance(const h264::H264AppConfig& cfg) {
    auto built = h264::H264App::build(cfg);
    DFDBG_CHECK_MSG(built.ok(), built.status().message());
    app_ = std::move(*built);
  }
  pedf::Application& app() override { return app_->app(); }
  void start() override { app_->start(); }

 private:
  std::unique_ptr<h264::H264App> app_;
};
}  // namespace

int main(int argc, char** argv) {
  h264::H264AppConfig cfg;
  cfg.params.width = 32;
  cfg.params.height = 32;
  cfg.params.frame_count = 2;
  if (argc > 1) {
    std::string fault = argv[1];
    if (fault == "rate-mismatch") {
      cfg.fault.kind = h264::FaultPlan::Kind::kRateMismatch;
      cfg.fault.trigger_mb = 0;
      cfg.fault.period = 1;
    } else if (fault == "corrupt-splitter") {
      cfg.fault.kind = h264::FaultPlan::Kind::kCorruptSplitter;
      cfg.fault.trigger_mb = 2;
    } else if (fault == "drop-config") {
      cfg.fault.kind = h264::FaultPlan::Kind::kDropConfig;
      cfg.fault.trigger_mb = 2;
    } else if (fault == "skip-ipf") {
      cfg.fault.kind = h264::FaultPlan::Kind::kSkipIpf;
      cfg.fault.trigger_mb = 1;
    } else if (fault != "none") {
      std::fprintf(stderr,
                   "unknown fault '%s' (use none|rate-mismatch|corrupt-splitter|"
                   "drop-config|skip-ipf)\n",
                   fault.c_str());
      return 2;
    }
  }

  cli::TimeTravelDebugger tt(
      [cfg] { return std::unique_ptr<cli::ReplayInstance>(new ReplInstance(cfg)); });

  std::printf("dataflow-dbg REPL — H.264 decoder loaded (%d MBs, fault: %s)\n",
              cfg.params.total_mbs(), h264::to_string(cfg.fault.kind));
  std::printf("commands: run/continue, filter, iface, module, step_both, break, watch,\n");
  std::printf("          list, print, graph, info, tok, focus/unfocus, delete,\n");
  std::printf("          enable/disable, save/source/export, complete <prefix>,\n");
  std::printf("          reverse (travel back one stop), quit\n");

  std::string line;
  for (;;) {
    std::printf("(dfdbg) ");
    std::fflush(stdout);
    if (!std::getline(std::cin, line)) break;
    std::string_view trimmed = trim(line);
    if (trimmed == "quit" || trimmed == "q" || trimmed == "exit") break;
    if (trimmed == "reverse" || trimmed == "rc") {
      Status s = tt.reverse_continue();
      if (!s.ok()) {
        std::printf("error: %s\n", s.message().c_str());
      } else if (!tt.session().history().empty()) {
        std::printf("%s   (back at stop %zu)\n",
                    tt.session().history().back().message.c_str(), tt.stop_count());
      } else {
        std::printf("[back at the beginning of the execution]\n");
      }
      continue;
    }
    if (trimmed == "run" || trimmed == "r" || trimmed == "continue" || trimmed == "c") {
      auto out = tt.cont();
      for (const auto& ev : out.stops) std::printf("%s\n", ev.message.c_str());
      continue;
    }
    if (starts_with(trimmed, "complete")) {
      std::string prefix(trim(trimmed.substr(std::strlen("complete"))));
      for (const std::string& c : tt.cli().complete(prefix))
        std::printf("  %s\n", c.c_str());
      continue;
    }
    tt.execute(line);
    std::fputs(tt.cli().console().take().c_str(), stdout);
  }
  std::printf("bye\n");
  return 0;
}

// Interactive debugging vs trace tools (paper §I / §VI-F): locate the same
// rate-mismatch bug twice — once post-mortem from an event trace, once
// live with a dataflow catchpoint — and compare what each method tells you.
//
// Build & run:   ./build/examples/trace_compare
#include <cstdio>

#include "dfdbg/dbgcli/render.hpp"
#include "dfdbg/debug/session.hpp"
#include "dfdbg/h264/app.hpp"
#include "dfdbg/trace/trace.hpp"

using namespace dfdbg;

namespace {
h264::H264AppConfig faulty_config() {
  h264::H264AppConfig cfg;
  cfg.params.width = 32;
  cfg.params.height = 32;
  cfg.params.frame_count = 1;
  cfg.fault.kind = h264::FaultPlan::Kind::kRateMismatch;
  cfg.fault.trigger_mb = 0;
  cfg.fault.period = 1;
  return cfg;
}
}  // namespace

int main() {
  // --- method 1: offline tracing -------------------------------------------
  std::printf("=== trace tool: run to completion, analyse post-mortem ===\n");
  {
    auto built = h264::H264App::build(faulty_config());
    if (!built.ok()) return 1;
    auto& app = **built;
    trace::TraceCollector tc(app.app(), 1 << 16);
    tc.attach();
    app.start();
    app.kernel().run();
    std::printf("collected %llu events\n",
                static_cast<unsigned long long>(tc.total_events()));
    std::uint32_t suspect = tc.busiest_link();
    pedf::Link* l = app.app().link_by_id(pedf::LinkId(suspect));
    std::printf("busiest link: %s (max occupancy %zu)\n", l->name().c_str(),
                tc.link_stats().at(suspect).max_occupancy);
    std::printf("-> the trace names the congested link, but tells you nothing\n"
                "   about WHY; you would now re-run with instrumentation, and\n"
                "   the token payloads are long gone.\n\n");
  }

  // --- method 2: interactive dataflow debugging ------------------------------
  std::printf("=== dataflow debugger: stop ON the condition, inspect live ===\n");
  {
    auto built = h264::H264App::build(faulty_config());
    if (!built.ok()) return 1;
    auto& app = **built;
    dbg::Session session(app.app());
    session.attach();
    app.start();
    auto bp = session.break_on_send("pipe::pipe_ipf_out");
    if (!bp.ok()) return 1;
    int stops = 0;
    std::size_t occ = 0;
    for (;;) {
      auto out = session.run();
      if (out.result != sim::RunResult::kStopped) break;
      stops++;
      occ = app.app().link_by_iface("ipf::pipe_in")->occupancy();
      if (occ >= 20) break;
    }
    std::printf("stopped after %d sends: pipe->ipf holds %zu tokens, live\n", stops, occ);
    std::printf("%s", cli::render_or_error(session.filter_view("pipe")).c_str());
    std::printf("scheduling state of module pred at the stop:\n%s",
                cli::render_or_error(session.sched_view("pred")).c_str());
    std::printf("-> the execution is FROZEN at the stall: every token is still\n"
                "   in flight and inspectable; pipe fired once but pushed %llu\n"
                "   control tokens this MB — the rate bug, caught in the act.\n",
                static_cast<unsigned long long>(
                    session.graph().link_by_iface("ipf::pipe_in")->pushes));
  }
  return 0;
}

// The paper's §VI case study as a runnable debugging session: the PEDF
// H.264 decoder with the corrupt-splitter fault injected, hunted down with
// the dataflow-aware debugger exactly as in the paper's transcripts.
//
// Build & run:   ./build/examples/h264_debug_session
#include <cstdio>

#include "dfdbg/dbgcli/cli.hpp"
#include "dfdbg/debug/session.hpp"
#include "dfdbg/h264/app.hpp"

using namespace dfdbg;

int main() {
  h264::H264AppConfig cfg;
  cfg.params.width = 32;
  cfg.params.height = 32;
  cfg.params.frame_count = 2;
  // The seeded bug: filter `red' corrupts the routing flag of intra MB #2,
  // sending it to the motion-compensation engine. The decoded video is
  // visibly wrong, but nothing crashes — the classic dataflow bug hunt.
  cfg.fault.kind = h264::FaultPlan::Kind::kCorruptSplitter;
  cfg.fault.trigger_mb = 2;

  auto built = h264::H264App::build(cfg);
  if (!built.ok()) {
    std::fprintf(stderr, "build failed: %s\n", built.status().message().c_str());
    return 1;
  }
  auto& app = **built;
  dbg::Session session(app.app());
  session.attach();
  app.start();
  cli::Interpreter gdb(session, /*echo=*/true);

  std::printf("--- run once: the output is wrong but nothing crashed ---\n");
  gdb.execute("run");
  std::printf("decoded matches golden reconstruction: %s\n",
              app.decoded_matches_golden() ? "yes" : "NO (observable error)");

  std::printf("\n--- second debug session on a fresh instance ---\n");
  auto built2 = h264::H264App::build(cfg);
  auto& app2 = **built2;
  dbg::Session session2(app2.app());
  session2.attach();
  app2.start();
  cli::Interpreter gdb2(session2, /*echo=*/true);

  // §VI-D: token-based application state and information flow.
  std::printf("\n(gdb) filter red configure splitter\n");
  gdb2.execute("filter red configure splitter");
  std::printf("(gdb) iface hwcfg::pipe_MbType_out record\n");
  gdb2.execute("iface hwcfg::pipe_MbType_out record");

  // Stop as close as possible to the error: frame 0 is intra-only, so a
  // token claiming InterNotIntra=1 is the smoking gun.
  std::printf("(gdb) filter pipe catch Red2PipeCbMB_in   # plus content check\n");
  auto bp = session2.catch_token_content(
      "pipe::Red2PipeCbMB_in",
      [](const pedf::Value& v) { return v.field_u64("InterNotIntra") == 1; },
      "InterNotIntra == 1 in an intra-only frame");
  if (!bp.ok()) {
    std::fprintf(stderr, "catchpoint failed: %s\n", bp.status().message().c_str());
    return 1;
  }
  std::printf("(gdb) continue\n");
  gdb2.execute("continue");

  std::printf("\n(gdb) filter pipe info last_token\n");
  gdb2.execute("filter pipe info last_token");
  std::printf("^ step #1 shows the corrupted flag; step #2 shows the token red\n"
              "  consumed to produce it — whose mode bits say INTRA. The fault\n"
              "  is therefore inside filter `red'.\n");

  std::printf("\n(gdb) iface hwcfg::pipe_MbType_out print   # recorded MbTypes\n");
  gdb2.execute("iface hwcfg::pipe_MbType_out print");

  // §VI-E: two-level debugging — drop to the C level.
  std::printf("\n(gdb) filter print last_token\n");
  gdb2.execute("filter print last_token");
  std::printf("(gdb) print $1\n");
  gdb2.execute("print $1");
  std::printf("(gdb) print $1.Izz\n");
  gdb2.execute("print $1.Izz");

  std::printf("\n(gdb) graph tokens   # Fig. 4 with live token counts (excerpt)\n");
  std::string dot = session2.graph().to_dot(true);
  std::printf("%.600s...\n", dot.c_str());

  std::printf("\n(gdb) info sched pred\n");
  gdb2.execute("info sched pred");

  gdb2.execute("delete 0");
  std::printf("\n(gdb) continue    # to completion\n");
  gdb2.execute("continue");
  return 0;
}

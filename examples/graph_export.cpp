// Exports the paper's figures as Graphviz DOT files:
//   fig1_platform.dot — the P2012 platform topology (Fig. 1)
//   fig2_amodule.dot  — the AModule dataflow graph, ground truth (Fig. 2)
//   fig2_debugger.dot — the same graph as reconstructed by the debugger
//   fig4_decoder.dot  — the H.264 decoder graph with live token counts
//                       in a stalled state (Fig. 4)
//
// Render with:   dot -Tpng fig4_decoder.dot -o fig4.png
#include <cstdio>
#include <fstream>

#include "dfdbg/debug/session.hpp"
#include "dfdbg/h264/app.hpp"
#include "dfdbg/mind/dot.hpp"
#include "dfdbg/mind/instantiate.hpp"
#include "dfdbg/mind/parser.hpp"
#include "dfdbg/sim/platform.hpp"
#include "dfdbg/trace/timeline.hpp"

using namespace dfdbg;

namespace {

void write_file(const char* path, const std::string& content) {
  std::ofstream out(path);
  out << content;
  std::printf("wrote %s (%zu bytes)\n", path, content.size());
}

const char* kAModuleAdl = R"adl(
@Module
composite AModule {
  contains as controller {
    output U32 as cmd_out_1;
    output U32 as cmd_out_2;
    source ctrl_source.c;
  }
  input U32 as module_in;
  output U32 as module_out;
  contains AFilter as filter_1;
  contains AFilter as filter_2;
  binds controller.cmd_out_1 to filter_1.cmd_in;
  binds controller.cmd_out_2 to filter_2.cmd_in;
  binds this.module_in to filter_1.an_input;
  binds filter_1.an_output to filter_2.an_input;
  binds filter_2.an_output to this.module_out;
}
@Filter
primitive AFilter {
  data      stddefs.h:U32 a_private_data;
  attribute stddefs.h:U32 an_attribute;
  source    the_source.c;
  input stddefs.h:U32 as an_input;
  input stddefs.h:U32 as cmd_in;
  output stddefs.h:U32 as an_output;
}
)adl";

}  // namespace

int main() {
  // FIG1: platform topology straight from the live model.
  {
    sim::Kernel kernel;
    sim::Platform platform(kernel, sim::PlatformConfig{});
    write_file("fig1_platform.dot", platform.to_dot());
  }

  // FIG2: the AModule graph, both from the ADL (ground truth) and from the
  // debugger's reconstruction.
  {
    auto doc = mind::parse(kAModuleAdl);
    if (!doc.ok()) {
      std::fprintf(stderr, "parse: %s\n", doc.status().message().c_str());
      return 1;
    }
    write_file("fig2_amodule.dot", mind::to_dot(*doc, "AModule"));

    sim::Kernel kernel;
    sim::PlatformConfig pc;
    pc.clusters = 1;
    pc.pes_per_cluster = 4;
    sim::Platform platform(kernel, pc);
    pedf::Application app(platform, "amodule");
    mind::FilterRegistry registry;
    auto root = mind::instantiate(*doc, "AModule", "amodule", app.types(), registry);
    if (!root.ok()) {
      std::fprintf(stderr, "instantiate: %s\n", root.status().message().c_str());
      return 1;
    }
    app.set_root(std::move(*root));
    app.add_host_source("src", "amodule.module_in", {pedf::Value::u32(0)});
    app.add_host_sink("snk", "amodule.module_out", 1);
    dbg::Session session(app);
    session.attach();
    if (Status s = app.elaborate(); !s.ok()) {
      std::fprintf(stderr, "elaborate: %s\n", s.message().c_str());
      return 1;
    }
    write_file("fig2_debugger.dot", session.graph().to_dot(false));
  }

  // FIG4: the H.264 decoder with the rate-mismatch fault, stopped when the
  // pipe->ipf link holds exactly 20 tokens (the figure's annotation).
  {
    h264::H264AppConfig cfg;
    cfg.params.width = 32;
    cfg.params.height = 32;
    cfg.params.frame_count = 2;
    cfg.fault.kind = h264::FaultPlan::Kind::kRateMismatch;
    cfg.fault.trigger_mb = 0;
    cfg.fault.period = 1;
    auto built = h264::H264App::build(cfg);
    if (!built.ok()) {
      std::fprintf(stderr, "build: %s\n", built.status().message().c_str());
      return 1;
    }
    auto& app = **built;
    dbg::Session session(app.app());
    session.attach();
    app.start();
    auto bp = session.break_on_send("pipe::pipe_ipf_out");
    if (!bp.ok()) return 1;
    for (;;) {
      auto out = session.run();
      if (out.result != sim::RunResult::kStopped) break;
      if (app.app().link_by_iface("ipf::pipe_in")->occupancy() >= 20) break;
    }
    std::printf("stopped: pipe->ipf holds %zu tokens\n",
                app.app().link_by_iface("ipf::pipe_in")->occupancy());
    write_file("fig4_decoder.dot", session.graph().to_dot(/*with_tokens=*/true));
  }

  // Execution timeline SVG of a clean decode (visualization future work).
  {
    h264::H264AppConfig cfg;
    cfg.params.width = 32;
    cfg.params.height = 32;
    cfg.params.frame_count = 1;
    auto built = h264::H264App::build(cfg);
    if (!built.ok()) return 1;
    auto& app = **built;
    trace::TraceCollector tc(app.app(), 1 << 16);
    tc.attach();
    app.start();
    app.kernel().run();
    write_file("timeline_decoder.svg", trace::render_timeline_svg(tc, app.app()));
  }
  return 0;
}

// Predicated Execution DataFlow in action: the feature PEDF is named after.
//
// A controller changes the dataflow graph's behaviour at run time based on
// predicates ("allowing the modification of the dataflow graph behavior
// during its execution ... or run some parts of the graph at different
// rates", paper §IV) — and the debugger observes every predicate decision
// with the predicate breakpoint.
//
// The app: a sensor stream flows through a `denoise` filter; when the
// predicate `high_load` becomes true the controller switches to a cheaper
// `decimate` filter and runs it at 2x rate to catch up.
//
// Build & run:   ./build/examples/predicated_scheduling
#include <cstdio>
#include <memory>

#include "dfdbg/dbgcli/cli.hpp"
#include "dfdbg/debug/session.hpp"
#include "dfdbg/pedf/application.hpp"

using namespace dfdbg;
using pedf::FilterContext;
using pedf::PortDir;
using pedf::TypeDesc;
using pedf::Value;

namespace {

std::unique_ptr<pedf::Module> build_module(int total_samples) {
  auto mod = std::make_unique<pedf::Module>("proc");
  mod->add_port("in", PortDir::kIn, TypeDesc());
  mod->add_port("out", PortDir::kOut, TypeDesc());

  // Expensive path: smooths pairs of samples (consumes 1, emits 1).
  auto denoise = std::make_unique<pedf::FnFilter>("denoise", [](FilterContext& ctx) {
    Value v = ctx.in("in").get();
    Value& last = ctx.data("last");
    std::uint32_t smoothed =
        static_cast<std::uint32_t>((v.as_u64() + last.as_u64()) / 2);
    last = v;
    ctx.compute(40);  // expensive
    ctx.out("out").put(Value::u32(smoothed));
  });
  denoise->add_port("in", PortDir::kIn, TypeDesc());
  denoise->add_port("out", PortDir::kOut, TypeDesc());
  denoise->declare_data("last", Value::u32(0));
  mod->add_filter(std::move(denoise));

  // Cheap path: passes every sample straight through (but fast).
  auto decimate = std::make_unique<pedf::FnFilter>("decimate", [](FilterContext& ctx) {
    Value v = ctx.in("in").get();
    ctx.compute(5);  // cheap
    ctx.out("out").put(v);
  });
  decimate->add_port("in", PortDir::kIn, TypeDesc());
  decimate->add_port("out", PortDir::kOut, TypeDesc());
  mod->add_filter(std::move(decimate));

  // Router: directs each sample to the active path per the controller's
  // routing attribute.
  auto route = std::make_unique<pedf::FnFilter>("route", [](FilterContext& ctx) {
    Value v = ctx.in("in").get();
    if (ctx.attr("use_cheap").as_u64() != 0)
      ctx.out("to_decimate").put(v);
    else
      ctx.out("to_denoise").put(v);
  });
  route->add_port("in", PortDir::kIn, TypeDesc());
  route->add_port("to_denoise", PortDir::kOut, TypeDesc());
  route->add_port("to_decimate", PortDir::kOut, TypeDesc());
  route->declare_attribute("use_cheap", Value::u32(0));
  mod->add_filter(std::move(route));

  // Merger back to one stream; counts the samples it completed.
  auto merge = std::make_unique<pedf::FnFilter>("merge", [](FilterContext& ctx) {
    // Exactly one of the two inputs holds a token per sample; the
    // controller fires merge after the active path completed.
    if (ctx.in("from_denoise").available() > 0)
      ctx.out("out").put(ctx.in("from_denoise").get());
    else
      ctx.out("out").put(ctx.in("from_decimate").get());
    pedf::Value& done = ctx.data("done");
    done.set_scalar_u64(done.as_u64() + 1);
  });
  merge->add_port("from_denoise", PortDir::kIn, TypeDesc());
  merge->add_port("from_decimate", PortDir::kIn, TypeDesc());
  merge->add_port("out", PortDir::kOut, TypeDesc());
  merge->declare_data("done", Value::u32(0));
  mod->add_filter(std::move(merge));

  // Predicates: input-link pressure, and overall stream completion.
  mod->define_predicate("high_load", [](pedf::Module& m) {
    pedf::Filter* r = m.filter("route");
    pedf::Link* in = r->port("in")->link();
    return in != nullptr && in->occupancy() > 4;
  });
  mod->define_predicate("more_samples", [total_samples](pedf::Module& m) {
    return m.filter("merge")->data("done")->as_u64() <
           static_cast<std::uint64_t>(total_samples);
  });

  mod->set_controller(std::make_unique<pedf::FnController>(
      "controller", [total_samples](pedf::ControllerContext& ctx) {
        while (ctx.predicate("more_samples")) {
          ctx.next_step();
          bool cheap = ctx.predicate("high_load");
          ctx.module().filter("route")->attribute("use_cheap")->set_scalar_u64(cheap ? 1 : 0);
          std::uint64_t remaining =
              static_cast<std::uint64_t>(total_samples) -
              ctx.module().filter("merge")->data("done")->as_u64();
          if (cheap) {
            // 2x rate on the cheap path to drain the backlog.
            std::uint64_t n = remaining < 2 ? remaining : 2;
            ctx.actor_fire_n("route", n);
            ctx.actor_fire_n("decimate", n);
            ctx.actor_fire_n("merge", n);
          } else {
            ctx.actor_fire("route");
            ctx.wait_for_actor_sync();
            ctx.actor_fire("denoise");
            ctx.wait_for_actor_sync();
            ctx.actor_fire("merge");
            ctx.wait_for_actor_sync();
          }
        }
      }));

  mod->bind("this.in", "route.in");
  mod->bind("route.to_denoise", "denoise.in");
  mod->bind("route.to_decimate", "decimate.in");
  mod->bind("denoise.out", "merge.from_denoise");
  mod->bind("decimate.out", "merge.from_decimate");
  mod->bind("merge.out", "this.out");
  return mod;
}

}  // namespace

int main() {
  // Samples arrive faster than the expensive path processes them, so the
  // predicate flips mid-run and the cheap path catches up at 2x rate.
  constexpr int kSamples = 24;

  sim::Kernel kernel;
  sim::PlatformConfig pc;
  pc.clusters = 1;
  pc.pes_per_cluster = 8;
  sim::Platform platform(kernel, pc);
  pedf::Application app(platform, "predicated");
  app.set_root(build_module(kSamples));
  std::vector<Value> stream;
  for (int i = 0; i < kSamples; ++i) stream.push_back(Value::u32(static_cast<std::uint32_t>(i * 3)));
  app.add_host_source("sensor", "proc.in", std::move(stream), /*period=*/1);
  auto& sink = app.add_host_sink("drain", "proc.out", kSamples);

  dbg::Session session(app);
  session.attach();
  if (Status s = app.elaborate(); !s.ok()) {
    std::fprintf(stderr, "elaborate: %s\n", s.message().c_str());
    return 1;
  }
  app.start();

  cli::Interpreter gdb(session, /*echo=*/true);
  std::printf("(gdb) module proc break predicate high_load\n");
  gdb.execute("module proc break predicate high_load");
  std::printf("(gdb) run    # observe every scheduling decision\n");
  int true_evals = 0, false_evals = 0;
  for (;;) {
    auto out = session.run();
    if (out.result != sim::RunResult::kStopped) {
      for (const auto& ev : out.stops) std::printf("%s\n", ev.message.c_str());
      break;
    }
    const std::string& msg = out.stops[0].message;
    if (msg.find("evaluated to true") != std::string::npos) true_evals++;
    else false_evals++;
  }
  std::printf("\npredicate high_load: %d true / %d false evaluations\n", true_evals,
              false_evals);
  std::printf("samples processed: %zu/%d\n", sink.received().size(), kSamples);
  std::printf("the graph switched behaviour at run time %s\n",
              true_evals > 0 && false_evals > 0 ? "(both paths exercised)" : "(single path)");
  return sink.received().size() == kSamples ? 0 : 1;
}

// Shared helpers for the experiment benchmarks.
#pragma once

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <memory>
#include <string>

#include "dfdbg/debug/session.hpp"
#include "dfdbg/h264/app.hpp"
#include "dfdbg/obs/metrics.hpp"

// Seeded wide-synthetic-graph generator (N pipelines -> one sink), shared
// with the parallel-backend tests.
#include "wide_graph.hpp"

namespace dfdbg::benchutil {

inline h264::H264AppConfig decoder_config(int mbs_x = 2, int mbs_y = 2, int frames = 2) {
  h264::H264AppConfig cfg;
  cfg.params.width = 16 * mbs_x;
  cfg.params.height = 16 * mbs_y;
  cfg.params.frame_count = frames;
  cfg.params.qp = 20;
  return cfg;
}

/// Wall-clock seconds of a callable.
template <typename F>
double time_s(F&& fn) {
  auto t0 = std::chrono::steady_clock::now();
  fn();
  auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t1 - t0).count();
}

/// Builds the decoder, optionally attaches a configured session, runs to
/// completion, and returns the wall time. `setup` may be null.
inline double run_decoder_once(const h264::H264AppConfig& cfg, bool attach_debugger,
                               const std::function<void(dbg::Session&)>& setup,
                               std::uint64_t* hook_invocations = nullptr,
                               bool* bit_exact = nullptr,
                               std::uint64_t* dispatches = nullptr) {
  auto built = h264::H264App::build(cfg);
  DFDBG_CHECK_MSG(built.ok(), built.status().message());
  auto& app = **built;
  std::unique_ptr<dbg::Session> session;
  if (attach_debugger) {
    session = std::make_unique<dbg::Session>(app.app());
    session->attach();
    if (setup) setup(*session);
  }
  app.start();
  double secs = time_s([&] {
    if (session != nullptr) {
      for (;;) {
        auto out = session->run();
        if (out.result != sim::RunResult::kStopped) break;
      }
    } else {
      app.kernel().run();
    }
  });
  if (hook_invocations != nullptr)
    *hook_invocations = app.kernel().instrument().hook_invocations();
  if (bit_exact != nullptr) *bit_exact = app.decoded_matches_golden();
  if (dispatches != nullptr) *dispatches = app.kernel().dispatch_count();
  return secs;
}

/// ConsoleReporter that additionally prints one machine-readable line per
/// run so scripts can scrape results without parsing the human table:
///
///   BENCH_JSON {"name":"BM_X","iterations":12,"ns_per_op":83.1,
///               "counters":{...},"metrics":{...}}
///
/// `counters` are the benchmark's own state.counters; `metrics` is a
/// snapshot of the obs registry's top-level counters (per-symbol and
/// per-command instruments are elided to keep the line bounded).
class JsonLineReporter : public benchmark::ConsoleReporter {
 public:
  // OO_Tabular (no OO_Color): a hand-constructed ConsoleReporter ignores
  // --benchmark_color and would otherwise emit ANSI resets that land at the
  // start of the following BENCH_JSON line, breaking anchored scrapers.
  JsonLineReporter() : benchmark::ConsoleReporter(OO_Tabular) {}

  void ReportRuns(const std::vector<Run>& reports) override {
    benchmark::ConsoleReporter::ReportRuns(reports);
    for (const Run& run : reports) {
      if (run.error_occurred) continue;
      std::string line = "BENCH_JSON {\"name\":\"" + json_escape(run.benchmark_name()) + "\"";
      // The process-wide default backend; benchmarks that pin a kernel to a
      // specific backend additionally set a "backend_fibers" counter.
      line += std::string(",\"backend\":\"") + sim::to_string(sim::default_process_backend()) +
              "\"";
      line += ",\"iterations\":" + std::to_string(static_cast<long long>(run.iterations));
      double ns_per_op = run.iterations > 0
                             ? run.real_accumulated_time * 1e9 / static_cast<double>(run.iterations)
                             : 0.0;
      line += ",\"ns_per_op\":" + format_double(ns_per_op);
      line += ",\"counters\":{";
      bool first = true;
      for (const auto& [name, counter] : run.counters) {
        if (!first) line += ",";
        first = false;
        line += "\"" + json_escape(name) + "\":" + format_double(counter.value);
      }
      line += "},\"metrics\":{";
      first = true;
      for (const auto& [name, counter] : obs::Registry::global().counters()) {
        if (name.rfind("hook.sym.", 0) == 0 || name.rfind("cli.cmd.", 0) == 0) continue;
        if (!first) line += ",";
        first = false;
        line += "\"" + json_escape(name) + "\":" +
                std::to_string(static_cast<unsigned long long>(counter->value()));
      }
      line += "}}";
      std::fprintf(stdout, "%s\n", line.c_str());
    }
  }

 private:
  static std::string json_escape(const std::string& s) {
    std::string out;
    for (char c : s) {
      if (c == '"' || c == '\\') out += '\\';
      out += c;
    }
    return out;
  }
  static std::string format_double(double v) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.6g", v);
    return buf;
  }
};

/// Shared benchmark main body: parse flags, run everything through the
/// BENCH_JSON reporter. Call after registering benchmarks (and any
/// bench-specific setup) from main().
inline int run_all_benchmarks(int* argc, char** argv) {
  benchmark::Initialize(argc, argv);
  if (benchmark::ReportUnrecognizedArguments(*argc, argv)) return 1;
  JsonLineReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  return 0;
}

}  // namespace dfdbg::benchutil

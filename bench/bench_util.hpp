// Shared helpers for the experiment benchmarks.
#pragma once

#include <chrono>
#include <cstdio>
#include <memory>

#include "dfdbg/debug/session.hpp"
#include "dfdbg/h264/app.hpp"

namespace dfdbg::benchutil {

inline h264::H264AppConfig decoder_config(int mbs_x = 2, int mbs_y = 2, int frames = 2) {
  h264::H264AppConfig cfg;
  cfg.params.width = 16 * mbs_x;
  cfg.params.height = 16 * mbs_y;
  cfg.params.frame_count = frames;
  cfg.params.qp = 20;
  return cfg;
}

/// Wall-clock seconds of a callable.
template <typename F>
double time_s(F&& fn) {
  auto t0 = std::chrono::steady_clock::now();
  fn();
  auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t1 - t0).count();
}

/// Builds the decoder, optionally attaches a configured session, runs to
/// completion, and returns the wall time. `setup` may be null.
inline double run_decoder_once(const h264::H264AppConfig& cfg, bool attach_debugger,
                               const std::function<void(dbg::Session&)>& setup,
                               std::uint64_t* hook_invocations = nullptr,
                               bool* bit_exact = nullptr) {
  auto built = h264::H264App::build(cfg);
  DFDBG_CHECK_MSG(built.ok(), built.status().message());
  auto& app = **built;
  std::unique_ptr<dbg::Session> session;
  if (attach_debugger) {
    session = std::make_unique<dbg::Session>(app.app());
    session->attach();
    if (setup) setup(*session);
  }
  app.start();
  double secs = time_s([&] {
    if (session != nullptr) {
      for (;;) {
        auto out = session->run();
        if (out.result != sim::RunResult::kStopped) break;
      }
    } else {
      app.kernel().run();
    }
  });
  if (hook_invocations != nullptr)
    *hook_invocations = app.kernel().instrument().hook_invocations();
  if (bit_exact != nullptr) *bit_exact = app.decoded_matches_golden();
  return secs;
}

}  // namespace dfdbg::benchutil

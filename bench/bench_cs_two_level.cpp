// CS-E — §VI-E two-level debugging: a dataflow-level stop followed by
// source-language-level inspection (struct fields, filter variables, source
// listing, line breakpoints, watchpoints). Verifies the transcript and
// measures the lower level's cost.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_util.hpp"
#include "dfdbg/common/strings.hpp"

using namespace dfdbg;

namespace {

bool transcript(std::string* out) {
  auto built = h264::H264App::build(benchutil::decoder_config(2, 2, 1));
  DFDBG_CHECK(built.ok());
  auto& app = **built;
  dbg::Session session(app.app());
  session.attach();
  app.start();
  DFDBG_CHECK(session.break_on_receive("pipe::Red2PipeCbMB_in").ok());
  auto r = session.run();
  if (r.result != sim::RunResult::kStopped) return false;
  *out = r.stops[0].message + "\n";
  const dbg::DToken* t = session.last_token("pipe");
  if (t == nullptr) return false;
  int n = session.store_value(t->value);
  *out += strformat("$%d = %s\n", n, t->value.to_string().c_str());
  auto v = session.value_history(n);
  if (!v.ok() || !v->type().is_struct()) return false;
  *out += strformat("$%d.Addr = 0x%llX\n", n,
                    static_cast<unsigned long long>(v->field_u64("Addr")));
  auto mbs = session.read_variable("vld", "data", "mbs_parsed");
  if (!mbs.ok()) return false;
  *out += "vld.data.mbs_parsed = " + mbs->to_string() + "\n";
  return r.stops[0].message == "[Stopped after receiving token from `pipe::Red2PipeCbMB_in']";
}

void BM_LineBreakpointRun(benchmark::State& state) {
  for (auto _ : state) {
    double t = benchutil::run_decoder_once(
        benchutil::decoder_config(2, 2, 1), true, [](dbg::Session& s) {
          auto bp = s.break_source_line("ipred", 221);
          DFDBG_CHECK(bp.ok());
          // Disabled immediately: we measure the *machinery* (line events
          // flowing to the debugger), not the stops.
          DFDBG_CHECK(s.set_breakpoint_enabled(*bp, false).ok());
        });
    benchmark::DoNotOptimize(t);
  }
}
BENCHMARK(BM_LineBreakpointRun);

void BM_WatchpointRun(benchmark::State& state) {
  // Software watchpoints sample at work boundaries and line markers — the
  // classic "watchpoints are expensive" effect, quantified.
  for (auto _ : state) {
    int stops = 0;
    auto built = h264::H264App::build(benchutil::decoder_config(2, 2, 1));
    DFDBG_CHECK(built.ok());
    auto& app = **built;
    dbg::Session session(app.app());
    session.attach();
    DFDBG_CHECK(session.watch_variable("vld", "data", "mbs_parsed").ok());
    app.start();
    for (;;) {
      auto out = session.run();
      if (out.result != sim::RunResult::kStopped) break;
      stops++;
    }
    state.counters["watch_stops"] = stops;
  }
}
BENCHMARK(BM_WatchpointRun);

void BM_VariableRead(benchmark::State& state) {
  auto built = h264::H264App::build(benchutil::decoder_config(2, 2, 1));
  DFDBG_CHECK(built.ok());
  auto& app = **built;
  dbg::Session session(app.app());
  session.attach();
  for (auto _ : state) {
    auto v = session.read_variable("pipe", "attribute", "last_mb_intra");
    benchmark::DoNotOptimize(v.ok());
  }
}
BENCHMARK(BM_VariableRead);

void BM_SourceListing(benchmark::State& state) {
  auto built = h264::H264App::build(benchutil::decoder_config(2, 2, 1));
  DFDBG_CHECK(built.ok());
  dbg::Session session((*built)->app());
  session.attach();
  for (auto _ : state) {
    std::string l = session.list_source("ipred", 221, 3);
    benchmark::DoNotOptimize(l.size());
  }
}
BENCHMARK(BM_SourceListing);

}  // namespace

int main(int argc, char** argv) {
  std::string out;
  bool ok = transcript(&out);
  std::printf("=== CS-E: two-level debugging transcript ===\n%s", out.c_str());
  std::printf("transcript matches the paper: %s\n\n", ok ? "YES" : "NO");
  benchutil::run_all_benchmarks(&argc, argv);
  return ok ? 0 : 1;
}

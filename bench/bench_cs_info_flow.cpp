// CS-D — §VI-D token state & information flow: token recording
// (`iface ... record/print`) and provenance (`filter ... info last_token`
// with the splitter behaviour). Verifies the transcripts and measures the
// recording/provenance machinery.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_util.hpp"
#include "dfdbg/common/strings.hpp"
#include "dfdbg/dbgcli/render.hpp"

using namespace dfdbg;

namespace {

/// The recorded-MbType transcript (5/10/15) on a forced-mode stream.
bool transcript_check(std::string* recorded, std::string* provenance) {
  h264::H264AppConfig cfg = benchutil::decoder_config(2, 2, 1);
  cfg.forced_modes.assign(static_cast<std::size_t>(cfg.params.total_mbs()),
                          h264::MbMode::kIntraDC);
  cfg.forced_modes[1] = h264::MbMode::kIntraH;
  cfg.forced_modes[2] = h264::MbMode::kIntraV;
  auto built = h264::H264App::build(cfg);
  DFDBG_CHECK(built.ok());
  auto& app = **built;
  dbg::Session session(app.app());
  session.attach();
  app.start();
  DFDBG_CHECK(session.record_iface("hwcfg::pipe_MbType_out").ok());
  DFDBG_CHECK(session.configure_behavior("red", dbg::ActorBehavior::kSplitter).ok());
  DFDBG_CHECK(session.break_on_receive("pipe::Red2PipeCbMB_in").ok());
  for (int i = 0; i < 3; ++i) {
    auto out = session.run();
    DFDBG_CHECK(out.result == sim::RunResult::kStopped);
  }
  *recorded = session.print_recorded("hwcfg::pipe_MbType_out");
  *provenance = cli::render_or_error(session.last_token_view("pipe"));
  return starts_with(*recorded, "#1 (U16) 5\n#2 (U16) 10\n#3 (U16) 15") &&
         provenance->find("#1 red -> pipe (CbCrMB_t){") != std::string::npos &&
         provenance->find("#2 bh -> red (U32)") != std::string::npos;
}

void BM_DecodeWithRecordingOff(benchmark::State& state) {
  for (auto _ : state) {
    double t = benchutil::run_decoder_once(benchutil::decoder_config(2, 2, 2), true, nullptr);
    benchmark::DoNotOptimize(t);
  }
}
BENCHMARK(BM_DecodeWithRecordingOff);

void BM_DecodeWithRecordingAll(benchmark::State& state) {
  // Record every interface of the decoder (the paper's "communication-
  // intensive" worst case).
  std::size_t mem = 0;
  std::uint64_t total = 0;
  for (auto _ : state) {
    auto built = h264::H264App::build(benchutil::decoder_config(2, 2, 2));
    DFDBG_CHECK(built.ok());
    auto& app = **built;
    dbg::Session session(app.app());
    session.attach();
    for (const dbg::DConnection& c : session.graph().connections()) {
      if (c.link != UINT32_MAX && !c.is_input)
        DFDBG_CHECK(session.record_iface(c.iface()).ok());
    }
    app.start();
    for (;;) {
      auto out = session.run();
      if (out.result != sim::RunResult::kStopped) break;
    }
    mem = session.recorder().memory_bytes();
    total = session.recorder().total_recorded();
  }
  state.counters["recorded_tokens"] = static_cast<double>(total);
  state.counters["recording_bytes"] = static_cast<double>(mem);
}
BENCHMARK(BM_DecodeWithRecordingAll);

void BM_ProvenanceWalk(benchmark::State& state) {
  // Cost of walking a deep provenance chain.
  dbg::GraphModel model;
  model.on_register_actor(dbg::DActorKind::kFilter, "a", "m.a", "", "m", 0);
  model.on_register_actor(dbg::DActorKind::kFilter, "b", "m.b", "", "m", 1);
  model.on_register_port("m.a", "o", false, "U32");
  model.on_register_port("m.b", "i", true, "U32");
  model.on_register_port("m.b", "o", false, "U32");
  model.on_register_port("m.a", "i", true, "U32");
  model.on_register_link(0, "a::o -> b::i", "m.a", "o", "m.b", "i", "U32", "L1");
  model.on_register_link(1, "b::o -> a::i", "m.b", "o", "m.a", "i", "U32", "L1");
  model.on_graph_ready();
  model.set_behavior("a", dbg::ActorBehavior::kPipeline);
  model.set_behavior("b", dbg::ActorBehavior::kPipeline);
  // Ping-pong a token 64 hops deep.
  dbg::TokenId last;
  std::uint64_t idx = 0;
  for (int hop = 0; hop < 64; ++hop) {
    std::uint32_t link = hop % 2 == 0 ? 0u : 1u;
    const char* producer = hop % 2 == 0 ? "m.a" : "m.b";
    const char* consumer = hop % 2 == 0 ? "m.b" : "m.a";
    last = model.on_push(link, idx++, pedf::Value::u32(1), producer, 1);
    model.on_pop(link, consumer, 2);
  }
  for (auto _ : state) {
    auto path = model.token_path(last, 64);
    benchmark::DoNotOptimize(path.size());
  }
  state.counters["chain_depth"] =
      static_cast<double>(model.token_path(last, 64).size());
}
BENCHMARK(BM_ProvenanceWalk);

}  // namespace

int main(int argc, char** argv) {
  std::string recorded, provenance;
  bool ok = transcript_check(&recorded, &provenance);
  std::printf("=== CS-D: token recording & information flow transcripts ===\n");
  std::printf("(gdb) iface hwcfg::pipe_MbType_out print\n%s", recorded.c_str());
  std::printf("(gdb) filter pipe info last_token\n%s", provenance.c_str());
  std::printf("transcripts match the paper: %s\n\n", ok ? "YES" : "NO");
  benchutil::run_all_benchmarks(&argc, argv);
  return ok ? 0 : 1;
}

// Scaling — how the debugger's costs grow with the application: graph
// reconstruction vs actor count, data-exchange observation vs token traffic,
// and stop dispatch vs number of armed catchpoints. The paper's approach
// must stay interactive for "applications composed of a significant number
// of actors" (§II); these curves substantiate that.
#include <benchmark/benchmark.h>

#include "bench_util.hpp"

#include <atomic>
#include <cstdlib>
#include <new>
#include <sstream>
#include <thread>

#include "dfdbg/debug/session.hpp"
#include "dfdbg/mind/analyze.hpp"
#include "dfdbg/mind/instantiate.hpp"
#include "dfdbg/mind/parser.hpp"
#include "dfdbg/pedf/application.hpp"

// --- allocation observatory -------------------------------------------------
// Replacement global operator new/delete that counts heap allocations while
// `g_count_allocs` is set. Linked into this benchmark binary only; the token
// hot-path benches report `allocs_per_token` from it, pinning the headline
// claim (steady-state token transport never allocates) to a measured number.
namespace {
std::atomic<std::uint64_t> g_alloc_count{0};
std::atomic<bool> g_count_allocs{false};
}  // namespace

// GCC flags free() on new'ed pointers, but these replacements are matched:
// every operator new here mallocs, every operator delete frees.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
void* operator new(std::size_t n) {
  if (g_count_allocs.load(std::memory_order_relaxed))
    g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  void* p = std::malloc(n);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}
void* operator new[](std::size_t n) { return ::operator new(n); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
#pragma GCC diagnostic pop

using namespace dfdbg;

namespace {

/// RAII window over the allocation counter: resets it on entry, stops
/// counting on exit; `count()` reads the tally.
struct AllocWindow {
  AllocWindow() {
    g_alloc_count.store(0, std::memory_order_relaxed);
    g_count_allocs.store(true, std::memory_order_relaxed);
  }
  ~AllocWindow() { g_count_allocs.store(false, std::memory_order_relaxed); }
  [[nodiscard]] static std::uint64_t count() {
    return g_alloc_count.load(std::memory_order_relaxed);
  }
};

/// Layered architecture text: `layers` x `width` rate-1 stages.
std::string layered_adl(int layers, int width) {
  std::ostringstream adl;
  adl << "@Filter\nprimitive Stage {\n  input U32 as in;\n  output U32 as out;\n"
         "  source stage.c;\n}\n";
  adl << "@Module\ncomposite Net {\n  contains as controller { source ctl.c; }\n";
  for (int w = 0; w < width; ++w) {
    adl << "  input U32 as in" << w << ";\n  output U32 as out" << w << ";\n";
  }
  for (int l = 0; l < layers; ++l)
    for (int w = 0; w < width; ++w) adl << "  contains Stage as s" << l << "_" << w << ";\n";
  for (int w = 0; w < width; ++w) {
    adl << "  binds this.in" << w << " to s0_" << w << ".in;\n";
    for (int l = 1; l < layers; ++l)
      adl << "  binds s" << (l - 1) << "_" << w << ".out to s" << l << "_" << w << ".in;\n";
    adl << "  binds s" << (layers - 1) << "_" << w << ".out to this.out" << w << ";\n";
  }
  adl << "}\n";
  return adl.str();
}

struct World {
  std::unique_ptr<sim::Kernel> kernel;
  std::unique_ptr<sim::Platform> platform;
  std::unique_ptr<pedf::Application> app;
  std::vector<pedf::HostSink*> sinks;
};

std::unique_ptr<World> build_world(int layers, int width, int steps) {
  auto w = std::make_unique<World>();
  w->kernel = std::make_unique<sim::Kernel>();
  sim::PlatformConfig pc;
  pc.clusters = 4;
  pc.pes_per_cluster = 16;
  w->platform = std::make_unique<sim::Platform>(*w->kernel, pc);
  w->app = std::make_unique<pedf::Application>(*w->platform, "net");
  w->app->set_model_latencies(false);
  auto doc = mind::parse(layered_adl(layers, width));
  DFDBG_CHECK(doc.ok());
  mind::FilterRegistry registry;
  registry.set_default_steps(static_cast<std::uint64_t>(steps));
  auto root = mind::instantiate(*doc, "Net", "net", w->app->types(), registry);
  DFDBG_CHECK(root.ok());
  w->app->set_root(std::move(*root));
  for (int i = 0; i < width; ++i) {
    std::vector<pedf::Value> stream(static_cast<std::size_t>(steps), pedf::Value::u32(1));
    w->app->add_host_source("src" + std::to_string(i), "net.in" + std::to_string(i),
                            std::move(stream));
    w->sinks.push_back(&w->app->add_host_sink("snk" + std::to_string(i),
                                              "net.out" + std::to_string(i),
                                              static_cast<std::size_t>(steps)));
  }
  return w;
}

void BM_ReconstructionVsActors(benchmark::State& state) {
  int layers = static_cast<int>(state.range(0));
  for (auto _ : state) {
    auto w = build_world(layers, 8, 1);
    dbg::Session session(*w->app);
    session.attach();
    DFDBG_CHECK(w->app->elaborate().ok());
    benchmark::DoNotOptimize(session.graph().actors().size());
    state.counters["actors"] = static_cast<double>(session.graph().actors().size());
    state.counters["links"] = static_cast<double>(session.graph().links().size());
  }
}
BENCHMARK(BM_ReconstructionVsActors)->Arg(2)->Arg(8)->Arg(32);

void BM_ObservedRunVsTraffic(benchmark::State& state) {
  int steps = static_cast<int>(state.range(0));
  for (auto _ : state) {
    auto w = build_world(4, 4, steps);
    dbg::Session session(*w->app);
    session.attach();
    DFDBG_CHECK(w->app->elaborate().ok());
    w->app->start();
    for (;;) {
      auto out = session.run();
      if (out.result != sim::RunResult::kStopped) break;
    }
    state.counters["tokens"] = static_cast<double>(session.graph().tokens_observed());
  }
}
BENCHMARK(BM_ObservedRunVsTraffic)->Arg(4)->Arg(16)->Arg(64);

void BM_StopsVsArmedCatchpoints(benchmark::State& state) {
  int armed = static_cast<int>(state.range(0));
  for (auto _ : state) {
    auto w = build_world(4, 4, 8);
    dbg::Session session(*w->app);
    session.attach();
    DFDBG_CHECK(w->app->elaborate().ok());
    int added = 0;
    for (const dbg::DActor& a : session.graph().actors()) {
      if (a.kind != dbg::DActorKind::kFilter || added >= armed) continue;
      DFDBG_CHECK(session.catch_work(a.name).ok());
      added++;
    }
    w->app->start();
    int stops = 0;
    for (;;) {
      auto out = session.run();
      if (out.result != sim::RunResult::kStopped) break;
      stops++;
    }
    state.counters["stops"] = stops;
  }
}
BENCHMARK(BM_StopsVsArmedCatchpoints)->Arg(0)->Arg(4)->Arg(16);

// Raw scheduler dispatch rate, per process backend. Each of `procs`
// processes yields `yields` times, so one run is ~procs*yields dispatches
// of pure scheduling with trivial process bodies — the cost under the
// microscope is the hand-over itself: two swapcontext calls (fibers) vs two
// semaphore hops through the OS scheduler (threads). The fiber backend is
// the paper-faithful model (SystemC QuickThreads) and the acceptance bar is
// >= 10x the thread backend's dispatches/sec on the same machine.
void BM_DispatchRate(benchmark::State& state) {
  const auto backend =
      state.range(0) == 0 ? sim::ProcessBackend::kThreads : sim::ProcessBackend::kFibers;
  const int procs = 64;
  const int yields = 256;
  std::uint64_t dispatches = 0;
  double secs = 0.0;
  for (auto _ : state) {
    sim::Kernel k(backend);
    for (int i = 0; i < procs; ++i)
      k.spawn("y" + std::to_string(i), [&k, yields] {
        for (int j = 0; j < yields; ++j) k.advance(0);
      });
    secs += benchutil::time_s([&] { DFDBG_CHECK(k.run() == sim::RunResult::kFinished); });
    dispatches += k.dispatch_count();
  }
  state.SetLabel(sim::to_string(backend));
  state.counters["backend_fibers"] = backend == sim::ProcessBackend::kFibers ? 1 : 0;
  state.counters["dispatches"] = static_cast<double>(dispatches);
  state.counters["dispatches_per_sec"] = secs > 0 ? static_cast<double>(dispatches) / secs : 0;
  // A dispatch is two context switches (in and out of the process).
  state.counters["ns_per_dispatch"] =
      dispatches > 0 ? secs * 1e9 / static_cast<double>(dispatches) : 0;
  state.counters["ns_per_context_switch"] =
      dispatches > 0 ? secs * 1e9 / (2.0 * static_cast<double>(dispatches)) : 0;
}
BENCHMARK(BM_DispatchRate)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

// The same dispatch-rate probe but through the full PEDF stack: the layered
// pipeline of BM_ObservedRunVsTraffic, undebugged, per backend. Shows that
// the fiber win survives real token-pushing workloads, not just empty yields.
void BM_PipelineBackend(benchmark::State& state) {
  const auto backend =
      state.range(0) == 0 ? sim::ProcessBackend::kThreads : sim::ProcessBackend::kFibers;
  const auto saved = sim::default_process_backend();
  sim::set_default_process_backend(backend);
  std::uint64_t dispatches = 0;
  double secs = 0.0;
  std::uint64_t allocs = 0;
  std::uint64_t tokens = 0;
  for (auto _ : state) {
    auto w = build_world(4, 4, 32);
    DFDBG_CHECK(w->app->elaborate().ok());
    w->app->start();
    {
      AllocWindow window;
      secs += benchutil::time_s([&] { w->kernel->run(); });
      allocs += AllocWindow::count();
    }
    dispatches += w->kernel->dispatch_count();
    // 4 lanes x 32 tokens, each crossing 5 links (4 stages + host edges).
    for (const auto* snk : w->sinks) tokens += snk->received().size() * 5;
  }
  sim::set_default_process_backend(saved);
  state.SetLabel(sim::to_string(backend));
  state.counters["backend_fibers"] = backend == sim::ProcessBackend::kFibers ? 1 : 0;
  state.counters["dispatches"] = static_cast<double>(dispatches);
  state.counters["dispatches_per_sec"] = secs > 0 ? static_cast<double>(dispatches) / secs : 0;
  state.counters["ns_per_dispatch"] =
      dispatches > 0 ? secs * 1e9 / static_cast<double>(dispatches) : 0;
  state.counters["allocs_per_token"] =
      tokens > 0 ? static_cast<double>(allocs) / static_cast<double>(tokens) : 0;
}
BENCHMARK(BM_PipelineBackend)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

// --- token hot path ---------------------------------------------------------

/// The H.264 decoder's steady-state chroma token (3 fields, inline in the
/// small-buffer-optimized Value).
const pedf::StructType* chroma_type(pedf::TypeRegistry& reg) {
  const pedf::StructType* st = reg.find_struct("CbCrMB_t");
  if (st != nullptr) return st;
  return reg.define_struct("CbCrMB_t", {{"Addr", pedf::ScalarType::kU32, true},
                                        {"InterNotIntra", pedf::ScalarType::kU32, false},
                                        {"Izz", pedf::ScalarType::kU32, false}});
}

pedf::Value chroma_token(const pedf::StructType* st) {
  pedf::Value v = pedf::Value::make_struct(st);
  v.set_field("Addr", 0x145D);
  v.set_field("InterNotIntra", 1);
  v.set_field("Izz", 168460492);
  return v;
}

// The link layer alone: push/pop of struct-payload tokens on the contiguous
// {Value, uid} slot ring, no kernel, no instrumentation scopes. Arg = batch
// size: 1 uses push_raw/pop_raw, >1 the push_raw_n/pop_raw_n fast paths.
// The acceptance bar is allocs_per_token == 0 in steady state.
void BM_LinkRing(benchmark::State& state) {
  const std::size_t batch = static_cast<std::size_t>(state.range(0));
  pedf::TypeRegistry reg;
  const pedf::StructType* st = chroma_type(reg);
  const pedf::Value proto = chroma_token(st);
  std::vector<pedf::Value> in(batch, proto);
  std::vector<pedf::Value> out(batch);
  pedf::Link link(pedf::LinkId(0), "bm", pedf::TypeDesc(st), nullptr, nullptr);
  for (std::size_t i = 0; i < 64; ++i) {  // warm the ring past growth
    link.push_raw(proto);
    link.pop_raw();
  }
  if (batch > 1) {  // grow the ring to the batch width before measuring
    link.push_raw_n(in.data(), batch);
    link.pop_raw_n(out.data(), batch);
  }
  std::uint64_t tokens = 0;
  AllocWindow window;
  for (auto _ : state) {
    if (batch == 1) {
      link.push_raw(proto);
      out[0] = link.pop_raw();
    } else {
      link.push_raw_n(in.data(), batch);
      link.pop_raw_n(out.data(), batch);
    }
    tokens += batch;
    benchmark::DoNotOptimize(out.data());
  }
  const std::uint64_t allocs = AllocWindow::count();
  state.counters["tokens_per_sec"] =
      benchmark::Counter(static_cast<double>(tokens), benchmark::Counter::kIsRate);
  state.counters["allocs_per_token"] =
      tokens > 0 ? static_cast<double>(allocs) / static_cast<double>(tokens) : 0;
}
BENCHMARK(BM_LinkRing)->Arg(1)->Arg(32);

// The full framework stack on struct tokens: host source -> relay filter ->
// host sink through the pedf__link_push/pop shims (fibers backend, latencies
// off so token transport dominates). Arg = firing batch: 1 is the
// paper-faithful token-at-a-time hook stream, >1 opts every endpoint into
// the batched firing fast path (one instrumentation scope and one coalesced
// notify per burst).
void BM_TokenHotPath(benchmark::State& state) {
  const std::size_t batch = static_cast<std::size_t>(state.range(0));
  const auto saved = sim::default_process_backend();
  sim::set_default_process_backend(sim::ProcessBackend::kFibers);
  const std::size_t kTokens = 64 * 1024;  // multiple of every batch size
  std::uint64_t tokens = 0;
  std::uint64_t allocs = 0;
  double secs = 0.0;
  for (auto _ : state) {
    sim::Kernel k;
    sim::PlatformConfig pc;
    pc.clusters = 1;
    pc.pes_per_cluster = 4;
    sim::Platform plat(k, pc);
    pedf::Application app(plat, "bm");
    app.set_model_latencies(false);
    const pedf::StructType* st = chroma_type(app.types());
    auto root = std::make_unique<pedf::Module>("top");
    auto* relay = new pedf::FnFilter(
        "relay", [buf = std::vector<pedf::Value>()](pedf::FilterContext& pedf) mutable {
          const std::size_t b = pedf.fire_batch();
          if (b > 1) {
            buf.resize(b);
            const std::size_t got = pedf.in("in").get_n(buf.data(), b);
            if (got > 0) pedf.out("out").put_n(buf.data(), got);
            if (got < b) pedf.stop();
          } else {
            auto v = pedf.in("in").get_opt();
            if (v.has_value()) pedf.out("out").put(*v);
          }
        });
    relay->add_port("in", pedf::PortDir::kIn, pedf::TypeDesc(st));
    relay->add_port("out", pedf::PortDir::kOut, pedf::TypeDesc(st));
    relay->set_free_running(true);
    relay->set_fire_batch(batch);
    root->add_filter(std::unique_ptr<pedf::Filter>(relay));
    root->add_port("min", pedf::PortDir::kIn, pedf::TypeDesc(st));
    root->add_port("mout", pedf::PortDir::kOut, pedf::TypeDesc(st));
    root->bind("this.min", "relay.in");
    root->bind("relay.out", "this.mout");
    std::vector<pedf::Value> stream(kTokens, chroma_token(st));
    app.set_root(std::move(root));
    app.add_host_source("src", "top.min", std::move(stream)).set_fire_batch(batch);
    app.add_host_sink("snk", "top.mout", kTokens).set_fire_batch(batch);
    DFDBG_CHECK(app.elaborate().ok());
    app.start();
    {
      AllocWindow window;
      secs += benchutil::time_s([&] { k.run(); });
      allocs += AllocWindow::count();
    }
    tokens += kTokens * 2;  // each token crosses two links
  }
  sim::set_default_process_backend(saved);
  state.counters["fire_batch"] = static_cast<double>(batch);
  state.counters["tokens_per_sec"] = secs > 0 ? static_cast<double>(tokens) / secs : 0;
  state.counters["allocs_per_token"] =
      tokens > 0 ? static_cast<double>(allocs) / static_cast<double>(tokens) : 0;
}
BENCHMARK(BM_TokenHotPath)->Arg(1)->Arg(32)->Unit(benchmark::kMillisecond);

// --- parallel backend scaling -----------------------------------------------

// Token throughput of the wide synthetic graph (16 pipelines x 2 stages of
// spin-heavy work fanning into one sink) per backend: Arg(0) is the fibers
// baseline, Arg(K>0) the kParallel backend with K workers. The acceptance
// bar for the partitioned backend is >= 2x the fibers tokens_per_sec at 4
// workers — stage work dominates, each pipeline lives on its own cluster, so
// the cluster-modulo default map gives the barrier protocol its best case.
void BM_ParallelScaling(benchmark::State& state) {
  const int workers = static_cast<int>(state.range(0));
  benchutil::WideGraphConfig cfg;
  cfg.pipelines = 16;
  cfg.stages = 2;
  cfg.tokens = 256;
  cfg.spin = 4000;
  std::uint64_t tokens = 0;
  std::uint64_t elided = 0;
  std::uint64_t eager = 0;
  double secs = 0.0;
  for (auto _ : state) {
    auto w = workers == 0
                 ? benchutil::build_wide_world(cfg, sim::ProcessBackend::kFibers)
                 : benchutil::build_wide_world(cfg, sim::ProcessBackend::kParallel, workers);
    secs += benchutil::time_s([&] { benchutil::run_wide_world(*w); });
    DFDBG_CHECK_MSG(benchutil::sink_checksum(*w) == w->expected_checksum,
                    "wide graph checksum mismatch");
    tokens += w->expected_tokens;
    elided += w->kernel->elided_round_count();
    for (int i = 0; i < w->kernel->partition_count(); ++i)
      eager += w->kernel->shard_totals(i).eager_drained;
  }
  state.SetLabel(workers == 0 ? "fibers" : "parallel");
  state.counters["workers"] = workers;
  state.counters["tokens_per_sec"] = secs > 0 ? static_cast<double>(tokens) / secs : 0;
  // Relaxed-synchrony health: rounds that skipped the coordinator merge
  // entirely, and tokens that crossed partitions through a consumer-side
  // eager drain instead of waiting out a full barrier. Both are maintained
  // unconditionally, so they hold with obs off (this bench's default).
  state.counters["elided_rounds"] = static_cast<double>(elided);
  state.counters["eager_drained_tokens"] = static_cast<double>(eager);
  // Wall-clock speedup needs real cores under the workers; scrapers gate the
  // 2x-at-4-workers acceptance check on host_cpus >= 4 (a single-core host
  // time-slices the workers and can only show parity).
  state.counters["host_cpus"] = static_cast<double>(std::thread::hardware_concurrency());
}
BENCHMARK(BM_ParallelScaling)->Arg(0)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

// The relaxed-synchrony fast paths under latency modeling, where they earn
// their keep: timed transport latencies break the run into many small rounds,
// most of which are pure local compute between wakeups — exactly the rounds
// barrier elision skips and sparse wakes leave idle shards parked through.
// (BM_ParallelScaling's latency-free graph collapses into a handful of giant
// rounds that all carry boundary traffic, so its elided_rounds is 0 by
// design; this arm is the one the single-core acceptance gate reads.)
void BM_ParallelElision(benchmark::State& state) {
  const int workers = static_cast<int>(state.range(0));
  benchutil::WideGraphConfig cfg;
  cfg.pipelines = 4;
  cfg.stages = 2;
  cfg.tokens = 64;
  cfg.spin = 256;
  std::uint64_t tokens = 0;
  std::uint64_t rounds = 0;
  std::uint64_t elided = 0;
  std::uint64_t eager = 0;
  std::uint64_t skipped = 0;
  double secs = 0.0;
  for (auto _ : state) {
    auto w = benchutil::build_wide_world(cfg, sim::ProcessBackend::kParallel, workers);
    w->app->set_model_latencies(true);
    secs += benchutil::time_s([&] { benchutil::run_wide_world(*w); });
    DFDBG_CHECK_MSG(benchutil::sink_checksum(*w) == w->expected_checksum,
                    "wide graph checksum mismatch");
    tokens += w->expected_tokens;
    rounds += w->kernel->round_count();
    elided += w->kernel->elided_round_count();
    for (int i = 0; i < w->kernel->partition_count(); ++i) {
      eager += w->kernel->shard_totals(i).eager_drained;
      skipped += w->kernel->shard_totals(i).skipped_wakes;
    }
  }
  state.SetLabel("parallel+latency");
  state.counters["workers"] = workers;
  state.counters["tokens_per_sec"] = secs > 0 ? static_cast<double>(tokens) / secs : 0;
  state.counters["rounds"] = static_cast<double>(rounds);
  state.counters["elided_rounds"] = static_cast<double>(elided);
  state.counters["eager_drained_tokens"] = static_cast<double>(eager);
  state.counters["skipped_wakes"] = static_cast<double>(skipped);
  state.counters["host_cpus"] = static_cast<double>(std::thread::hardware_concurrency());
}
BENCHMARK(BM_ParallelElision)->Arg(2)->Arg(4)->Unit(benchmark::kMillisecond);

// Wall cost of the shard time-attribution profiler: BM_ParallelScaling's
// 4-worker case with obs disabled (Arg 0, the zero-cost claim) vs enabled
// (Arg 1, clock reads + round records + histograms on every barrier round).
// The acceptance bar is enabled/disabled wall <= 1.10x.
void BM_ParallelAttribution(benchmark::State& state) {
  const bool attributed = state.range(0) != 0;
  const bool saved_obs = obs::enabled();
  obs::set_enabled(attributed);
  benchutil::WideGraphConfig cfg;
  cfg.pipelines = 16;
  cfg.stages = 2;
  cfg.tokens = 256;
  cfg.spin = 4000;
  std::uint64_t tokens = 0;
  std::uint64_t rounds = 0;
  std::uint64_t elided = 0;
  std::uint64_t eager = 0;
  double secs = 0.0;
  for (auto _ : state) {
    auto w = benchutil::build_wide_world(cfg, sim::ProcessBackend::kParallel, 4);
    secs += benchutil::time_s([&] { benchutil::run_wide_world(*w); });
    DFDBG_CHECK_MSG(benchutil::sink_checksum(*w) == w->expected_checksum,
                    "wide graph checksum mismatch");
    tokens += w->expected_tokens;
    rounds += w->kernel->round_count();
    elided += w->kernel->elided_round_count();
    for (int i = 0; i < w->kernel->partition_count(); ++i)
      eager += w->kernel->shard_totals(i).eager_drained;
    // The zero-cost claim, checked in-band: no records accumulate while off.
    DFDBG_CHECK(attributed || w->kernel->round_records().empty());
  }
  obs::set_enabled(saved_obs);
  state.SetLabel(attributed ? "obs_on" : "obs_off");
  state.counters["attributed"] = attributed ? 1 : 0;
  state.counters["tokens_per_sec"] = secs > 0 ? static_cast<double>(tokens) / secs : 0;
  state.counters["rounds"] = static_cast<double>(rounds);
  state.counters["elided_rounds"] = static_cast<double>(elided);
  state.counters["eager_drained_tokens"] = static_cast<double>(eager);
  state.counters["host_cpus"] = static_cast<double>(std::thread::hardware_concurrency());
}
BENCHMARK(BM_ParallelAttribution)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

// The adaptive partitioner on a deliberately skewed wide graph: lane p
// carries 1+p stages, so the cluster-modulo map (whole lane -> worker p%K)
// is load-imbalanced by construction (max worker load 12/36 stage-tokens vs
// the 9/36 ideal at K=4), while kAdaptive re-places individual stages by
// their recorded activations (LPT). Arg 0 = cluster-modulo baseline, Arg 1 =
// adaptive driven by a profile taken from one untimed modulo run. The
// acceptance bar is adaptive tokens_per_sec >= modulo tokens_per_sec.
void BM_AdaptivePartition(benchmark::State& state) {
  const bool adaptive = state.range(0) != 0;
  benchutil::WideGraphConfig cfg;
  cfg.pipelines = 8;
  cfg.stages = 1;
  cfg.stage_skew = 1;
  cfg.tokens = 128;
  cfg.spin = 4000;
  const int workers = 4;
  // Profiling run: cluster-modulo, untimed, both arms (so setup cost is
  // symmetric); its activation counts drive the adaptive arm.
  std::map<std::string, std::uint64_t> profile;
  {
    auto w = benchutil::build_wide_world(cfg, sim::ProcessBackend::kParallel, workers);
    benchutil::run_wide_world(*w);
    profile = w->app->dispatch_profile();
  }
  std::uint64_t tokens = 0;
  double secs = 0.0;
  for (auto _ : state) {
    auto w = benchutil::build_wide_world(cfg, sim::ProcessBackend::kParallel, workers);
    if (adaptive) {
      w->app->set_partition_policy(pedf::Application::PartitionPolicy::kAdaptive);
      w->app->set_partition_profile(profile);
    }
    secs += benchutil::time_s([&] { benchutil::run_wide_world(*w); });
    DFDBG_CHECK_MSG(benchutil::sink_checksum(*w) == w->expected_checksum,
                    "skewed wide graph checksum mismatch");
    tokens += w->expected_tokens;
  }
  state.SetLabel(adaptive ? "adaptive" : "cluster_modulo");
  state.counters["adaptive"] = adaptive ? 1 : 0;
  state.counters["tokens_per_sec"] = secs > 0 ? static_cast<double>(tokens) / secs : 0;
  state.counters["host_cpus"] = static_cast<double>(std::thread::hardware_concurrency());
}
BENCHMARK(BM_AdaptivePartition)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  return dfdbg::benchutil::run_all_benchmarks(&argc, argv);
}

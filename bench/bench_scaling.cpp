// Scaling — how the debugger's costs grow with the application: graph
// reconstruction vs actor count, data-exchange observation vs token traffic,
// and stop dispatch vs number of armed catchpoints. The paper's approach
// must stay interactive for "applications composed of a significant number
// of actors" (§II); these curves substantiate that.
#include <benchmark/benchmark.h>

#include "bench_util.hpp"

#include <sstream>

#include "dfdbg/debug/session.hpp"
#include "dfdbg/mind/analyze.hpp"
#include "dfdbg/mind/instantiate.hpp"
#include "dfdbg/mind/parser.hpp"
#include "dfdbg/pedf/application.hpp"

using namespace dfdbg;

namespace {

/// Layered architecture text: `layers` x `width` rate-1 stages.
std::string layered_adl(int layers, int width) {
  std::ostringstream adl;
  adl << "@Filter\nprimitive Stage {\n  input U32 as in;\n  output U32 as out;\n"
         "  source stage.c;\n}\n";
  adl << "@Module\ncomposite Net {\n  contains as controller { source ctl.c; }\n";
  for (int w = 0; w < width; ++w) {
    adl << "  input U32 as in" << w << ";\n  output U32 as out" << w << ";\n";
  }
  for (int l = 0; l < layers; ++l)
    for (int w = 0; w < width; ++w) adl << "  contains Stage as s" << l << "_" << w << ";\n";
  for (int w = 0; w < width; ++w) {
    adl << "  binds this.in" << w << " to s0_" << w << ".in;\n";
    for (int l = 1; l < layers; ++l)
      adl << "  binds s" << (l - 1) << "_" << w << ".out to s" << l << "_" << w << ".in;\n";
    adl << "  binds s" << (layers - 1) << "_" << w << ".out to this.out" << w << ";\n";
  }
  adl << "}\n";
  return adl.str();
}

struct World {
  std::unique_ptr<sim::Kernel> kernel;
  std::unique_ptr<sim::Platform> platform;
  std::unique_ptr<pedf::Application> app;
  std::vector<pedf::HostSink*> sinks;
};

std::unique_ptr<World> build_world(int layers, int width, int steps) {
  auto w = std::make_unique<World>();
  w->kernel = std::make_unique<sim::Kernel>();
  sim::PlatformConfig pc;
  pc.clusters = 4;
  pc.pes_per_cluster = 16;
  w->platform = std::make_unique<sim::Platform>(*w->kernel, pc);
  w->app = std::make_unique<pedf::Application>(*w->platform, "net");
  w->app->set_model_latencies(false);
  auto doc = mind::parse(layered_adl(layers, width));
  DFDBG_CHECK(doc.ok());
  mind::FilterRegistry registry;
  registry.set_default_steps(static_cast<std::uint64_t>(steps));
  auto root = mind::instantiate(*doc, "Net", "net", w->app->types(), registry);
  DFDBG_CHECK(root.ok());
  w->app->set_root(std::move(*root));
  for (int i = 0; i < width; ++i) {
    std::vector<pedf::Value> stream(static_cast<std::size_t>(steps), pedf::Value::u32(1));
    w->app->add_host_source("src" + std::to_string(i), "net.in" + std::to_string(i),
                            std::move(stream));
    w->sinks.push_back(&w->app->add_host_sink("snk" + std::to_string(i),
                                              "net.out" + std::to_string(i),
                                              static_cast<std::size_t>(steps)));
  }
  return w;
}

void BM_ReconstructionVsActors(benchmark::State& state) {
  int layers = static_cast<int>(state.range(0));
  for (auto _ : state) {
    auto w = build_world(layers, 8, 1);
    dbg::Session session(*w->app);
    session.attach();
    DFDBG_CHECK(w->app->elaborate().ok());
    benchmark::DoNotOptimize(session.graph().actors().size());
    state.counters["actors"] = static_cast<double>(session.graph().actors().size());
    state.counters["links"] = static_cast<double>(session.graph().links().size());
  }
}
BENCHMARK(BM_ReconstructionVsActors)->Arg(2)->Arg(8)->Arg(32);

void BM_ObservedRunVsTraffic(benchmark::State& state) {
  int steps = static_cast<int>(state.range(0));
  for (auto _ : state) {
    auto w = build_world(4, 4, steps);
    dbg::Session session(*w->app);
    session.attach();
    DFDBG_CHECK(w->app->elaborate().ok());
    w->app->start();
    for (;;) {
      auto out = session.run();
      if (out.result != sim::RunResult::kStopped) break;
    }
    state.counters["tokens"] = static_cast<double>(session.graph().tokens_observed());
  }
}
BENCHMARK(BM_ObservedRunVsTraffic)->Arg(4)->Arg(16)->Arg(64);

void BM_StopsVsArmedCatchpoints(benchmark::State& state) {
  int armed = static_cast<int>(state.range(0));
  for (auto _ : state) {
    auto w = build_world(4, 4, 8);
    dbg::Session session(*w->app);
    session.attach();
    DFDBG_CHECK(w->app->elaborate().ok());
    int added = 0;
    for (const dbg::DActor& a : session.graph().actors()) {
      if (a.kind != dbg::DActorKind::kFilter || added >= armed) continue;
      DFDBG_CHECK(session.catch_work(a.name).ok());
      added++;
    }
    w->app->start();
    int stops = 0;
    for (;;) {
      auto out = session.run();
      if (out.result != sim::RunResult::kStopped) break;
      stops++;
    }
    state.counters["stops"] = stops;
  }
}
BENCHMARK(BM_StopsVsArmedCatchpoints)->Arg(0)->Arg(4)->Arg(16);

// Raw scheduler dispatch rate, per process backend. Each of `procs`
// processes yields `yields` times, so one run is ~procs*yields dispatches
// of pure scheduling with trivial process bodies — the cost under the
// microscope is the hand-over itself: two swapcontext calls (fibers) vs two
// semaphore hops through the OS scheduler (threads). The fiber backend is
// the paper-faithful model (SystemC QuickThreads) and the acceptance bar is
// >= 10x the thread backend's dispatches/sec on the same machine.
void BM_DispatchRate(benchmark::State& state) {
  const auto backend =
      state.range(0) == 0 ? sim::ProcessBackend::kThreads : sim::ProcessBackend::kFibers;
  const int procs = 64;
  const int yields = 256;
  std::uint64_t dispatches = 0;
  double secs = 0.0;
  for (auto _ : state) {
    sim::Kernel k(backend);
    for (int i = 0; i < procs; ++i)
      k.spawn("y" + std::to_string(i), [&k, yields] {
        for (int j = 0; j < yields; ++j) k.advance(0);
      });
    secs += benchutil::time_s([&] { DFDBG_CHECK(k.run() == sim::RunResult::kFinished); });
    dispatches += k.dispatch_count();
  }
  state.SetLabel(sim::to_string(backend));
  state.counters["backend_fibers"] = backend == sim::ProcessBackend::kFibers ? 1 : 0;
  state.counters["dispatches"] = static_cast<double>(dispatches);
  state.counters["dispatches_per_sec"] = secs > 0 ? static_cast<double>(dispatches) / secs : 0;
  // A dispatch is two context switches (in and out of the process).
  state.counters["ns_per_dispatch"] =
      dispatches > 0 ? secs * 1e9 / static_cast<double>(dispatches) : 0;
  state.counters["ns_per_context_switch"] =
      dispatches > 0 ? secs * 1e9 / (2.0 * static_cast<double>(dispatches)) : 0;
}
BENCHMARK(BM_DispatchRate)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

// The same dispatch-rate probe but through the full PEDF stack: the layered
// pipeline of BM_ObservedRunVsTraffic, undebugged, per backend. Shows that
// the fiber win survives real token-pushing workloads, not just empty yields.
void BM_PipelineBackend(benchmark::State& state) {
  const auto backend =
      state.range(0) == 0 ? sim::ProcessBackend::kThreads : sim::ProcessBackend::kFibers;
  const auto saved = sim::default_process_backend();
  sim::set_default_process_backend(backend);
  std::uint64_t dispatches = 0;
  double secs = 0.0;
  for (auto _ : state) {
    auto w = build_world(4, 4, 32);
    DFDBG_CHECK(w->app->elaborate().ok());
    w->app->start();
    secs += benchutil::time_s([&] { w->kernel->run(); });
    dispatches += w->kernel->dispatch_count();
  }
  sim::set_default_process_backend(saved);
  state.SetLabel(sim::to_string(backend));
  state.counters["backend_fibers"] = backend == sim::ProcessBackend::kFibers ? 1 : 0;
  state.counters["dispatches"] = static_cast<double>(dispatches);
  state.counters["dispatches_per_sec"] = secs > 0 ? static_cast<double>(dispatches) / secs : 0;
  state.counters["ns_per_dispatch"] =
      dispatches > 0 ? secs * 1e9 / static_cast<double>(dispatches) : 0;
}
BENCHMARK(BM_PipelineBackend)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  return dfdbg::benchutil::run_all_benchmarks(&argc, argv);
}

// CS-C — §VI-C non-linear execution: step_both plants temporary breakpoints
// at both ends of a data dependency. Verifies the two stops occur on every
// data link of the decoder (property sweep) and measures the cost.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <vector>

#include "bench_util.hpp"

using namespace dfdbg;

namespace {

/// Performs one step_both on `out_iface`; returns true if both stops were
/// observed in order (send then receive in our kernel).
bool step_both_on(const std::string& out_iface, double* secs = nullptr) {
  auto built = h264::H264App::build(benchutil::decoder_config(2, 2, 1));
  DFDBG_CHECK(built.ok());
  auto& app = **built;
  dbg::Session session(app.app());
  session.attach();
  app.start();
  if (!session.step_both_iface(out_iface).ok()) return false;
  bool sent = false, received = false;
  double t = benchutil::time_s([&] {
    for (;;) {
      auto out = session.run();
      if (out.result != sim::RunResult::kStopped) break;
      if (out.stops[0].kind == dbg::StopKind::kTokenSent) sent = true;
      if (out.stops[0].kind == dbg::StopKind::kTokenReceived) {
        received = sent;  // receive must come after send
        break;
      }
    }
  });
  if (secs != nullptr) *secs = t;
  return sent && received;
}

void BM_StepBothFirstLink(benchmark::State& state) {
  for (auto _ : state) {
    bool ok = step_both_on("ipred::Add2Dblock_ipf_out");
    benchmark::DoNotOptimize(ok);
  }
}
BENCHMARK(BM_StepBothFirstLink);

void BM_StepBothHotLink(benchmark::State& state) {
  // The coefficient link fires 24x per MB: the temporary breakpoints catch
  // the very first transfer.
  for (auto _ : state) {
    bool ok = step_both_on("vld::coeff_out");
    benchmark::DoNotOptimize(ok);
  }
}
BENCHMARK(BM_StepBothHotLink);

}  // namespace

int main(int argc, char** argv) {
  std::printf("=== CS-C: step_both over every data link of the decoder ===\n");
  // Enumerate the decoder's filter-to-filter links from a probe instance.
  std::vector<std::string> out_ifaces;
  {
    auto built = h264::H264App::build(benchutil::decoder_config(2, 2, 1));
    DFDBG_CHECK(built.ok());
    for (const auto& l : (*built)->app().links()) {
      const auto& src = l->src()->owner();
      const auto& dst = l->dst()->owner();
      if (src.kind() == pedf::ActorKind::kHostIo || dst.kind() == pedf::ActorKind::kHostIo)
        continue;
      // mc's links carry tokens only for inter MBs; a single-frame stream is
      // all intra, so skip them in this sweep.
      if (src.name() == "mc" || dst.name() == "mc" || l->name().find("mc") != std::string::npos)
        continue;
      out_ifaces.push_back(src.name() + "::" + l->src()->name());
    }
  }
  int ok_count = 0;
  for (const std::string& iface : out_ifaces) {
    bool ok = step_both_on(iface);
    std::printf("  step_both %-38s %s\n", iface.c_str(), ok ? "send+receive stops OK" : "FAILED");
    if (ok) ok_count++;
  }
  bool all_ok = ok_count == static_cast<int>(out_ifaces.size());
  std::printf("step_both verified on %d/%zu links\n\n", ok_count, out_ifaces.size());
  benchutil::run_all_benchmarks(&argc, argv);
  return all_ok ? 0 : 1;
}

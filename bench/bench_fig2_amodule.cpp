// FIG2 — regenerates the paper's Fig. 2 (the AModule dataflow graph) and
// measures debugger Contribution #1: dynamic graph reconstruction during
// the framework's initialization phase.
//
// Checks: the graph the debugger reconstructs purely from registration
// events is isomorphic to the ADL ground truth (same actors, ports, arcs);
// benchmarks: ADL parse, instantiation, and reconstruction cost.
#include <benchmark/benchmark.h>

#include "bench_util.hpp"

#include <cstdio>

#include "dfdbg/debug/session.hpp"
#include "dfdbg/mind/analyze.hpp"
#include "dfdbg/mind/dot.hpp"
#include "dfdbg/mind/instantiate.hpp"
#include "dfdbg/mind/parser.hpp"
#include "dfdbg/pedf/application.hpp"
#include "dfdbg/sim/platform.hpp"

using namespace dfdbg;

namespace {

const char* kAModuleAdl = R"adl(
@Module
composite AModule {
  contains as controller {
    output U32 as cmd_out_1;
    output U32 as cmd_out_2;
    source ctrl_source.c;
  }
  input U32 as module_in;
  output U32 as module_out;
  contains AFilter as filter_1;
  contains AFilter as filter_2;
  binds controller.cmd_out_1 to filter_1.cmd_in;
  binds controller.cmd_out_2 to filter_2.cmd_in;
  binds this.module_in to filter_1.an_input;
  binds filter_1.an_output to filter_2.an_input;
  binds filter_2.an_output to this.module_out;
}
@Filter
primitive AFilter {
  data      stddefs.h:U32 a_private_data;
  attribute stddefs.h:U32 an_attribute;
  source    the_source.c;
  input stddefs.h:U32 as an_input;
  input stddefs.h:U32 as cmd_in;
  output stddefs.h:U32 as an_output;
}
)adl";

/// Builds the app and returns the reconstructed-graph session statistics.
struct ReconResult {
  std::size_t actors = 0;
  std::size_t links = 0;
  bool matches_framework = false;
};

ReconResult reconstruct_once() {
  sim::Kernel kernel;
  sim::PlatformConfig pc;
  pc.clusters = 1;
  pc.pes_per_cluster = 4;
  sim::Platform platform(kernel, pc);
  pedf::Application app(platform, "amodule");
  auto doc = mind::parse(kAModuleAdl);
  DFDBG_CHECK(doc.ok());
  mind::FilterRegistry registry;
  auto root = mind::instantiate(*doc, "AModule", "amodule", app.types(), registry);
  DFDBG_CHECK(root.ok());
  app.set_root(std::move(*root));
  app.add_host_source("src", "amodule.module_in", {pedf::Value::u32(0)});
  app.add_host_sink("snk", "amodule.module_out", 1);
  dbg::Session session(app);
  session.attach();
  DFDBG_CHECK(app.elaborate().ok());
  ReconResult r;
  r.actors = session.graph().actors().size();
  r.links = session.graph().links().size();
  r.matches_framework = r.actors == app.actors().size() && r.links == app.links().size();
  // Deep check: every framework link exists in the model with the same ends.
  for (const auto& l : app.links()) {
    const dbg::DLink* dl = session.graph().link(l->id().value());
    if (dl == nullptr || dl->src_actor != l->src()->owner().name() ||
        dl->dst_actor != l->dst()->owner().name() || dl->src_port != l->src()->name() ||
        dl->dst_port != l->dst()->name())
      r.matches_framework = false;
  }
  return r;
}

void BM_AdlParse(benchmark::State& state) {
  for (auto _ : state) {
    auto doc = mind::parse(kAModuleAdl);
    benchmark::DoNotOptimize(doc.ok());
  }
}
BENCHMARK(BM_AdlParse);

void BM_GraphReconstruction(benchmark::State& state) {
  // Full cycle: instantiate + attach + elaborate (registration replayed into
  // the debugger model).
  for (auto _ : state) {
    ReconResult r = reconstruct_once();
    benchmark::DoNotOptimize(r.matches_framework);
  }
}
BENCHMARK(BM_GraphReconstruction);

void BM_RegistrationReplay(benchmark::State& state) {
  // Late-attach path: the graph already exists; only the replay is measured.
  sim::Kernel kernel;
  sim::PlatformConfig pc;
  pc.clusters = 1;
  pc.pes_per_cluster = 4;
  sim::Platform platform(kernel, pc);
  pedf::Application app(platform, "amodule");
  auto doc = mind::parse(kAModuleAdl);
  mind::FilterRegistry registry;
  auto root = mind::instantiate(*doc, "AModule", "amodule", app.types(), registry);
  app.set_root(std::move(*root));
  app.add_host_source("src", "amodule.module_in", {pedf::Value::u32(0)});
  app.add_host_sink("snk", "amodule.module_out", 1);
  DFDBG_CHECK(app.elaborate().ok());
  for (auto _ : state) {
    dbg::Session session(app);
    session.attach();
    benchmark::DoNotOptimize(session.graph().ready());
  }
}
BENCHMARK(BM_RegistrationReplay);

}  // namespace

int main(int argc, char** argv) {
  ReconResult r = reconstruct_once();
  std::printf("=== FIG2: AModule graph reconstruction (Contribution #1) ===\n");
  std::printf("reconstructed actors=%zu links=%zu ground-truth-match=%s\n\n", r.actors, r.links,
              r.matches_framework ? "YES" : "NO");
  auto doc = mind::parse(kAModuleAdl);
  std::printf("--- ADL ground truth (mind::to_dot) ---\n%s\n",
              mind::to_dot(*doc, "AModule").c_str());
  benchutil::run_all_benchmarks(&argc, argv);
  return r.matches_framework ? 0 : 1;
}

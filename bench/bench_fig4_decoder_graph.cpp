// FIG4 — regenerates the paper's Fig. 4: the H.264 decoder graph annotated
// with live token counts, captured in the stall state the paper shows
// ("the link pipe -> ipf currently holds 20 tokens ... link hwcfg -> pipe
// contains three tokens").
//
// The rate-mismatch fault drives the pipe->ipf backlog; we stop the
// execution when it reaches exactly 20 and print the annotated graph plus
// the per-link occupancy table. Benchmarks measure the time to reach and
// render that state.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_util.hpp"
#include "dfdbg/dbgcli/render.hpp"

using namespace dfdbg;

namespace {

struct Fig4State {
  std::string dot;
  std::string links;
  std::size_t pipe_ipf = 0;
  std::size_t hwcfg_pipe = 0;
  bool reached = false;
};

Fig4State capture_fig4() {
  h264::H264AppConfig cfg = benchutil::decoder_config(2, 2, 2);
  cfg.fault.kind = h264::FaultPlan::Kind::kRateMismatch;
  cfg.fault.trigger_mb = 0;
  cfg.fault.period = 1;
  auto built = h264::H264App::build(cfg);
  DFDBG_CHECK(built.ok());
  auto& app = **built;
  dbg::Session session(app.app());
  session.attach();
  app.start();
  Fig4State out;
  auto bp = session.break_on_send("pipe::pipe_ipf_out");
  DFDBG_CHECK(bp.ok());
  for (;;) {
    auto r = session.run();
    if (r.result != sim::RunResult::kStopped) break;
    if (app.app().link_by_iface("ipf::pipe_in")->occupancy() >= 20) {
      out.reached = true;
      break;
    }
  }
  out.pipe_ipf = app.app().link_by_iface("ipf::pipe_in")->occupancy();
  out.hwcfg_pipe = app.app().link_by_iface("pipe::MbType_in")->occupancy();
  out.dot = session.graph().to_dot(/*with_tokens=*/true);
  out.links = cli::render_text(session.links_view());
  return out;
}

void BM_ReachFig4State(benchmark::State& state) {
  for (auto _ : state) {
    Fig4State s = capture_fig4();
    benchmark::DoNotOptimize(s.reached);
  }
}
BENCHMARK(BM_ReachFig4State);

void BM_RenderAnnotatedGraph(benchmark::State& state) {
  h264::H264AppConfig cfg = benchutil::decoder_config(2, 2, 1);
  auto built = h264::H264App::build(cfg);
  DFDBG_CHECK(built.ok());
  auto& app = **built;
  dbg::Session session(app.app());
  session.attach();
  for (auto _ : state) {
    std::string dot = session.graph().to_dot(true);
    benchmark::DoNotOptimize(dot.size());
  }
}
BENCHMARK(BM_RenderAnnotatedGraph);

void BM_CleanDecodeEndToEnd(benchmark::State& state) {
  // Baseline: the same decoder without faults or debugger; per-MB cost.
  h264::H264AppConfig cfg =
      benchutil::decoder_config(static_cast<int>(state.range(0)), 2, 2);
  for (auto _ : state) {
    bool exact = false;
    benchutil::run_decoder_once(cfg, /*attach_debugger=*/false, nullptr, nullptr, &exact);
    benchmark::DoNotOptimize(exact);
  }
  state.counters["mbs"] = static_cast<double>(cfg.params.total_mbs());
}
BENCHMARK(BM_CleanDecodeEndToEnd)->Arg(2)->Arg(4);

}  // namespace

int main(int argc, char** argv) {
  Fig4State s = capture_fig4();
  std::printf("=== FIG4: decoder graph with live token counts ===\n");
  std::printf("stall state reached: %s\n", s.reached ? "yes" : "no");
  std::printf("pipe -> ipf   : %zu tokens (paper shows 20)\n", s.pipe_ipf);
  std::printf("hwcfg -> pipe : %zu tokens (paper shows 3)\n", s.hwcfg_pipe);
  std::printf("\n--- per-link occupancy at the stop ---\n%s", s.links.c_str());
  std::printf("\n--- annotated DOT (render with graphviz) ---\n%s\n", s.dot.c_str());
  benchutil::run_all_benchmarks(&argc, argv);
  return s.reached && s.pipe_ipf == 20 ? 0 : 1;
}

// Seeded wide synthetic dataflow graphs: N independent pipelines fanning
// into one sink. The shape is the scaling counterpart of the H.264 decoder —
// embarrassingly parallel stage work with a single serialization point — and
// is what the parallel backend's per-cluster partitioning is built for: each
// pipeline maps onto its own cluster, so the default partition map spreads
// pipelines across workers.
//
// Kept separate from bench_util.hpp so tests can build these graphs without
// pulling in the google-benchmark headers.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "dfdbg/common/assert.hpp"
#include "dfdbg/pedf/application.hpp"
#include "dfdbg/pedf/filter.hpp"
#include "dfdbg/pedf/module.hpp"
#include "dfdbg/sim/kernel.hpp"
#include "dfdbg/sim/platform.hpp"

namespace dfdbg::benchutil {

/// Deterministic CPU burn: `iters` xorshift rounds over `seed`. This is the
/// per-token "work" of a stage — pure integer mixing, no memory traffic, so
/// speedup measurements isolate the kernel's scheduling overhead.
inline std::uint32_t spin_work(std::uint32_t iters, std::uint32_t seed) {
  std::uint32_t x = seed | 1u;
  for (std::uint32_t i = 0; i < iters; ++i) {
    x ^= x << 13;
    x ^= x >> 17;
    x ^= x << 5;
  }
  return x;
}

/// One xorshift32 step (never returns 0 for nonzero input).
inline std::uint32_t wide_next(std::uint32_t x) {
  if (x == 0) x = 1;
  x ^= x << 13;
  x ^= x >> 17;
  x ^= x << 5;
  return x;
}

/// What every stage does to a token: order-preserving (+1 keeps pipelines
/// checkable) but dependent on the spin result, so the busy work cannot be
/// optimized away and the sink checksum pins the computation end to end.
inline std::uint32_t stage_transform(std::uint32_t v, std::uint32_t spin) {
  return v + 1u + (spin_work(spin, v) & 1u);
}

struct WideGraphConfig {
  int pipelines = 8;           ///< N parallel lanes (one platform cluster each)
  int stages = 2;              ///< filters per lane
  std::size_t tokens = 128;    ///< tokens per lane
  std::uint32_t spin = 512;    ///< spin_work iterations per token per stage
  std::uint32_t seed = 1;      ///< payload PRNG seed
  /// Deliberate load skew: lane p carries `stages + p * stage_skew` filters,
  /// so later lanes do linearly more work (more activations AND more spin)
  /// per token. The cluster-modulo default map keeps a whole lane on one
  /// worker — the worst case for this shape — while the adaptive partitioner
  /// may split a hot lane's stages across workers. 0 = uniform lanes.
  int stage_skew = 0;
  /// When true, installs an explicit per-pipeline partition map
  /// (set_partition(stage, pipeline % workers)) instead of relying on the
  /// platform's cluster-derived default. The two coincide on this topology;
  /// tests use the explicit form to pin determinism to a fixed map.
  bool fixed_partitions = false;
};

/// Filters in lane `p` under the configured skew.
inline int wide_stages(const WideGraphConfig& cfg, int p) {
  return cfg.stages + p * cfg.stage_skew;
}

struct WideWorld {
  WideGraphConfig cfg;
  std::unique_ptr<sim::Kernel> kernel;
  std::unique_ptr<sim::Platform> platform;
  std::unique_ptr<pedf::Application> app;
  pedf::HostSink* sink = nullptr;
  std::uint64_t expected_tokens = 0;
  std::uint64_t expected_checksum = 0;  ///< order-independent sum of sink payloads
};

/// The payload stream of pipeline `p` (recomputable host-side).
inline std::uint32_t wide_payload_seed(const WideGraphConfig& cfg, int p) {
  return cfg.seed ^ (0x9E3779B9u * static_cast<std::uint32_t>(p + 1));
}

/// Builds the graph on a fresh kernel of the given backend, elaborated and
/// ready for start(). Platform: one cluster per pipeline, one PE per stage
/// (plus one for the fan-in merge on cluster 0), so no two stage filters
/// share a PE and the cluster-modulo default map partitions by pipeline.
inline std::unique_ptr<WideWorld> build_wide_world(
    const WideGraphConfig& cfg, sim::ProcessBackend backend = sim::default_process_backend(),
    int workers = 0) {
  DFDBG_CHECK(cfg.pipelines >= 1 && cfg.stages >= 1 && cfg.stage_skew >= 0);
  auto w = std::make_unique<WideWorld>();
  w->cfg = cfg;
  w->kernel = std::make_unique<sim::Kernel>(backend, workers);
  const int max_stages = wide_stages(cfg, cfg.pipelines - 1);
  sim::PlatformConfig pc;
  pc.clusters = cfg.pipelines;
  pc.pes_per_cluster = max_stages + 1;
  w->platform = std::make_unique<sim::Platform>(*w->kernel, pc);
  w->app = std::make_unique<pedf::Application>(*w->platform, "wide");
  w->app->set_model_latencies(false);

  const pedf::TypeDesc u32{pedf::ScalarType::kU32};
  auto root = std::make_unique<pedf::Module>("top");
  root->add_port("out", pedf::PortDir::kOut, u32);
  const std::uint32_t spin = cfg.spin;
  for (int p = 0; p < cfg.pipelines; ++p) {
    root->add_port("in" + std::to_string(p), pedf::PortDir::kIn, u32);
    for (int s = 0; s < wide_stages(cfg, p); ++s) {
      auto* f = new pedf::FnFilter("s" + std::to_string(p) + "_" + std::to_string(s),
                                   [spin](pedf::FilterContext& pedf) {
                                     auto v = pedf.in("in").get_opt();
                                     if (!v.has_value()) {
                                       pedf.stop();
                                       return;
                                     }
                                     pedf.out("out").put(pedf::Value::u32(
                                         stage_transform(static_cast<std::uint32_t>(v->as_u64()),
                                                         spin)));
                                   });
      f->add_port("in", pedf::PortDir::kIn, u32);
      f->add_port("out", pedf::PortDir::kOut, u32);
      f->set_free_running(true);
      root->add_filter(std::unique_ptr<pedf::Filter>(f));
    }
  }
  // Fan-in: one merge filter draining every lane round-robin. All lanes
  // carry the same token count, so the rotation never starves.
  const int lanes = cfg.pipelines;
  auto* merge = new pedf::FnFilter("merge", [lanes](pedf::FilterContext& pedf) {
    for (int p = 0; p < lanes; ++p) {
      auto v = pedf.in("in" + std::to_string(p)).get_opt();
      if (!v.has_value()) {
        pedf.stop();
        return;
      }
      pedf.out("out").put(*v);
    }
  });
  for (int p = 0; p < cfg.pipelines; ++p)
    merge->add_port("in" + std::to_string(p), pedf::PortDir::kIn, u32);
  merge->add_port("out", pedf::PortDir::kOut, u32);
  merge->set_free_running(true);
  root->add_filter(std::unique_ptr<pedf::Filter>(merge));

  for (int p = 0; p < cfg.pipelines; ++p) {
    std::string lane = std::to_string(p);
    const int stages = wide_stages(cfg, p);
    root->bind("this.in" + lane, "s" + lane + "_0.in");
    for (int s = 1; s < stages; ++s)
      root->bind("s" + lane + "_" + std::to_string(s - 1) + ".out",
                 "s" + lane + "_" + std::to_string(s) + ".in");
    root->bind("s" + lane + "_" + std::to_string(stages - 1) + ".out", "merge.in" + lane);
  }
  root->bind("merge.out", "this.out");
  pedf::Application& app = *w->app;
  app.set_root(std::move(root));

  for (int p = 0; p < cfg.pipelines; ++p) {
    const int stages = wide_stages(cfg, p);
    for (int s = 0; s < stages; ++s)
      app.map_actor("top.s" + std::to_string(p) + "_" + std::to_string(s),
                    "c" + std::to_string(p) + "p" + std::to_string(s));
    std::uint32_t x = wide_payload_seed(cfg, p);
    std::vector<pedf::Value> stream;
    stream.reserve(cfg.tokens);
    for (std::size_t j = 0; j < cfg.tokens; ++j) {
      x = wide_next(x);
      stream.push_back(pedf::Value::u32(x));
      std::uint32_t v = x;
      for (int s = 0; s < stages; ++s) v = stage_transform(v, cfg.spin);
      w->expected_checksum += v;
    }
    app.add_host_source("src" + std::to_string(p), "top.in" + std::to_string(p),
                        std::move(stream));
  }
  app.map_actor("top.merge", "c0p" + std::to_string(max_stages));
  w->expected_tokens = static_cast<std::uint64_t>(cfg.pipelines) * cfg.tokens;
  w->sink = &app.add_host_sink("snk", "top.out", static_cast<std::size_t>(w->expected_tokens));

  if (cfg.fixed_partitions) {
    const int K = w->kernel->partition_count();
    for (int p = 0; p < cfg.pipelines; ++p)
      for (int s = 0; s < wide_stages(cfg, p); ++s)
        app.set_partition("top.s" + std::to_string(p) + "_" + std::to_string(s), p % K);
  }
  DFDBG_CHECK(app.elaborate().ok());
  return w;
}

/// Starts and runs the world to completion. Free-running stages park on
/// their drained input links once the sources are exhausted, so a completed
/// run reads as kDeadlock (the kernel tears the parked processes down); the
/// sink token count is the actual completion check.
inline void run_wide_world(WideWorld& w) {
  w.app->start();
  sim::RunResult r = w.kernel->run();
  DFDBG_CHECK_MSG(r == sim::RunResult::kDeadlock || r == sim::RunResult::kFinished,
                  "wide world stopped unexpectedly: " + std::string(sim::to_string(r)));
  DFDBG_CHECK_MSG(w.sink->received().size() == w.expected_tokens,
                  "sink shortfall: got " + std::to_string(w.sink->received().size()) +
                      " of " + std::to_string(w.expected_tokens));
}

/// Order-independent checksum of what the sink saw; equal to
/// expected_checksum on any backend iff every token arrived transformed once.
inline std::uint64_t sink_checksum(const WideWorld& w) {
  std::uint64_t sum = 0;
  for (const pedf::Value& v : w.sink->received()) sum += v.as_u64();
  return sum;
}

}  // namespace dfdbg::benchutil

// CS-B — §VI-B token-based execution firing: the catchpoint machinery
// (`filter pipe catch work`, `catch Pipe_in=1,Hwcfg_in=1`, `catch *in=1`).
//
// Verifies the three commands stop where the paper says and measures the
// cost of running the decoder under each catchpoint kind.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_util.hpp"

using namespace dfdbg;

namespace {

/// Runs the decoder to completion stopping at every trigger of `setup`'s
/// catchpoint; returns the number of stops.
int stops_with(const std::function<void(dbg::Session&)>& setup, double* secs = nullptr) {
  auto built = h264::H264App::build(benchutil::decoder_config(2, 2, 2));
  DFDBG_CHECK(built.ok());
  auto& app = **built;
  dbg::Session session(app.app());
  session.attach();
  setup(session);
  app.start();
  int stops = 0;
  double t = benchutil::time_s([&] {
    for (;;) {
      auto out = session.run();
      if (out.result != sim::RunResult::kStopped) break;
      stops++;
    }
  });
  if (secs != nullptr) *secs = t;
  return stops;
}

void BM_CatchWork(benchmark::State& state) {
  for (auto _ : state) {
    int stops = stops_with([](dbg::Session& s) { DFDBG_CHECK(s.catch_work("pipe").ok()); });
    benchmark::DoNotOptimize(stops);
    state.counters["stops"] = stops;
  }
}
BENCHMARK(BM_CatchWork);

void BM_CatchTokenCounts(benchmark::State& state) {
  for (auto _ : state) {
    int stops = stops_with([](dbg::Session& s) {
      DFDBG_CHECK(s.catch_tokens("ipred", {{"Pipe_in", 1}, {"Hwcfg_in", 1}}).ok());
    });
    benchmark::DoNotOptimize(stops);
    state.counters["stops"] = stops;
  }
}
BENCHMARK(BM_CatchTokenCounts);

void BM_CatchContent(benchmark::State& state) {
  for (auto _ : state) {
    int stops = stops_with([](dbg::Session& s) {
      DFDBG_CHECK(s.catch_token_content(
                       "pipe::Red2PipeCbMB_in",
                       [](const pedf::Value& v) { return v.field_u64("InterNotIntra") == 1; },
                       "inter flag set")
                      .ok());
    });
    benchmark::DoNotOptimize(stops);
    state.counters["stops"] = stops;
  }
}
BENCHMARK(BM_CatchContent);

void BM_NoCatchpointBaseline(benchmark::State& state) {
  for (auto _ : state) {
    int stops = stops_with([](dbg::Session&) {});
    benchmark::DoNotOptimize(stops);
  }
}
BENCHMARK(BM_NoCatchpointBaseline);

}  // namespace

int main(int argc, char** argv) {
  std::printf("=== CS-B: catchpoint semantics check ===\n");
  int mbs = benchutil::decoder_config(2, 2, 2).params.total_mbs();
  int work_stops = stops_with([](dbg::Session& s) { DFDBG_CHECK(s.catch_work("pipe").ok()); });
  std::printf("filter pipe catch work           : %d stops (expect %d = one per MB)\n",
              work_stops, mbs);
  int count_stops = stops_with([](dbg::Session& s) {
    DFDBG_CHECK(s.catch_tokens("ipred", {{"Pipe_in", 1}, {"Hwcfg_in", 1}}).ok());
  });
  std::printf("filter ipred catch Pipe_in=1,Hwcfg_in=1 : %d stops\n", count_stops);
  int wild_stops =
      stops_with([](dbg::Session& s) { DFDBG_CHECK(s.catch_all_inputs("ipred", 1).ok()); });
  std::printf("filter ipred catch *in=1         : %d stops (must equal explicit: %s)\n",
              wild_stops, wild_stops == count_stops ? "yes" : "NO");
  bool ok = work_stops == mbs && wild_stops == count_stops;
  std::printf("semantics: %s\n\n", ok ? "OK" : "MISMATCH");
  benchutil::run_all_benchmarks(&argc, argv);
  return ok ? 0 : 1;
}

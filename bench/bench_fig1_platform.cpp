// FIG1 — regenerates the paper's Fig. 1 (P2012 platform architecture) from
// the live platform model, and measures the platform primitives the
// dataflow links ride on (memory access, DMA transfer, PE execution).
//
// Paper artefact: an architecture diagram (host + fabric clusters sharing
// L1, inter-cluster L2, host L3 behind DMA). We emit the same topology as
// DOT from the simulated platform object and benchmark its primitives.
#include <benchmark/benchmark.h>

#include "bench_util.hpp"

#include <cstdio>

#include "dfdbg/sim/platform.hpp"

using namespace dfdbg;

static void BM_PlatformConstruction(benchmark::State& state) {
  sim::PlatformConfig cfg;
  cfg.clusters = static_cast<int>(state.range(0));
  cfg.pes_per_cluster = 16;
  for (auto _ : state) {
    sim::Kernel kernel;
    sim::Platform platform(kernel, cfg);
    benchmark::DoNotOptimize(platform.pe_count());
  }
  state.counters["pes"] = static_cast<double>(
      cfg.clusters * (cfg.pes_per_cluster + cfg.accel_slots_per_cluster) + cfg.host_cores);
}
BENCHMARK(BM_PlatformConstruction)->Arg(1)->Arg(4)->Arg(8);

static void BM_MemoryAccessLatency(benchmark::State& state) {
  // Simulated-cycle cost of one access per memory level (L1/L2/L3).
  sim::Kernel kernel;
  sim::Platform platform(kernel, sim::PlatformConfig{});
  std::uint64_t level = static_cast<std::uint64_t>(state.range(0));
  sim::SimTime before = 0, after = 0;
  kernel.spawn("prober", [&] {
    for (int i = 0; i < 1000; ++i) {
      if (level == 1) platform.fabric()[0].l1->access(kernel, 64);
      if (level == 2) platform.l2().access(kernel, 64);
      if (level == 3) platform.l3().access(kernel, 64);
    }
    after = kernel.now();
  });
  kernel.run();
  for (auto _ : state) benchmark::DoNotOptimize(after);
  state.counters["cycles_per_access"] = static_cast<double>(after - before) / 1000.0;
}
BENCHMARK(BM_MemoryAccessLatency)->Arg(1)->Arg(2)->Arg(3);

static void BM_DmaTransfer(benchmark::State& state) {
  sim::Kernel kernel;
  sim::Platform platform(kernel, sim::PlatformConfig{});
  std::uint64_t bytes = static_cast<std::uint64_t>(state.range(0));
  sim::SimTime total = 0;
  kernel.spawn("dma-user", [&] {
    for (int i = 0; i < 100; ++i)
      platform.dmas()[0]->transfer(kernel, platform.l3(), platform.l2(), bytes);
    total = kernel.now();
  });
  kernel.run();
  for (auto _ : state) benchmark::DoNotOptimize(total);
  state.counters["cycles_per_transfer"] = static_cast<double>(total) / 100.0;
}
BENCHMARK(BM_DmaTransfer)->Arg(64)->Arg(1024)->Arg(16384);

static void BM_PeExclusivity(benchmark::State& state) {
  // Two actors mapped on one PE serialize; on two PEs they overlap.
  bool same_pe = state.range(0) == 1;
  sim::SimTime elapsed = 0;
  {
    sim::Kernel kernel;
    sim::Platform platform(kernel, sim::PlatformConfig{});
    sim::Pe& pe_a = *platform.fabric()[0].pes[0];
    sim::Pe& pe_b = same_pe ? pe_a : *platform.fabric()[0].pes[1];
    kernel.spawn("a", [&] { pe_a.execute(kernel, 1000); });
    kernel.spawn("b", [&] { pe_b.execute(kernel, 1000); });
    kernel.run();
    elapsed = kernel.now();
  }
  for (auto _ : state) benchmark::DoNotOptimize(elapsed);
  state.counters["sim_cycles"] = static_cast<double>(elapsed);
}
BENCHMARK(BM_PeExclusivity)->Arg(1)->Arg(2);

int main(int argc, char** argv) {
  // Emit the Fig. 1 topology before benchmarking.
  sim::Kernel kernel;
  sim::Platform platform(kernel, sim::PlatformConfig{});
  std::printf("=== FIG1: P2012 platform topology (Graphviz DOT) ===\n%s\n",
              platform.to_dot().c_str());
  std::printf("pe_count=%zu clusters=%d l2=%lluB l3=%lluB dma_engines=%zu\n\n",
              platform.pe_count(), platform.config().clusters,
              static_cast<unsigned long long>(platform.l2().size_bytes()),
              static_cast<unsigned long long>(platform.l3().size_bytes()),
              platform.dmas().size());
  return benchutil::run_all_benchmarks(&argc, argv);
}

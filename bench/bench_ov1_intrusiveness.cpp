// OV1 — the paper's §V intrusiveness discussion, quantified.
//
// "Our frequent use of breakpoints introduces a slowdown in the application.
//  This is mainly due to the breakpoints related to data exchanges..."
// Option 1: disable the data-exchange breakpoints.
// Option 2 (framework cooperation, unimplemented in the paper, built here):
//  actor-specific data-exchange breakpoints only on the interfaces of
//  interest.
//
// Expected shape: native < detached < option2 < option1 < full debug, with
// the data-exchange breakpoints dominating the full-debug cost.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_util.hpp"
#include "dfdbg/obs/journal.hpp"

using namespace dfdbg;

namespace {

struct Mode {
  const char* name;
  bool attach;
  int option;  // 0=full, 1=data hooks off, 2=selective, -1=n/a
};

constexpr Mode kModes[] = {
    {"native (no debugger)", false, -1},
    {"full debug (all breakpoints)", true, 0},
    {"option 1 (data-exchange off)", true, 1},
    {"option 2 (cooperation, 2 ifaces)", true, 2},
};

double run_mode(const Mode& mode, const h264::H264AppConfig& cfg, std::uint64_t* hooks,
                bool* exact) {
  return benchutil::run_decoder_once(
      cfg, mode.attach,
      [&](dbg::Session& s) {
        if (mode.option == 1) {
          s.set_data_exchange_hooks(false);
        } else if (mode.option == 2) {
          DFDBG_CHECK(
              s.use_selective_data_hooks({"pipe::Red2PipeCbMB_in", "ipred::Pipe_in"}).ok());
        }
      },
      hooks, exact);
}

void BM_Intrusiveness(benchmark::State& state) {
  const Mode& mode = kModes[state.range(0)];
  h264::H264AppConfig cfg = benchutil::decoder_config(2, 2, 2);
  std::uint64_t hooks = 0;
  bool exact = false;
  for (auto _ : state) {
    double t = run_mode(mode, cfg, &hooks, &exact);
    benchmark::DoNotOptimize(t);
  }
  state.SetLabel(mode.name);
  state.counters["hook_invocations"] = static_cast<double>(hooks);
  state.counters["bit_exact"] = exact ? 1 : 0;
}
BENCHMARK(BM_Intrusiveness)->DenseRange(0, 3)->Unit(benchmark::kMillisecond);

// The observability layer's own intrusiveness: the same native decode with
// the obs registry disabled (the default — every instrument is one
// predictable branch) vs enabled (counters, gauges, histograms live).
// Acceptance bar: disabled must be within noise of the pre-obs baseline.
void BM_MetricsOverhead(benchmark::State& state) {
  bool metrics_on = state.range(0) != 0;
  h264::H264AppConfig cfg = benchutil::decoder_config(2, 2, 2);
  obs::Registry::global().reset();
  obs::set_enabled(metrics_on);
  for (auto _ : state) {
    double t = benchutil::run_decoder_once(cfg, /*attach_debugger=*/false, nullptr);
    benchmark::DoNotOptimize(t);
  }
  obs::set_enabled(false);
  state.SetLabel(metrics_on ? "metrics enabled" : "metrics disabled (default)");
  auto& reg = obs::Registry::global();
  state.counters["sim_dispatch"] = static_cast<double>(reg.counter("sim.dispatch").value());
  state.counters["link_push"] = static_cast<double>(reg.counter("link.push").value());
  state.counters["hook_invocation"] =
      static_cast<double>(reg.counter("hook.invocation").value());
}
BENCHMARK(BM_MetricsOverhead)->DenseRange(0, 1)->Unit(benchmark::kMillisecond);

// The flight recorder's intrusiveness on top of live metrics: both arms run
// with the registry enabled; arm 0 silences the journal (recording off, so a
// push costs the counters plus one branch), arm 1 records every push/pop/
// fire/dispatch into the ring (one fixed-size POD store each, no allocation).
// Acceptance bar (ISSUE PR3): journal-on token throughput within 2x of
// journal-off with metrics on.
void BM_JournalOverhead(benchmark::State& state) {
  bool journal_on = state.range(0) != 0;
  h264::H264AppConfig cfg = benchutil::decoder_config(2, 2, 2);
  obs::Registry::global().reset();
  obs::Journal& journal = obs::Journal::global();
  journal.set_capacity(obs::Journal::kDefaultCapacity);  // also clears the window
  obs::set_enabled(true);
  journal.set_recording(journal_on);
  double secs = 0.0;
  for (auto _ : state) {
    double t = benchutil::run_decoder_once(cfg, /*attach_debugger=*/false, nullptr);
    secs += t;
    benchmark::DoNotOptimize(t);
  }
  journal.set_recording(true);
  obs::set_enabled(false);
  state.SetLabel(journal_on ? "journal recording" : "journal off (metrics only)");
  auto& reg = obs::Registry::global();
  double tokens = static_cast<double>(reg.counter("link.push").value());
  state.counters["tokens"] = tokens;
  state.counters["tokens_per_sec"] = secs > 0 ? tokens / secs : 0;
  state.counters["journal_recorded"] =
      static_cast<double>(reg.counter("journal.recorded").value());
  state.counters["journal_dropped"] =
      static_cast<double>(reg.counter("journal.dropped").value());
}
BENCHMARK(BM_JournalOverhead)->DenseRange(0, 1)->Unit(benchmark::kMillisecond);

// The kernel's own intrusiveness: the same native decode on each process
// backend. The thread backend pays two OS semaphore hops per dispatch; the
// fiber backend a user-space swapcontext pair, which is what the paper's
// functional simulator (SystemC user-level threads) actually does.
void BM_BackendIntrusiveness(benchmark::State& state) {
  const auto backend =
      state.range(0) == 0 ? sim::ProcessBackend::kThreads : sim::ProcessBackend::kFibers;
  const auto saved = sim::default_process_backend();
  sim::set_default_process_backend(backend);
  h264::H264AppConfig cfg = benchutil::decoder_config(2, 2, 2);
  std::uint64_t dispatches = 0;
  double secs = 0.0;
  for (auto _ : state) {
    std::uint64_t d = 0;
    secs += benchutil::run_decoder_once(cfg, /*attach_debugger=*/false, nullptr, nullptr,
                                        nullptr, &d);
    dispatches += d;
  }
  sim::set_default_process_backend(saved);
  state.SetLabel(sim::to_string(backend));
  state.counters["backend_fibers"] = backend == sim::ProcessBackend::kFibers ? 1 : 0;
  state.counters["dispatches"] = static_cast<double>(dispatches);
  state.counters["dispatches_per_sec"] = secs > 0 ? static_cast<double>(dispatches) / secs : 0;
  state.counters["ns_per_dispatch"] =
      dispatches > 0 ? secs * 1e9 / static_cast<double>(dispatches) : 0;
  state.counters["ns_per_context_switch"] =
      dispatches > 0 ? secs * 1e9 / (2.0 * static_cast<double>(dispatches)) : 0;
}
BENCHMARK(BM_BackendIntrusiveness)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  std::printf("=== OV1: debugger intrusiveness on the H.264 decoder ===\n");
  // A bigger workload for the headline table (repeated for stability).
  h264::H264AppConfig cfg = benchutil::decoder_config(3, 2, 3);
  constexpr int kReps = 5;
  // Our in-process hooks cost nanoseconds, so the raw wall-clock barely
  // moves; the paper's debugger pays a real GDB breakpoint round-trip per
  // event. The modeled column charges each hook invocation the typical cost
  // of a conditional GDB breakpoint over its Python bindings (~100 us) on
  // top of the measured native time — reproducing the paper's shape with an
  // explicit, documented assumption (see EXPERIMENTS.md, OV1).
  constexpr double kGdbTrapSeconds = 100e-6;
  double base = 0;
  std::printf("%-36s %11s %9s %16s %15s %9s\n", "mode", "wall (ms)", "slowdown",
              "hook invocations", "modeled slowdown", "bit-exact");
  for (const Mode& mode : kModes) {
    double best = 1e9;
    std::uint64_t hooks = 0;
    bool exact = false;
    for (int r = 0; r < kReps; ++r) {
      double t = run_mode(mode, cfg, &hooks, &exact);
      if (t < best) best = t;
    }
    if (mode.option == -1) base = best;
    double modeled = (base + static_cast<double>(hooks) * kGdbTrapSeconds) / base;
    std::printf("%-36s %11.3f %8.2fx %16llu %14.1fx %9s\n", mode.name, best * 1e3, best / base,
                static_cast<unsigned long long>(hooks), modeled, exact ? "yes" : "NO");
  }
  std::printf(
      "\npaper claim: the slowdown is dominated by the data-exchange\n"
      "breakpoints; option 1 removes most of it, option 2 (framework\n"
      "cooperation) keeps selected visibility at near-option-1 cost.\n"
      "Debugging never alters the decoded output (deterministic kernel).\n\n");

  // Self-observability cost: native decode with the metrics registry off
  // (the default; every instrument is one predictable branch) vs on.
  std::printf("=== OV1b: observability-layer overhead (native decode) ===\n");
  double off_best = 1e9, on_best = 1e9;
  for (int r = 0; r < kReps; ++r) {
    obs::set_enabled(false);
    double t = benchutil::run_decoder_once(cfg, false, nullptr);
    if (t < off_best) off_best = t;
    obs::set_enabled(true);
    t = benchutil::run_decoder_once(cfg, false, nullptr);
    if (t < on_best) on_best = t;
    obs::set_enabled(false);
  }
  std::printf("%-36s %11.3f\n", "metrics disabled (ms)", off_best * 1e3);
  std::printf("%-36s %11.3f  (+%.2f%%)\n", "metrics enabled (ms)", on_best * 1e3,
              (on_best / off_best - 1.0) * 100.0);
  std::printf("target: disabled-mode overhead within noise (<2%%) of baseline\n\n");

  return benchutil::run_all_benchmarks(&argc, argv);
}

// SERVER — cost of the multi-client debug protocol: JSON-RPC round trips
// against a live paused H.264 session, over a real localhost TCP socket and
// in-process (socket excluded), for the two hot query verbs `info_links`
// and `whence`. Requests/sec comes from the benchmark loop; p50/p99 request
// service latency comes from the server's own `server.request_ns` histogram
// (the observability layer measuring the server that hosts it).
#include <benchmark/benchmark.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <future>
#include <map>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "dfdbg/server/server.hpp"

using namespace dfdbg;

namespace {

/// Rig + server on a dedicated thread (fibers stay on one thread); the
/// session is paused at the first `pipe` WORK catchpoint so links hold
/// tokens and `whence` has a causal chain to walk.
struct ServerFixture {
  std::thread thread;
  server::DebugServer* server = nullptr;
  int port = 0;

  explicit ServerFixture(server::ServerConfig scfg = {}) {
    std::promise<int> ready;
    thread = std::thread([this, scfg, &ready] {
      auto built = h264::H264App::build(benchutil::decoder_config(2, 2, 1));
      DFDBG_CHECK(built.ok());
      auto& app = **built;
      dbg::Session session(app.app());
      session.attach();
      app.start();
      DFDBG_CHECK(session.catch_work("pipe").ok());
      DFDBG_CHECK(session.run().result == sim::RunResult::kStopped);
      server::DebugServer srv(session, scfg);
      auto p = srv.listen_tcp();
      DFDBG_CHECK(p.ok());
      server = &srv;
      ready.set_value(*p);
      DFDBG_CHECK(srv.serve().ok());
    });
    port = ready.get_future().get();
  }

  ~ServerFixture() {
    server->request_shutdown();
    thread.join();
  }
};

int connect_tcp(int port) {
  int fd = socket(AF_INET, SOCK_STREAM, 0);
  DFDBG_CHECK(fd >= 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  DFDBG_CHECK(connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0);
  int one = 1;
  setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

/// One blocking request/response round trip.
std::string round_trip(int fd, const std::string& frame, std::string& spill) {
  std::string wire = frame + "\n";
  std::size_t off = 0;
  while (off < wire.size()) {
    ssize_t n = send(fd, wire.data() + off, wire.size() - off, MSG_NOSIGNAL);
    DFDBG_CHECK(n > 0);
    off += static_cast<std::size_t>(n);
  }
  for (;;) {
    std::size_t nl = spill.find('\n');
    if (nl != std::string::npos) {
      std::string line = spill.substr(0, nl);
      spill.erase(0, nl + 1);
      return line;
    }
    char buf[65536];
    ssize_t n = recv(fd, buf, sizeof(buf), 0);
    DFDBG_CHECK(n > 0);
    spill.append(buf, static_cast<std::size_t>(n));
  }
}

void report_latency(benchmark::State& state, std::size_t response_bytes) {
  const obs::Histogram& h = obs::Registry::global().histogram("server.request_ns");
  state.counters["p50_ns"] = static_cast<double>(h.percentile(0.50));
  state.counters["p99_ns"] = static_cast<double>(h.percentile(0.99));
  state.counters["response_bytes"] = static_cast<double>(response_bytes);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}

void bench_socket_verb(benchmark::State& state, const std::string& frame) {
  ServerFixture fx;
  int fd = connect_tcp(fx.port);
  std::string spill;
  // Warm-up (and sanity): the verb must answer with a result frame.
  std::string first = round_trip(fd, frame, spill);
  DFDBG_CHECK(first.find("\"result\":") != std::string::npos);
  obs::Registry::global().histogram("server.request_ns").reset();
  for (auto _ : state) {
    std::string resp = round_trip(fd, frame, spill);
    benchmark::DoNotOptimize(resp.data());
  }
  report_latency(state, first.size());
  close(fd);
}

void BM_ServerInfoLinks(benchmark::State& state) {
  bench_socket_verb(state, R"({"jsonrpc":"2.0","id":1,"method":"info_links"})");
}
BENCHMARK(BM_ServerInfoLinks)->UseRealTime();

void BM_ServerWhence(benchmark::State& state) {
  // pipe::coeff_in holds the decoded-coefficient backlog at the catchpoint,
  // so slot 0 has a non-trivial provenance chain.
  bench_socket_verb(
      state,
      R"({"jsonrpc":"2.0","id":1,"method":"whence","params":{"iface":"pipe::coeff_in"}})");
}
BENCHMARK(BM_ServerWhence)->UseRealTime();

void BM_ServerExecInfoLinks(benchmark::State& state) {
  // The same query through the CLI-compatibility verb: JSON framing plus
  // interpreter dispatch plus text rendering.
  bench_socket_verb(
      state,
      R"({"jsonrpc":"2.0","id":1,"method":"exec","params":{"line":"info links"}})");
}
BENCHMARK(BM_ServerExecInfoLinks)->UseRealTime();

/// Subscription fan-out: N clients subscribe to the `journal` stream, a
/// driver client mutates link state (`inject` + `remove`, two journal events
/// per pair), and every mutation is pushed to all N subscribers. A background
/// drainer keeps the subscriber sockets empty so the server's slow-consumer
/// policy stays out of the measurement; the server's own `server.sub.*`
/// counters report delivered-notification throughput and the drop rate.
void BM_SubscribeFanout(benchmark::State& state) {
  const int subs = static_cast<int>(state.range(0));
  server::ServerConfig scfg;
  scfg.max_clients = static_cast<std::size_t>(subs) + 8;
  ServerFixture fx(scfg);

  std::vector<int> sub_fds;
  for (int i = 0; i < subs; ++i) {
    int fd = connect_tcp(fx.port);
    std::string spill;
    std::string resp = round_trip(
        fd, R"({"jsonrpc":"2.0","id":1,"method":"subscribe","params":{"stream":"journal"}})",
        spill);
    DFDBG_CHECK(resp.find("\"ok\":true") != std::string::npos);
    sub_fds.push_back(fd);
  }

  // Drain subscriber sockets continuously; the stream content is not the
  // subject here, only the server-side cost of producing and sending it.
  std::atomic<bool> stop{false};
  std::thread drainer([&] {
    std::vector<pollfd> pfds(sub_fds.size());
    for (std::size_t i = 0; i < sub_fds.size(); ++i) pfds[i] = {sub_fds[i], POLLIN, 0};
    char buf[65536];
    while (!stop.load(std::memory_order_relaxed)) {
      if (poll(pfds.data(), pfds.size(), 10) <= 0) continue;
      for (pollfd& p : pfds)
        if ((p.revents & POLLIN) != 0)
          while (recv(p.fd, buf, sizeof(buf), MSG_DONTWAIT) > 0) {
          }
    }
  });

  int driver = connect_tcp(fx.port);
  std::string spill;
  const std::string inject =
      R"({"jsonrpc":"2.0","id":1,"method":"inject","params":{"iface":"pipe::MbType_in","value":"7"}})";
  const std::string remove =
      R"({"jsonrpc":"2.0","id":2,"method":"remove","params":{"iface":"pipe::MbType_in","slot":0}})";
  DFDBG_CHECK(round_trip(driver, inject, spill).find("\"ok\":true") != std::string::npos);
  DFDBG_CHECK(round_trip(driver, remove, spill).find("\"ok\":true") != std::string::npos);

  obs::Registry& reg = obs::Registry::global();
  const std::uint64_t notif0 = reg.counter("server.sub.notifications").value();
  const std::uint64_t drop0 = reg.counter("server.sub.dropped").value();
  const std::uint64_t cursor0 = obs::Journal::global().cursor();
  for (auto _ : state) {
    std::string r1 = round_trip(driver, inject, spill);
    std::string r2 = round_trip(driver, remove, spill);
    benchmark::DoNotOptimize(r1.data());
    benchmark::DoNotOptimize(r2.data());
  }
  const std::uint64_t events = obs::Journal::global().cursor() - cursor0;
  const std::uint64_t delivered = reg.counter("server.sub.notifications").value() - notif0;
  const std::uint64_t dropped = reg.counter("server.sub.dropped").value() - drop0;

  state.counters["subscribers"] = subs;
  state.counters["journal_events"] = static_cast<double>(events);
  state.counters["notifications"] = static_cast<double>(delivered);
  state.counters["drop_rate"] =
      events == 0 ? 0.0
                  : static_cast<double>(dropped) /
                        static_cast<double>(events * static_cast<std::uint64_t>(subs));
  // Fan-out throughput: journal events delivered per wall second across all
  // subscriber streams (events * subscribers when nothing is dropped).
  state.SetItemsProcessed(
      static_cast<std::int64_t>(events * static_cast<std::uint64_t>(subs) - dropped));

  stop.store(true);
  drainer.join();
  close(driver);
  for (int fd : sub_fds) close(fd);
}
BENCHMARK(BM_SubscribeFanout)->Arg(1)->Arg(8)->Arg(64)->UseRealTime();

/// Protocol without the socket: handle_frame directly on the serving state.
void BM_HandleFrameInfoLinks(benchmark::State& state) {
  auto built = h264::H264App::build(benchutil::decoder_config(2, 2, 1));
  DFDBG_CHECK(built.ok());
  auto& app = **built;
  dbg::Session session(app.app());
  session.attach();
  app.start();
  DFDBG_CHECK(session.catch_work("pipe").ok());
  DFDBG_CHECK(session.run().result == sim::RunResult::kStopped);
  server::DebugServer srv(session);
  const std::string frame = R"({"jsonrpc":"2.0","id":1,"method":"info_links"})";
  std::string first = srv.handle_frame(frame);
  DFDBG_CHECK(first.find("\"result\":") != std::string::npos);
  obs::Registry::global().histogram("server.request_ns").reset();
  for (auto _ : state) {
    std::string resp = srv.handle_frame(frame);
    benchmark::DoNotOptimize(resp.data());
  }
  report_latency(state, first.size());
}
BENCHMARK(BM_HandleFrameInfoLinks);

/// Resident set size in KiB (VmRSS from /proc/self/status); 0 if unreadable.
std::size_t vm_rss_kb() {
  std::ifstream in("/proc/self/status");
  std::string line;
  while (std::getline(in, line))
    if (line.rfind("VmRSS:", 0) == 0) return std::strtoull(line.c_str() + 6, nullptr, 10);
  return 0;
}

/// Fleet density and aggregate service rate: N idle wide-rig sessions in one
/// process, each a full debug world (kernel + app + quota-sized private
/// journal). Memory cost per session comes from the VmRSS delta across
/// creation; the aggregate requests/sec is round-robin `info_links` across
/// every session through the fleet dispatch path (session resolution +
/// journal scope + stat-mirror refresh on each request).
void BM_FleetSessions(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  server::ServerConfig scfg;
  scfg.max_sessions = static_cast<std::size_t>(n) + 8;
  dbg::SessionFactory factory;
  server::DebugServer srv(factory, scfg);

  const std::size_t rss0 = vm_rss_kb();
  const std::string create =
      R"({"jsonrpc":"2.0","id":1,"method":"session_create","params":{"rig":"wide",)"
      R"("pipelines":1,"stages":1,"tokens":4,"spin":1,"quota":{"journal_capacity":256}}})";
  for (int i = 0; i < n; ++i)
    DFDBG_CHECK(srv.handle_frame(create).find("\"ok\":true") != std::string::npos);
  const std::size_t rss1 = vm_rss_kb();

  // google-benchmark re-enters this function to calibrate iteration counts;
  // after the first pass the allocator holds the peak RSS and the delta
  // collapses. Keep the first (cold) measurement per fleet size.
  static std::map<int, double> cold_delta_kb;
  if (cold_delta_kb.find(n) == cold_delta_kb.end())
    cold_delta_kb[n] = rss1 > rss0 ? static_cast<double>(rss1 - rss0) : 0.0;

  obs::Registry::global().histogram("server.request_ns").reset();
  std::uint64_t sid = 1;  // fleet-only host: session ids are 1..n
  for (auto _ : state) {
    std::string frame =
        R"({"jsonrpc":"2.0","id":2,"method":"info_links","params":{"session":)" +
        std::to_string(sid) + "}}";
    std::string resp = srv.handle_frame(frame);
    benchmark::DoNotOptimize(resp.data());
    sid = sid % static_cast<std::uint64_t>(n) + 1;
  }

  const double kb = cold_delta_kb[n];
  const obs::Histogram& h = obs::Registry::global().histogram("server.request_ns");
  state.counters["sessions"] = n;
  state.counters["kb_per_session"] = kb / static_cast<double>(n);
  state.counters["sessions_per_gb"] =
      kb > 0.0 ? static_cast<double>(n) * (1024.0 * 1024.0) / kb : 0.0;
  state.counters["p50_ns"] = static_cast<double>(h.percentile(0.50));
  state.counters["p99_ns"] = static_cast<double>(h.percentile(0.99));
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_FleetSessions)->Arg(1)->Arg(64)->Arg(1024)->UseRealTime();

}  // namespace

int main(int argc, char** argv) {
  return benchutil::run_all_benchmarks(&argc, argv);
}

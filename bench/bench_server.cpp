// SERVER — cost of the multi-client debug protocol: JSON-RPC round trips
// against a live paused H.264 session, over a real localhost TCP socket and
// in-process (socket excluded), for the two hot query verbs `info_links`
// and `whence`. Requests/sec comes from the benchmark loop; p50/p99 request
// service latency comes from the server's own `server.request_ns` histogram
// (the observability layer measuring the server that hosts it).
#include <benchmark/benchmark.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <future>
#include <thread>

#include "bench_util.hpp"
#include "dfdbg/server/server.hpp"

using namespace dfdbg;

namespace {

/// Rig + server on a dedicated thread (fibers stay on one thread); the
/// session is paused at the first `pipe` WORK catchpoint so links hold
/// tokens and `whence` has a causal chain to walk.
struct ServerFixture {
  std::thread thread;
  server::DebugServer* server = nullptr;
  int port = 0;

  ServerFixture() {
    std::promise<int> ready;
    thread = std::thread([this, &ready] {
      auto built = h264::H264App::build(benchutil::decoder_config(2, 2, 1));
      DFDBG_CHECK(built.ok());
      auto& app = **built;
      dbg::Session session(app.app());
      session.attach();
      app.start();
      DFDBG_CHECK(session.catch_work("pipe").ok());
      DFDBG_CHECK(session.run().result == sim::RunResult::kStopped);
      server::DebugServer srv(session);
      auto p = srv.listen_tcp();
      DFDBG_CHECK(p.ok());
      server = &srv;
      ready.set_value(*p);
      DFDBG_CHECK(srv.serve().ok());
    });
    port = ready.get_future().get();
  }

  ~ServerFixture() {
    server->request_shutdown();
    thread.join();
  }
};

int connect_tcp(int port) {
  int fd = socket(AF_INET, SOCK_STREAM, 0);
  DFDBG_CHECK(fd >= 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  DFDBG_CHECK(connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0);
  int one = 1;
  setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

/// One blocking request/response round trip.
std::string round_trip(int fd, const std::string& frame, std::string& spill) {
  std::string wire = frame + "\n";
  std::size_t off = 0;
  while (off < wire.size()) {
    ssize_t n = send(fd, wire.data() + off, wire.size() - off, MSG_NOSIGNAL);
    DFDBG_CHECK(n > 0);
    off += static_cast<std::size_t>(n);
  }
  for (;;) {
    std::size_t nl = spill.find('\n');
    if (nl != std::string::npos) {
      std::string line = spill.substr(0, nl);
      spill.erase(0, nl + 1);
      return line;
    }
    char buf[65536];
    ssize_t n = recv(fd, buf, sizeof(buf), 0);
    DFDBG_CHECK(n > 0);
    spill.append(buf, static_cast<std::size_t>(n));
  }
}

void report_latency(benchmark::State& state, std::size_t response_bytes) {
  const obs::Histogram& h = obs::Registry::global().histogram("server.request_ns");
  state.counters["p50_ns"] = static_cast<double>(h.percentile(0.50));
  state.counters["p99_ns"] = static_cast<double>(h.percentile(0.99));
  state.counters["response_bytes"] = static_cast<double>(response_bytes);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}

void bench_socket_verb(benchmark::State& state, const std::string& frame) {
  ServerFixture fx;
  int fd = connect_tcp(fx.port);
  std::string spill;
  // Warm-up (and sanity): the verb must answer with a result frame.
  std::string first = round_trip(fd, frame, spill);
  DFDBG_CHECK(first.find("\"result\":") != std::string::npos);
  obs::Registry::global().histogram("server.request_ns").reset();
  for (auto _ : state) {
    std::string resp = round_trip(fd, frame, spill);
    benchmark::DoNotOptimize(resp.data());
  }
  report_latency(state, first.size());
  close(fd);
}

void BM_ServerInfoLinks(benchmark::State& state) {
  bench_socket_verb(state, R"({"jsonrpc":"2.0","id":1,"method":"info_links"})");
}
BENCHMARK(BM_ServerInfoLinks)->UseRealTime();

void BM_ServerWhence(benchmark::State& state) {
  // pipe::coeff_in holds the decoded-coefficient backlog at the catchpoint,
  // so slot 0 has a non-trivial provenance chain.
  bench_socket_verb(
      state,
      R"({"jsonrpc":"2.0","id":1,"method":"whence","params":{"iface":"pipe::coeff_in"}})");
}
BENCHMARK(BM_ServerWhence)->UseRealTime();

void BM_ServerExecInfoLinks(benchmark::State& state) {
  // The same query through the CLI-compatibility verb: JSON framing plus
  // interpreter dispatch plus text rendering.
  bench_socket_verb(
      state,
      R"({"jsonrpc":"2.0","id":1,"method":"exec","params":{"line":"info links"}})");
}
BENCHMARK(BM_ServerExecInfoLinks)->UseRealTime();

/// Protocol without the socket: handle_frame directly on the serving state.
void BM_HandleFrameInfoLinks(benchmark::State& state) {
  auto built = h264::H264App::build(benchutil::decoder_config(2, 2, 1));
  DFDBG_CHECK(built.ok());
  auto& app = **built;
  dbg::Session session(app.app());
  session.attach();
  app.start();
  DFDBG_CHECK(session.catch_work("pipe").ok());
  DFDBG_CHECK(session.run().result == sim::RunResult::kStopped);
  server::DebugServer srv(session);
  const std::string frame = R"({"jsonrpc":"2.0","id":1,"method":"info_links"})";
  std::string first = srv.handle_frame(frame);
  DFDBG_CHECK(first.find("\"result\":") != std::string::npos);
  obs::Registry::global().histogram("server.request_ns").reset();
  for (auto _ : state) {
    std::string resp = srv.handle_frame(frame);
    benchmark::DoNotOptimize(resp.data());
  }
  report_latency(state, first.size());
}
BENCHMARK(BM_HandleFrameInfoLinks);

}  // namespace

int main(int argc, char** argv) {
  return benchutil::run_all_benchmarks(&argc, argv);
}

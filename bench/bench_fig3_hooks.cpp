// FIG3 — exercises the two-level debugging machinery the paper's Fig. 3
// depicts: the function/finish breakpoint engine between the framework and
// the debugger's internal representation.
//
// Measures: instrumentation fast-path cost when detached, enter/exit hook
// dispatch rates, and model-update throughput (token mirror).
#include <benchmark/benchmark.h>

#include "bench_util.hpp"

#include "dfdbg/debug/model.hpp"
#include "dfdbg/sim/kernel.hpp"

using namespace dfdbg;
using sim::ArgValue;

static void BM_DetachedFastPath(benchmark::State& state) {
  // The framework's cost per API call when no debugger is attached: one
  // armed() check.
  sim::Kernel kernel;
  auto& port = kernel.instrument();
  sim::SymbolId s = port.intern("pedf__link_push");
  const ArgValue args[] = {ArgValue::of_u64("link", 1), ArgValue::of_u64("index", 2)};
  for (auto _ : state) {
    sim::InstrScope scope(kernel, s, args);
    benchmark::DoNotOptimize(&scope);
  }
}
BENCHMARK(BM_DetachedFastPath);

static void BM_ArmedEnterExit(benchmark::State& state) {
  // Full function+finish breakpoint dispatch with `n` hooks installed.
  sim::Kernel kernel;
  auto& port = kernel.instrument();
  port.set_enabled(true);
  sim::SymbolId s = port.intern("pedf__link_push");
  std::uint64_t sink = 0;
  for (int i = 0; i < state.range(0); ++i) {
    port.add_enter_hook(s, [&](sim::Frame& f) { sink += f.arg("link")->u64; });
    port.add_exit_hook(s, [&](sim::Frame& f) { sink += f.ret() ? f.ret()->u64 : 0; });
  }
  const ArgValue args[] = {ArgValue::of_u64("link", 1), ArgValue::of_u64("index", 2)};
  for (auto _ : state) {
    sim::InstrScope scope(kernel, s, args);
    scope.set_return(ArgValue::of_u64("index", 3));
  }
  benchmark::DoNotOptimize(sink);
  state.counters["hook_invocations"] = static_cast<double>(port.hook_invocations());
}
BENCHMARK(BM_ArmedEnterExit)->Arg(1)->Arg(4);

static void BM_DisabledHook(benchmark::State& state) {
  // Paper §V option 1: breakpoint present but disabled.
  sim::Kernel kernel;
  auto& port = kernel.instrument();
  port.set_enabled(true);
  sim::SymbolId s = port.intern("pedf__link_push");
  sim::HookId h = port.add_enter_hook(s, [](sim::Frame&) {});
  port.set_hook_enabled(h, false);
  const ArgValue args[] = {ArgValue::of_u64("link", 1)};
  for (auto _ : state) {
    sim::InstrScope scope(kernel, s, args);
    benchmark::DoNotOptimize(&scope);
  }
}
BENCHMARK(BM_DisabledHook);

static void BM_ModelTokenMirror(benchmark::State& state) {
  // Debugger-side cost per observed data exchange: token object creation,
  // link queue update, provenance, consumption.
  dbg::GraphModel model;
  model.on_register_actor(dbg::DActorKind::kFilter, "a", "m.a", "c0p0", "m", 0);
  model.on_register_actor(dbg::DActorKind::kFilter, "b", "m.b", "c0p1", "m", 1);
  model.on_register_port("m.a", "o", false, "U32");
  model.on_register_port("m.b", "i", true, "U32");
  model.on_register_link(0, "a::o -> b::i", "m.a", "o", "m.b", "i", "U32", "L1");
  model.on_graph_ready();
  model.set_token_history_limit(1 << 12);
  pedf::Value v = pedf::Value::u32(7);
  std::uint64_t idx = 0;
  for (auto _ : state) {
    model.on_push(0, idx++, v, "m.a", 1);
    model.on_pop(0, "m.b", 2);
  }
  state.counters["tokens_observed"] = static_cast<double>(model.tokens_observed());
}
BENCHMARK(BM_ModelTokenMirror);

static void BM_ModelMirrorStructTokens(benchmark::State& state) {
  dbg::GraphModel model;
  model.on_register_actor(dbg::DActorKind::kFilter, "a", "m.a", "c0p0", "m", 0);
  model.on_register_actor(dbg::DActorKind::kFilter, "b", "m.b", "c0p1", "m", 1);
  model.on_register_port("m.a", "o", false, "Blk_t");
  model.on_register_port("m.b", "i", true, "Blk_t");
  model.on_register_link(0, "a::o -> b::i", "m.a", "o", "m.b", "i", "Blk_t", "L1");
  model.on_graph_ready();
  model.set_token_history_limit(1 << 12);
  pedf::TypeRegistry types;
  std::vector<pedf::FieldDesc> fields;
  for (int i = 0; i < static_cast<int>(state.range(0)); ++i)
    fields.push_back(pedf::FieldDesc{"f" + std::to_string(i), pedf::ScalarType::kU32, false});
  const pedf::StructType* st = types.define_struct("Blk_t", std::move(fields));
  pedf::Value v = pedf::Value::make_struct(st);
  std::uint64_t idx = 0;
  for (auto _ : state) {
    model.on_push(0, idx++, v, "m.a", 1);
    model.on_pop(0, "m.b", 2);
  }
}
BENCHMARK(BM_ModelMirrorStructTokens)->Arg(3)->Arg(22);

int main(int argc, char** argv) {
  return dfdbg::benchutil::run_all_benchmarks(&argc, argv);
}

// QL1 — quantifies the paper's §VI-F qualitative analysis: how many stops /
// records must a developer inspect to LOCATE each seeded fault, with
//
//   (a) the dataflow-aware debugger (this paper),
//   (b) a plain source-level debugger (modelled: the user can only break on
//       the mangled WORK symbols and must inspect every firing until the
//       fault has manifested), and
//   (c) a trace tool (modelled: the user scans the event log up to the
//       fault).
//
// The paper's claim: dataflow-aware debugging localizes bugs with orders of
// magnitude fewer user-visible inspections.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_util.hpp"
#include "dfdbg/trace/trace.hpp"

using namespace dfdbg;

namespace {

struct Localization {
  const char* fault;
  int dataflow_stops;    // stops + inspections with our debugger
  bool dataflow_found;   // culprit identified?
  long baseline_stops;   // WORK-firing stops a source-level user wades through
  long trace_records;    // events a trace user scans
};

h264::H264AppConfig fault_config(h264::FaultPlan::Kind kind) {
  h264::H264AppConfig cfg = benchutil::decoder_config(2, 2, 2);
  cfg.fault.kind = kind;
  cfg.fault.trigger_mb = 2;
  if (kind == h264::FaultPlan::Kind::kRateMismatch) {
    cfg.fault.trigger_mb = 0;
    cfg.fault.period = 1;
  }
  return cfg;
}

/// Baseline model: run under tracing; the source-level user stops at every
/// WORK firing (of every filter: they cannot know which mangled symbol
/// matters) until the fault has manifested; the trace user scans all events
/// up to the same point.
void measure_baselines(const h264::H264AppConfig& cfg, long* work_stops, long* trace_records) {
  auto built = h264::H264App::build(cfg);
  DFDBG_CHECK(built.ok());
  auto& app = **built;
  trace::TraceCollector tc(app.app(), 1 << 20, /*record_payloads=*/false);
  tc.attach();
  app.start();
  app.kernel().run();  // finishes or deadlocks; the fault has manifested
  long works = 0;
  for (std::size_t i = 0; i < tc.events().size(); ++i)
    if (tc.events().at(i).kind == trace::TraceKind::kWorkEnter) works++;
  *work_stops = works;
  *trace_records = static_cast<long>(tc.total_events());
}

Localization localize_corrupt_splitter() {
  Localization loc{"corrupt-splitter (wrong output)", 0, false, 0, 0};
  h264::H264AppConfig cfg = fault_config(h264::FaultPlan::Kind::kCorruptSplitter);
  measure_baselines(cfg, &loc.baseline_stops, &loc.trace_records);

  auto built = h264::H264App::build(cfg);
  DFDBG_CHECK(built.ok());
  auto& app = **built;
  dbg::Session s(app.app());
  s.attach();
  app.start();
  DFDBG_CHECK(s.configure_behavior("red", dbg::ActorBehavior::kSplitter).ok());
  // One semantic catchpoint: an inter-flagged chroma token in frame 0.
  DFDBG_CHECK(s.catch_token_content(
                   "pipe::Red2PipeCbMB_in",
                   [](const pedf::Value& v) { return v.field_u64("InterNotIntra") == 1; },
                   "InterNotIntra in intra frame")
                  .ok());
  auto out = s.run();
  loc.dataflow_stops = 1;  // the stop
  if (out.result == sim::RunResult::kStopped) {
    // One inspection: info last_token walks to the bh->red token whose mode
    // bits contradict the flag => red identified.
    loc.dataflow_stops += 1;
    const dbg::DToken* t1 = s.last_token("pipe");
    const dbg::DToken* t2 = t1 != nullptr ? s.graph().token(t1->produced_from) : nullptr;
    loc.dataflow_found = t2 != nullptr && (t2->value.as_u64() & 0xff) != 3;
  }
  return loc;
}

Localization localize_rate_mismatch() {
  Localization loc{"rate-mismatch (link overflow)", 0, false, 0, 0};
  h264::H264AppConfig cfg = fault_config(h264::FaultPlan::Kind::kRateMismatch);
  measure_baselines(cfg, &loc.baseline_stops, &loc.trace_records);

  auto built = h264::H264App::build(cfg);
  DFDBG_CHECK(built.ok());
  auto& app = **built;
  dbg::Session s(app.app());
  s.attach();
  app.start();
  auto out = s.run();  // run to completion: 1 stop (finished)
  (void)out;
  loc.dataflow_stops = 2;  // final stop + one `info links` inspection
  // info links / graph exposes the anomalous high-watermark immediately.
  const pedf::Link* worst = nullptr;
  for (const auto& l : app.app().links()) {
    if (worst == nullptr || l->high_watermark() > worst->high_watermark()) worst = l.get();
  }
  loc.dataflow_found =
      worst != nullptr && worst->name().find("pipe_ipf_out") != std::string::npos;
  return loc;
}

Localization localize_drop_config() {
  Localization loc{"drop-config (deadlock)", 0, false, 0, 0};
  h264::H264AppConfig cfg = fault_config(h264::FaultPlan::Kind::kDropConfig);
  measure_baselines(cfg, &loc.baseline_stops, &loc.trace_records);

  auto built = h264::H264App::build(cfg);
  DFDBG_CHECK(built.ok());
  auto& app = **built;
  dbg::Session s(app.app());
  s.attach();
  app.start();
  auto out = s.run();
  loc.dataflow_stops = 1;  // the deadlock stop IS the diagnosis
  loc.dataflow_found = out.result == sim::RunResult::kDeadlock &&
                       out.stops[0].message.find("ipred waiting for data") != std::string::npos;
  return loc;
}

Localization localize_skip_ipf() {
  Localization loc{"skip-ipf (scheduling bug)", 0, false, 0, 0};
  h264::H264AppConfig cfg = fault_config(h264::FaultPlan::Kind::kSkipIpf);
  measure_baselines(cfg, &loc.baseline_stops, &loc.trace_records);

  auto built = h264::H264App::build(cfg);
  DFDBG_CHECK(built.ok());
  auto& app = **built;
  dbg::Session s(app.app());
  s.attach();
  app.start();
  auto out = s.run();
  loc.dataflow_stops = 2;  // deadlock stop + scheduling-monitor inspection
  bool leftover = app.app().link_by_iface("ipf::pipe_in")->occupancy() > 0;
  loc.dataflow_found = out.result == sim::RunResult::kDeadlock && leftover;
  return loc;
}

void BM_LocalizeCorruptSplitter(benchmark::State& state) {
  for (auto _ : state) {
    Localization l = localize_corrupt_splitter();
    benchmark::DoNotOptimize(l.dataflow_found);
  }
}
BENCHMARK(BM_LocalizeCorruptSplitter);

void BM_LocalizeDeadlock(benchmark::State& state) {
  for (auto _ : state) {
    Localization l = localize_drop_config();
    benchmark::DoNotOptimize(l.dataflow_found);
  }
}
BENCHMARK(BM_LocalizeDeadlock);

}  // namespace

int main(int argc, char** argv) {
  std::printf("=== QL1: bug-localization cost, dataflow debugger vs baselines ===\n");
  std::printf("(baseline model: a source-level user breaks on every mangled WORK\n");
  std::printf(" symbol and inspects every firing; a trace user scans the log)\n\n");
  Localization rows[] = {
      localize_corrupt_splitter(),
      localize_rate_mismatch(),
      localize_drop_config(),
      localize_skip_ipf(),
  };
  std::printf("%-34s %9s %7s %15s %14s\n", "fault", "dataflow", "found",
              "src-level stops", "trace records");
  bool all_found = true;
  for (const Localization& l : rows) {
    std::printf("%-34s %9d %7s %15ld %14ld\n", l.fault, l.dataflow_stops,
                l.dataflow_found ? "yes" : "NO", l.baseline_stops, l.trace_records);
    all_found = all_found && l.dataflow_found;
  }
  std::printf("\nevery fault localized in <=2 dataflow-debugger interactions vs\n"
              "tens-to-hundreds of stops/records with model-unaware tools.\n\n");
  benchutil::run_all_benchmarks(&argc, argv);
  return all_found ? 0 : 1;
}

// QL2 — the paper's §V/§VI-D remark that token recording "may require a
// significant quantity of memory, thus it has to be explicitly enabled".
//
// Sweeps record policy (off / bounded / unbounded) and token payload size,
// reporting tokens recorded, bytes held, and recording throughput.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_util.hpp"
#include "dfdbg/debug/recording.hpp"

using namespace dfdbg;

namespace {

struct RecCost {
  std::uint64_t tokens = 0;
  std::size_t bytes = 0;
};

RecCost decoder_recording_cost(dbg::RecordPolicy policy, std::size_t bound,
                               bool big_tokens_only) {
  auto built = h264::H264App::build(benchutil::decoder_config(2, 2, 2));
  DFDBG_CHECK(built.ok());
  auto& app = **built;
  dbg::Session s(app.app());
  s.attach();
  for (const dbg::DConnection& c : s.graph().connections()) {
    if (c.link == UINT32_MAX || c.is_input) continue;
    if (big_tokens_only && c.type != "Blk_t") continue;
    if (policy != dbg::RecordPolicy::kOff)
      DFDBG_CHECK(s.record_iface(c.iface(), policy, bound).ok());
  }
  app.start();
  for (;;) {
    auto out = s.run();
    if (out.result != sim::RunResult::kStopped) break;
  }
  return RecCost{s.recorder().total_recorded(), s.recorder().memory_bytes()};
}

void BM_RecorderThroughputScalar(benchmark::State& state) {
  dbg::TokenRecorder rec;
  rec.enable("a::o", dbg::RecordPolicy::kBounded, 1024);
  pedf::Value v = pedf::Value::u16(5);
  std::uint64_t i = 0;
  for (auto _ : state) rec.on_token("a::o", i++, v, 1);
  state.counters["bytes"] = static_cast<double>(rec.memory_bytes());
}
BENCHMARK(BM_RecorderThroughputScalar);

void BM_RecorderThroughputStruct(benchmark::State& state) {
  dbg::TokenRecorder rec;
  rec.enable("a::o", dbg::RecordPolicy::kBounded, 1024);
  pedf::TypeRegistry types;
  std::vector<pedf::FieldDesc> fields;
  for (int f = 0; f < 22; ++f)
    fields.push_back(pedf::FieldDesc{"f" + std::to_string(f), pedf::ScalarType::kU32, false});
  const pedf::StructType* st = types.define_struct("Blk_t", std::move(fields));
  pedf::Value v = pedf::Value::make_struct(st);
  std::uint64_t i = 0;
  for (auto _ : state) rec.on_token("a::o", i++, v, 1);
  state.counters["bytes"] = static_cast<double>(rec.memory_bytes());
}
BENCHMARK(BM_RecorderThroughputStruct);

void BM_NotRecordedIsFree(benchmark::State& state) {
  dbg::TokenRecorder rec;
  rec.enable("other::iface", dbg::RecordPolicy::kUnbounded);
  pedf::Value v = pedf::Value::u16(5);
  std::uint64_t i = 0;
  for (auto _ : state) rec.on_token("a::o", i++, v, 1);  // not enabled: dropped
  state.counters["bytes"] = static_cast<double>(rec.memory_bytes());
}
BENCHMARK(BM_NotRecordedIsFree);

}  // namespace

int main(int argc, char** argv) {
  std::printf("=== QL2: token-recording memory cost on a full decode ===\n");
  struct Row {
    const char* name;
    dbg::RecordPolicy policy;
    std::size_t bound;
    bool big_only;
  } rows[] = {
      {"off", dbg::RecordPolicy::kOff, 0, false},
      {"bounded(64), all out ifaces", dbg::RecordPolicy::kBounded, 64, false},
      {"unbounded, all out ifaces", dbg::RecordPolicy::kUnbounded, 0, false},
      {"unbounded, Blk_t links only", dbg::RecordPolicy::kUnbounded, 0, true},
  };
  std::printf("%-32s %14s %14s\n", "policy", "tokens", "bytes held");
  std::size_t unbounded_bytes = 0, bounded_bytes = 0;
  for (const Row& r : rows) {
    RecCost c = decoder_recording_cost(r.policy, r.bound, r.big_only);
    if (r.policy == dbg::RecordPolicy::kUnbounded && !r.big_only) unbounded_bytes = c.bytes;
    if (r.policy == dbg::RecordPolicy::kBounded) bounded_bytes = c.bytes;
    std::printf("%-32s %14llu %14zu\n", r.name, static_cast<unsigned long long>(c.tokens),
                c.bytes);
  }
  std::printf("\npaper claim holds: unbounded recording costs %.1fx the bounded ring\n\n",
              bounded_bytes > 0 ? static_cast<double>(unbounded_bytes) /
                                      static_cast<double>(bounded_bytes)
                                : 0.0);
  return benchutil::run_all_benchmarks(&argc, argv);
}

// Ablation — static (SDF) vs dynamic (PEDF-controller) scheduling of the
// same graph, quantifying the trade-off the paper's introduction discusses:
// decidable models "allow ... static and deadlock-free actor scheduling" but
// at reduced expressiveness, while dynamic models "emphasize programmability"
// at runtime-scheduling cost.
//
// The workload: the up(1->2) / fir(4->4) / down(4->1) audio chain, executed
//   (a) by the SDF layer's statically synthesized schedule, and
//   (b) by a naive dynamic controller that polls token availability each
//       step and fires whatever is ready (what a dynamic runtime does).
// Both decode the same stream; we compare scheduler activity (dispatches,
// controller work) and wall time.
#include <benchmark/benchmark.h>

#include "bench_util.hpp"

#include <cstdio>

#include "dfdbg/pedf/application.hpp"
#include "dfdbg/sdf/sdf.hpp"

using namespace dfdbg;
using pedf::PortDir;
using pedf::TypeDesc;
using pedf::Value;

namespace {

constexpr std::uint64_t kPeriods = 32;

sdf::SdfGraph audio_graph() {
  sdf::SdfGraph g;
  DFDBG_CHECK(g.add_actor({"up",
                           {{"i", PortDir::kIn, 1, TypeDesc()},
                            {"o", PortDir::kOut, 2, TypeDesc()}},
                           nullptr,
                           2})
                  .ok());
  DFDBG_CHECK(g.add_actor({"fir",
                           {{"i", PortDir::kIn, 4, TypeDesc()},
                            {"o", PortDir::kOut, 4, TypeDesc()}},
                           nullptr,
                           8})
                  .ok());
  DFDBG_CHECK(g.add_actor({"down",
                           {{"i", PortDir::kIn, 4, TypeDesc()},
                            {"o", PortDir::kOut, 1, TypeDesc()}},
                           nullptr,
                           2})
                  .ok());
  DFDBG_CHECK(g.add_edge({"up", "o", "fir", "i", 0}).ok());
  DFDBG_CHECK(g.add_edge({"fir", "o", "down", "i", 0}).ok());
  return g;
}

struct RunStats {
  std::uint64_t dispatches = 0;
  sim::SimTime sim_time = 0;
  std::size_t outputs = 0;
};

/// (a) static: the SDF layer's schedule.
RunStats run_static() {
  sim::Kernel kernel;
  sim::PlatformConfig pc;
  pc.clusters = 1;
  pc.pes_per_cluster = 8;
  sim::Platform platform(kernel, pc);
  pedf::Application app(platform, "static");
  sdf::SdfGraph g = audio_graph();
  auto mod = g.instantiate("audio", kPeriods);
  DFDBG_CHECK(mod.ok());
  app.set_root(std::move(*mod));
  std::vector<Value> stream(2 * kPeriods, Value::u32(7));
  app.add_host_source("adc", "audio.up_i", std::move(stream));
  auto& sink = app.add_host_sink("dac", "audio.down_o", kPeriods);
  DFDBG_CHECK(app.elaborate().ok());
  DFDBG_CHECK(g.apply_initial_tokens(app).ok());
  app.start();
  DFDBG_CHECK(kernel.run() == sim::RunResult::kFinished);
  return RunStats{kernel.dispatch_count(), kernel.now(), sink.received().size()};
}

/// (b) dynamic: a controller that polls link occupancies and fires whatever
/// has enough input tokens — no static knowledge, pure runtime decisions.
RunStats run_dynamic() {
  sim::Kernel kernel;
  sim::PlatformConfig pc;
  pc.clusters = 1;
  pc.pes_per_cluster = 8;
  sim::Platform platform(kernel, pc);
  pedf::Application app(platform, "dynamic");

  auto mod = std::make_unique<pedf::Module>("audio");
  mod->add_port("in", PortDir::kIn, TypeDesc());
  mod->add_port("out", PortDir::kOut, TypeDesc());
  struct Stage {
    const char* name;
    std::uint32_t in_rate, out_rate;
    sim::SimTime cost;
  };
  static const Stage kStages[] = {{"up", 1, 2, 2}, {"fir", 4, 4, 8}, {"down", 4, 1, 2}};
  for (const Stage& st : kStages) {
    auto f = std::make_unique<pedf::FnFilter>(st.name, [st](pedf::FilterContext& ctx) {
      std::vector<Value> in;
      for (std::uint32_t i = 0; i < st.in_rate; ++i) in.push_back(ctx.in("i").get());
      ctx.compute(st.cost);
      for (std::uint32_t i = 0; i < st.out_rate; ++i)
        ctx.out("o").put(in[i % in.size()]);
    });
    f->add_port("i", PortDir::kIn, TypeDesc());
    f->add_port("o", PortDir::kOut, TypeDesc());
    mod->add_filter(std::move(f));
  }
  // Dynamic controller: every step, poll each filter's input and fire it if
  // a full firing's worth of tokens is available (runtime scheduling).
  mod->define_predicate("work_left", [](pedf::Module& m) {
    pedf::Filter* down = m.filter("down");
    return down->firings() < kPeriods;
  });
  mod->set_controller(std::make_unique<pedf::FnController>(
      "dyn_ctl", [](pedf::ControllerContext& ctx) {
        while (ctx.predicate("work_left")) {
          ctx.next_step();
          for (const Stage& st : kStages) {
            while (ctx.tokens_available(st.name, "i") >= st.in_rate) {
              ctx.actor_fire(st.name);
              ctx.wait_for_actor_sync();
            }
          }
          ctx.compute(4);  // the polling itself costs controller cycles
        }
      }));
  mod->bind("this.in", "up.i");
  mod->bind("up.o", "fir.i");
  mod->bind("fir.o", "down.i");
  mod->bind("down.o", "this.out");
  app.set_root(std::move(mod));
  std::vector<Value> stream(2 * kPeriods, Value::u32(7));
  app.add_host_source("adc", "audio.in", std::move(stream));
  auto& sink = app.add_host_sink("dac", "audio.out", kPeriods);
  DFDBG_CHECK(app.elaborate().ok());
  app.start();
  DFDBG_CHECK(kernel.run() == sim::RunResult::kFinished);
  return RunStats{kernel.dispatch_count(), kernel.now(), sink.received().size()};
}

void BM_StaticSchedule(benchmark::State& state) {
  RunStats last{};
  for (auto _ : state) last = run_static();
  state.counters["dispatches"] = static_cast<double>(last.dispatches);
  state.counters["sim_cycles"] = static_cast<double>(last.sim_time);
}
BENCHMARK(BM_StaticSchedule);

void BM_DynamicSchedule(benchmark::State& state) {
  RunStats last{};
  for (auto _ : state) last = run_dynamic();
  state.counters["dispatches"] = static_cast<double>(last.dispatches);
  state.counters["sim_cycles"] = static_cast<double>(last.sim_time);
}
BENCHMARK(BM_DynamicSchedule);

}  // namespace

int main(int argc, char** argv) {
  RunStats st = run_static();
  RunStats dy = run_dynamic();
  std::printf("=== ablation: static (SDF) vs dynamic (polling controller) ===\n");
  std::printf("%-22s %12s %12s %10s\n", "scheduling", "dispatches", "sim cycles", "outputs");
  std::printf("%-22s %12llu %12llu %10zu\n", "static SDF schedule",
              static_cast<unsigned long long>(st.dispatches),
              static_cast<unsigned long long>(st.sim_time), st.outputs);
  std::printf("%-22s %12llu %12llu %10zu\n", "dynamic polling",
              static_cast<unsigned long long>(dy.dispatches),
              static_cast<unsigned long long>(dy.sim_time), dy.outputs);
  std::printf("\nboth produce the same %zu outputs; the static schedule avoids the\n"
              "polling/dispatch overhead (the decidability benefit the paper's intro\n"
              "weighs against dynamic models' expressiveness).\n\n",
              st.outputs);
  benchutil::run_all_benchmarks(&argc, argv);
  return st.outputs == dy.outputs ? 0 : 1;
}
